"""Ablation — push vs pull, and plain vs delta-stepping SSSP.

Two programming-model choices the paper makes implicitly, quantified:

* §3.1 "we choose the push-based vertex-centric programming model": a
  pull-mode PageRank re-scans the whole edge array every iteration, so an
  out-of-memory engine streams a full dataset per round — push's
  active-only transfers are the enabler of everything else;
* the SSSP workload regime: plain frontier Bellman-Ford re-relaxes long
  weighted paths; delta-stepping (the standard GPU remedy) prunes that
  work while staying exact — shrinking exactly the on-demand traffic
  Ascetic has to schedule.
"""

import numpy as np

from repro.algorithms import SSSP, make_program
from repro.algorithms.validate import reference_sssp_distances
from repro.analysis.report import format_table
from repro.graph.properties import best_source
from repro.harness.experiments import BENCH_SCALE, make_workload
from repro.core.ascetic import AsceticEngine
from repro.engines.subway import SubwayEngine

from conftest import report


def test_push_vs_pull_pagerank(benchmark):
    w = make_workload("FK", "PR", scale=BENCH_SCALE)

    def run():
        push = SubwayEngine(spec=w.spec, data_scale=w.scale).run(
            w.graph, make_program("PR", tol=1e-2)
        )
        pull = SubwayEngine(spec=w.spec, data_scale=w.scale).run(
            w.graph.reverse(), make_program("PR-PULL", tol=1e-2)
        )
        return push, pull

    push, pull = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["push (residual)", push.iterations, f"{push.elapsed_seconds:.1f}s",
         f"{push.metrics.bytes_h2d / push.iterations / 1e9:.2f}GB"],
        ["pull (topology-driven)", pull.iterations, f"{pull.elapsed_seconds:.1f}s",
         f"{pull.metrics.bytes_h2d / pull.iterations / 1e9:.2f}GB"],
    ]
    report(
        "push_vs_pull",
        "§3.1 ablation — push vs pull PageRank under the Subway engine (FK)",
        format_table(["mode", "iterations", "time", "H2D per iteration"], rows),
    )
    # Pull must stream (nearly) the whole dataset per iteration.
    per_iter_pull = pull.metrics.bytes_h2d / pull.iterations
    dataset = pull.extra["dataset_bytes"]
    assert per_iter_pull > 0.8 * dataset
    # Push's per-iteration traffic is below pull's.
    assert push.metrics.bytes_h2d / push.iterations < per_iter_pull


def test_sssp_delta_stepping(benchmark):
    w = make_workload("UK", "SSSP", scale=BENCH_SCALE)
    src = best_source(w.graph)

    def run():
        plain = AsceticEngine(spec=w.spec, data_scale=w.scale).run(
            w.graph, SSSP(source=src)
        )
        stepped = AsceticEngine(spec=w.spec, data_scale=w.scale).run(
            w.graph, SSSP(source=src, delta=4)
        )
        return plain, stepped

    plain, stepped = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["Bellman-Ford frontier", plain.iterations, f"{plain.elapsed_seconds:.1f}s",
         f"{plain.processing_bytes_h2d / 1e9:.0f}GB"],
        ["delta-stepping (Δ=4)", stepped.iterations, f"{stepped.elapsed_seconds:.1f}s",
         f"{stepped.processing_bytes_h2d / 1e9:.0f}GB"],
    ]
    report(
        "sssp_delta",
        "SSSP ablation — delta-stepping prunes re-relaxation traffic (UK, Ascetic)",
        format_table(["variant", "iterations", "time", "processing H2D"], rows),
    )
    ref = reference_sssp_distances(w.graph, src)
    assert np.array_equal(plain.values, ref)
    assert np.array_equal(stepped.values, ref)
    assert stepped.processing_bytes_h2d < plain.processing_bytes_h2d
