"""Figure 8 — breakdown of the optimization benefits.

Paper (§4.3): averaged over workloads, ~37 % of the execution-time
improvement over Subway comes from *Static savings* (the Static Region's
avoided transfers, measured with overlap disabled) and ~10 % more from
*Overlapping savings* (§3.2's concurrent schedule).  BFS — with no
cross-iteration reuse — still gets ~6.5 % static savings because static-
resident data needs no transfer at all.
"""

import pytest

from repro.analysis.breakdown import measure_breakdown
from repro.analysis.report import format_table
from repro.harness.experiments import BENCH_SCALE, make_workload

from conftest import DATASET_ORDER, report

ALGOS = ("BFS", "CC", "PR")


def test_fig8_breakdown(benchmark):
    def collect():
        out = {}
        for abbr in DATASET_ORDER:
            for algo in ALGOS:
                w = make_workload(abbr, algo, scale=BENCH_SCALE)
                out[(abbr, algo)] = measure_breakdown(
                    w.graph, w.program_factory, w.spec, data_scale=w.scale
                )
        return out

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    static_all, overlap_all = [], []
    for (abbr, algo), bd in results.items():
        rows.append(
            [
                f"{algo}-{abbr}",
                f"{bd.static_saving:+.1%}",
                f"{bd.overlap_saving:+.1%}",
                f"{bd.total_saving:+.1%}",
            ]
        )
        static_all.append(bd.static_saving)
        overlap_all.append(bd.overlap_saving)
    avg_static = sum(static_all) / len(static_all)
    avg_overlap = sum(overlap_all) / len(overlap_all)
    rows.append(["AVERAGE", f"{avg_static:+.1%}", f"{avg_overlap:+.1%}", ""])
    rows.append(["paper avg", "+37%", "+10%", ""])
    report(
        "fig8",
        "Fig. 8 — optimization breakdown vs Subway (Static vs Overlapping savings)",
        format_table(["workload", "static", "overlap", "total"], rows),
    )

    # Shape claims: both components contribute, static dominates, and the
    # averages land near the paper's 37 % / 10 % split.
    assert 0.15 < avg_static < 0.60
    assert 0.03 < avg_overlap < 0.30
    assert avg_static > avg_overlap
    # BFS still benefits from the Static Region (§4.3's 6.5 % average).
    bfs_static = [results[(d, "BFS")].static_saving for d in DATASET_ORDER]
    assert sum(bfs_static) / len(bfs_static) > 0.03
