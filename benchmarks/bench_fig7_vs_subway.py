"""Figure 7 — Ascetic vs Subway: speedup and transfer volume per workload.

Paper: Ascetic averages 2.0× over Subway, moving ≈39 % of Subway's data
("the data transfer does not contain the static prestore data" — hence the
processing-transfer accounting here).
"""

from repro.analysis.report import format_table, geomean

from conftest import ALGO_ORDER, DATASET_ORDER, report


def test_fig7_vs_subway(benchmark, grid):
    def collect():
        rows, speeds, vols = [], [], []
        for algo in ALGO_ORDER:
            for abbr in DATASET_ORDER:
                cell = grid[(abbr, algo)]
                speed = cell["Subway"].elapsed_seconds / cell["Ascetic"].elapsed_seconds
                vol = max(cell["Ascetic"].processing_bytes_h2d, 1.0) / max(
                    cell["Subway"].processing_bytes_h2d, 1.0
                )
                speeds.append(speed)
                vols.append(vol)
                rows.append([f"{algo}-{abbr}", f"{speed:.2f}x", f"{vol:.2f}"])
        rows.append(
            ["AVERAGE", f"{geomean(speeds):.2f}x", f"{geomean(vols):.2f}"]
        )
        return rows, speeds, vols

    rows, speeds, vols = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "fig7",
        "Fig. 7 — speedup and transfer volume relative to Subway "
        "(paper: 2.0x mean speedup, ~0.39 mean volume)",
        format_table(["workload", "speedup", "transfer vs Subway"], rows),
    )

    # Shape claims: ~2× mean speedup, well under half the transfer volume,
    # and Ascetic ahead in every cell.
    assert 1.5 < geomean(speeds) < 3.5
    assert geomean(vols) < 0.6
    assert min(speeds) > 1.0
