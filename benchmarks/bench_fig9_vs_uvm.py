"""Figure 9 — Ascetic vs the UVM baseline.

Paper (§4.4): UVM is 6.2× slower on average, with page-granularity
migration, LRU defeated by cross-iteration reuse distances, and fault
overheads; transfer-volume ratios reach 12–16× on the worst workloads.
"""

from repro.analysis.report import format_table, geomean

from conftest import ALGO_ORDER, DATASET_ORDER, report


def test_fig9_vs_uvm(benchmark, grid):
    def collect():
        rows, speeds, vols = [], [], []
        for algo in ALGO_ORDER:
            for abbr in DATASET_ORDER:
                cell = grid[(abbr, algo)]
                speed = cell["UVM"].elapsed_seconds / cell["Ascetic"].elapsed_seconds
                vol = cell["UVM"].metrics.bytes_h2d / max(cell["Ascetic"].metrics.bytes_h2d, 1)
                speeds.append(speed)
                vols.append(vol)
                rows.append(
                    [f"{algo}-{abbr}", f"{speed:.2f}x",
                     f"{cell['UVM'].metrics.page_faults:,}", f"{vol:.2f}x"]
                )
        rows.append(["GEOMEAN", f"{geomean(speeds):.2f}x", "", f"{geomean(vols):.2f}x"])
        return rows, speeds, vols

    rows, speeds, vols = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "fig9",
        "Fig. 9 — Ascetic speedup over UVM and UVM/Ascetic transfer ratio "
        "(paper: 6.2x mean speedup; 12–16x worst-case transfer ratios)",
        format_table(["workload", "Ascetic speedup", "UVM faults", "UVM/Asc bytes"], rows),
    )

    # Shape claims: Ascetic clearly ahead overall; the oversubscribed
    # workloads (datasets bigger than the card) thrash hardest.
    assert geomean(speeds) > 1.5
    oversub = [
        (abbr, algo) for abbr in DATASET_ORDER for algo in ALGO_ORDER
        if grid[(abbr, algo)]["PT"].extra["dataset_bytes"]
        > 10e9  # paper-scale card
    ]
    assert oversub, "some workloads must oversubscribe the card"
    worst = max(
        grid[c]["UVM"].metrics.bytes_h2d / max(grid[c]["Ascetic"].metrics.bytes_h2d, 1)
        for c in oversub
    )
    assert worst > 2.0
    # Fault machinery engaged everywhere data did not fit.
    for c in oversub:
        assert grid[c]["UVM"].metrics.page_faults > 0
