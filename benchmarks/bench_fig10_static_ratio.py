"""Figure 10 — the impact of the Static Region ratio (BFS / CC / PR on FK).

Paper: total time falls as the static share grows, bottoms out near ~95 %
of GPU memory, and collapses at ratio → 1 (the on-demand region degenerates
into per-chunk streaming); Tsr grows with the ratio while Tfilling,
Ttransfer and Tondemand shrink; the Eq. 2 pick sits near the optimum; the
horizontal Subway line is beaten across a wide ratio range.
"""

import pytest

from repro.analysis.report import format_table, sparkline
from repro.harness.experiments import BENCH_SCALE, make_workload
from repro.harness.sweeps import sweep_static_ratio

from conftest import report

RATIOS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0]


@pytest.mark.parametrize("algo", ["BFS", "CC", "PR"])
def test_fig10_static_ratio(benchmark, algo):
    w = make_workload("FK", algo, scale=BENCH_SCALE)

    def run():
        return sweep_static_ratio(w, RATIOS)

    points, subway_s, eq2 = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{p.ratio:.2f}", f"{p.total_seconds:.2f}s", f"{p.t_sr:.2f}",
         f"{p.t_filling:.2f}", f"{p.t_transfer:.2f}", f"{p.t_ondemand:.2f}"]
        for p in points
    ]
    rows.append(["Subway", f"{subway_s:.2f}s", "", "", "", ""])
    rows.append([f"Eq.2={eq2:.2f}", "", "", "", "", ""])
    text = format_table(
        ["ratio", "total", "Tsr", "Tfilling", "Ttransfer", "Tondemand"], rows
    )
    text += "\n\ntotal time over ratio: " + sparkline(
        [p.total_seconds for p in points], width=len(points)
    )
    report(f"fig10_{algo}", f"Fig. 10 — static-ratio sweep, {algo} on FK", text)

    by_ratio = {p.ratio: p for p in points}
    # Component shapes: Tsr grows with the ratio; transfer/filling shrink.
    assert by_ratio[0.95].t_sr > by_ratio[0.1].t_sr
    assert by_ratio[0.95].t_transfer < by_ratio[0.1].t_transfer
    assert by_ratio[0.95].t_filling < by_ratio[0.1].t_filling
    # A well-chosen ratio beats both extremes…
    best = min(p.total_seconds for p in points)
    assert by_ratio[0.9].total_seconds < by_ratio[0.0].total_seconds
    assert by_ratio[1.0].total_seconds > best  # right-edge collapse
    # …and the optimum sits in the high-ratio region (paper: ≈0.95).
    best_ratio = min(points, key=lambda p: p.total_seconds).ratio
    assert best_ratio >= 0.6
    # Eq. 2's pick performs within 25 % of the sweep optimum.
    eq2_nearest = min(points, key=lambda p: abs(p.ratio - eq2))
    assert eq2_nearest.total_seconds < 1.25 * best
    # Ascetic at the chosen ratio beats the Subway baseline.
    assert eq2_nearest.total_seconds < subway_s
