"""Table 1 — average percentage of active edges per iteration.

Paper (Table 1):

    Dataset            BFS    SSSP   CC     PR
    Friendster-konect  4.5%   3.1%   14.1%  28.7%
    UK-2007-04         0.8%   3.1%   3.0%   25.1%

The measurement: run each algorithm to convergence and average the
per-iteration fraction of edges owned by active vertices.  These fractions
justify Subway's fine-grained transfers and Ascetic's K = 10 % default.
"""

import pytest

from repro.analysis.active_edges import table1_row
from repro.analysis.report import format_table
from repro.graph.properties import best_source
from repro.harness.experiments import BENCH_SCALE, PR_TOL, make_workload

from conftest import report

PAPER = {
    "FK": {"BFS": 0.045, "SSSP": 0.031, "CC": 0.141, "PR": 0.287},
    "UK": {"BFS": 0.008, "SSSP": 0.031, "CC": 0.030, "PR": 0.251},
}


def measure_row(abbr: str) -> dict:
    from repro.algorithms import make_program

    w_plain = make_workload(abbr, "BFS", scale=BENCH_SCALE)
    w_sssp = make_workload(abbr, "SSSP", scale=BENCH_SCALE)
    src = best_source(w_plain.graph)
    row = table1_row(
        w_plain.graph,
        {
            "BFS": make_program("BFS", source=src),
            "CC": make_program("CC"),
            "PR": make_program("PR", tol=PR_TOL),
        },
    )
    row["SSSP"] = table1_row(
        w_sssp.graph, {"SSSP": make_program("SSSP", source=src)}
    )["SSSP"]
    return row


@pytest.mark.parametrize("abbr", ["FK", "UK"])
def test_table1_active_edges(benchmark, abbr):
    row = benchmark.pedantic(measure_row, args=(abbr,), rounds=1, iterations=1)

    rows = [
        [abbr, *(f"{row[a]:.1%}" for a in ("BFS", "SSSP", "CC", "PR"))],
        ["paper", *(f"{PAPER[abbr][a]:.1%}" for a in ("BFS", "SSSP", "CC", "PR"))],
    ]
    report(
        f"table1_{abbr}",
        f"Table 1 — active edges per iteration ({abbr})",
        format_table(["dataset", "BFS", "SSSP", "CC", "PR"], rows),
    )

    # Shape assertions: active fractions are *small* (fine-grained transfer
    # is worth it), BFS is the sparsest, PR the densest.
    assert row["BFS"] < 0.10
    assert row["BFS"] < row["PR"]
    assert row["BFS"] <= row["CC"] + 0.01
    # UK's crawl structure makes its BFS dramatically sparser than FK's.
    if abbr == "UK":
        assert row["BFS"] < 0.015
