"""Cost-model sensitivity — are the conclusions artifacts of the constants?

A simulation-based reproduction must show its headline orderings are not
tuned in: this bench perturbs each cost-model constant by 2× in both
directions (PCIe bandwidth, host gather bandwidth, kernel throughput) and
re-measures Ascetic vs Subway.  The *magnitude* of the speedup moves — it
should, these constants set the compute:transfer balance — but the
*ordering* must hold everywhere, and it does.
"""

from dataclasses import replace

from repro.algorithms import make_program
from repro.analysis.report import format_table
from repro.core.ascetic import AsceticEngine
from repro.engines.subway import SubwayEngine
from repro.gpusim.host import HostGather
from repro.gpusim.kernel import KernelModel
from repro.gpusim.pcie import PCIeLink
from repro.harness.experiments import BENCH_SCALE, make_workload

from conftest import report


def variants(spec):
    yield "baseline", spec
    for f, tag in ((0.5, "½"), (2.0, "2")):
        yield f"PCIe bw ×{tag}", replace(
            spec, pcie=PCIeLink(bandwidth=spec.pcie.bandwidth * f,
                                latency=spec.pcie.latency,
                                burst=spec.pcie.burst)
        )
        yield f"gather bw ×{tag}", replace(
            spec, gather=HostGather(bandwidth=spec.gather.bandwidth * f,
                                    setup=spec.gather.setup)
        )
        yield f"kernel ×{tag}", replace(
            spec, kernel=KernelModel(
                edge_throughput=spec.kernel.edge_throughput * f,
                vertex_scan_throughput=spec.kernel.vertex_scan_throughput,
                launch_overhead=spec.kernel.launch_overhead,
                atomic_penalty=spec.kernel.atomic_penalty,
            )
        )


def test_cost_model_sensitivity(benchmark):
    w = make_workload("FK", "CC", scale=BENCH_SCALE)

    def run():
        out = []
        for label, spec in variants(w.spec):
            sub = SubwayEngine(spec=spec, data_scale=w.scale).run(
                w.graph, make_program("CC")
            )
            asc = AsceticEngine(spec=spec, data_scale=w.scale).run(
                w.graph, make_program("CC")
            )
            out.append((label, sub.elapsed_seconds, asc.elapsed_seconds))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, f"{sub:.2f}s", f"{asc:.2f}s", f"{sub / asc:.2f}x"]
        for label, sub, asc in results
    ]
    report(
        "sensitivity",
        "Cost-model sensitivity — Ascetic vs Subway (CC on FK) under 2x "
        "perturbations of every constant",
        format_table(["variant", "Subway", "Ascetic", "speedup"], rows),
    )

    # The ordering survives every perturbation; the magnitude moves within
    # a sane band (no perturbation flips or trivializes the result).
    speedups = [sub / asc for _, sub, asc in results]
    assert all(s > 1.0 for s in speedups)
    assert max(speedups) / min(speedups) < 4.0
