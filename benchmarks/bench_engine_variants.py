"""Ablation — engine variants beyond the paper's baselines.

Two questions the paper leaves implicit, answered quantitatively:

1. *How much of PT's loss is single-buffering?*  GraphReduce-style systems
   can double-buffer; the variant pipelines partition transfer behind
   compute.  It helps — but the redundant whole-partition traffic remains,
   so PT stays far behind.
2. *How much of Ascetic's win over Subway is mere pipelining?*  A pipelined
   Subway overlaps gather/transfer/compute across rounds without any
   Static Region.  It recovers part of the gap; the rest — the paper's
   actual contribution — needs the avoided transfers of the Static Region.
"""

from repro.analysis.report import format_table
from repro.harness.experiments import BENCH_SCALE, make_workload, run_workload

from conftest import report


def test_engine_variants(benchmark):
    w = make_workload("FK", "PR", scale=BENCH_SCALE)

    def run():
        return {
            "PT (single buffer)": run_workload(w, "PT"),
            "PT (double buffer)": run_workload(w, "PT", double_buffer=True),
            "Subway (sequential)": run_workload(w, "Subway"),
            "Subway (pipelined)": run_workload(w, "Subway", pipelined=True),
            "Ascetic": run_workload(w, "Ascetic"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    best = results["Ascetic"].elapsed_seconds
    rows = [
        [name, f"{r.elapsed_seconds:.1f}s", f"{r.elapsed_seconds / best:.2f}x",
         f"{r.gpu_idle_fraction:.0%}"]
        for name, r in results.items()
    ]
    report(
        "engine_variants",
        "Ablation — engine variants (PR on FK): pipelining vs the Static Region",
        format_table(["engine", "time", "vs Ascetic", "GPU idle"], rows),
    )

    t = {k: v.elapsed_seconds for k, v in results.items()}
    # Double buffering helps PT but does not rescue it.
    assert t["PT (double buffer)"] < t["PT (single buffer)"]
    assert t["PT (double buffer)"] > t["Ascetic"]
    # Pipelining helps Subway, yet Ascetic stays ahead: the Static Region's
    # avoided transfers are the bigger lever.
    assert t["Subway (pipelined)"] < t["Subway (sequential)"]
    assert t["Ascetic"] < t["Subway (pipelined)"]
