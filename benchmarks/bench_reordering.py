"""Ablation — vertex-layout sensitivity of the Static Region.

§5 finds the *initial fill choice* barely matters — on KONECT-shuffled
datasets, where every layout is statistically the same.  This bench probes
the stronger statement: the *layout itself* is a lever.  A hubs-first
(degree-ordered) edge array makes the front-filled Static Region a hot-set
cache; a shuffle is the neutral control; BFS order helps wave algorithms.
"""

from repro.algorithms import make_program
from repro.analysis.report import format_table
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.graph.reorder import bfs_order, degree_order, random_order, relabel
from repro.harness.experiments import BENCH_SCALE, make_workload

from conftest import report

ORDERINGS = ("as-loaded", "shuffled", "degree", "bfs")


def test_reordering_static_region(benchmark):
    w = make_workload("FK", "PR", scale=BENCH_SCALE)
    cfg = AsceticConfig(fill="front", adaptive=False)

    def layout(name):
        g = w.graph
        if name == "shuffled":
            return relabel(g, random_order(g, seed=11))
        if name == "degree":
            return relabel(g, degree_order(g))
        if name == "bfs":
            return relabel(g, bfs_order(g))
        return g

    def run():
        out = {}
        for name in ORDERINGS:
            g = layout(name)
            res = AsceticEngine(spec=w.spec, data_scale=w.scale, config=cfg).run(
                g, make_program("PR", tol=1e-2)
            )
            out[name] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r.elapsed_seconds:.1f}s",
         f"{r.processing_bytes_h2d / 1e9:.1f}GB",
         f"{r.extra['static_edges'] / max(r.extra['static_edges'] + r.extra['ondemand_edges'], 1):.0%}"]
        for name, r in results.items()
    ]
    report(
        "reordering",
        "Layout ablation — Ascetic front-fill under vertex reorderings (PR on FK)",
        format_table(["ordering", "time", "processing H2D", "static hit share"], rows),
    )

    # The measured outcome *strengthens* §5's conjecture: when per-iteration
    # activity is spread evenly (PR), even aggressive relayouts move the
    # needle by ~10 % at most — the Static Region's benefit comes from its
    # *size*, not from which bytes it holds.  (Degree order actually pays a
    # small penalty: covering few mega-hubs leaves more on-demand *vertices*
    # and their request structures.)
    times = [r.elapsed_seconds for r in results.values()]
    assert (max(times) - min(times)) / min(times) < 0.15
    xfers = [r.processing_bytes_h2d for r in results.values()]
    assert (max(xfers) - min(xfers)) / min(xfers) < 0.25
    # And the computation is layout-invariant (graph isomorphism).
    for name in ORDERINGS:
        assert results[name].iterations == results["as-loaded"].iterations
