"""Table 3 — the dataset inventory, as loaded by the harness.

Prints paper-scale counts next to the scaled analogues actually used, plus
the structural statistics (degree skew, id-locality, BFS depth) that the
generators are calibrated to.
"""

import pytest

from repro.analysis.report import format_table, human_bytes
from repro.graph.datasets import DATASETS
from repro.graph.properties import best_source, graph_stats
from repro.harness.experiments import BENCH_SCALE, make_workload

from conftest import DATASET_ORDER, report


def test_table3_dataset_inventory(benchmark):
    def build():
        rows = []
        for abbr in DATASET_ORDER:
            spec = DATASETS[abbr]
            w = make_workload(abbr, "BFS", scale=BENCH_SCALE)
            g = w.graph
            stats = graph_stats(g)
            rows.append(
                [
                    abbr,
                    spec.full_name,
                    f"{spec.paper_vertices/1e6:.2f}M→{g.n_vertices:,}",
                    f"{spec.paper_edges/1e9:.2f}B→{g.n_edges:,}",
                    "yes" if spec.directed else "no",
                    f"{stats.degree_gini:.2f}",
                    f"{stats.locality_fraction:.0%}",
                    human_bytes(g.dataset_bytes / BENCH_SCALE),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "table3",
        f"Table 3 — datasets (scale = {BENCH_SCALE:g}; sizes shown at paper scale)",
        format_table(
            ["abbr", "name", "vertices", "edges", "directed", "gini", "local", "size"],
            rows,
        ),
    )

    # Paper-scale dataset sizes must land near Table 5's Size column
    # (BFS/CC/PR rows): GS 7.0G, FK 9.9G, FS 13.9G, UK 14.5G.  Our sizing
    # charges 24 B/vertex of always-resident state, slightly above the
    # paper's accounting, hence the tolerance.
    expect_gb = {"GS": 7.0, "FK": 9.9, "FS": 13.9, "UK": 14.5}
    for abbr in DATASET_ORDER:
        w = make_workload(abbr, "BFS", scale=BENCH_SCALE)
        measured_gb = w.graph.dataset_bytes / BENCH_SCALE / 1e9
        assert measured_gb == pytest.approx(expect_gb[abbr], rel=0.35), abbr
