"""Table 5 — data transferred during processing, normalized to dataset size.

Paper (Table 5 geomeans): PT 32.5×, Subway 3.6×, Ascetic 1.4×.  Ascetic's
numbers report *processing* transfers — the one-time Static Region prestore
is tracked separately (the paper's sub-dataset BFS/CC volumes, e.g. BFS/GS
at 0.02×, are only possible under that accounting; Fig. 7's caption states
it explicitly for the Subway comparison).
"""

from repro.analysis.report import format_table, geomean

from conftest import ALGO_ORDER, DATASET_ORDER, report

PAPER = {  # (size GB, PT ×, Subway ×, Ascetic ×)
    ("GS", "SSSP"): (13.7, 84.5, 4.2, 2.3), ("FK", "SSSP"): (19.5, 30.0, 2.1, 1.3),
    ("FS", "SSSP"): (27.4, 23.7, 1.8, 1.5), ("UK", "SSSP"): (28.6, 217.9, 12.1, 9.8),
    ("GS", "PR"): (7.2, 90.0, 15.1, 1.5), ("FK", "PR"): (10.1, 45.0, 10.8, 4.8),
    ("FS", "PR"): (14.4, 42.8, 12.4, 9.1), ("UK", "PR"): (14.9, 87.3, 22.2, 15.2),
    ("GS", "CC"): (7.0, 22.8, 4.0, 0.04), ("FK", "CC"): (9.9, 14.7, 3.0, 1.0),
    ("FS", "CC"): (13.9, 12.4, 2.0, 1.3), ("UK", "CC"): (14.5, 15.7, 5.2, 3.3),
    ("GS", "BFS"): (7.0, 27.9, 1.0, 0.02), ("FK", "BFS"): (9.9, 18.3, 1.0, 0.3),
    ("FS", "BFS"): (13.9, 22.5, 1.0, 0.7), ("UK", "BFS"): (14.5, 10.6, 0.9, 0.6),
}


def test_table5_data_transfer(benchmark, grid):
    def collect():
        rows = []
        ratios = {"PT": [], "Subway": [], "Ascetic": []}
        for algo in ALGO_ORDER:
            for abbr in DATASET_ORDER:
                cell = grid[(abbr, algo)]
                size_gb = cell["PT"].extra["dataset_bytes"] / 1e9
                x = {
                    name: max(cell[name].transfer_over_dataset, 1e-3)
                    for name in ("PT", "Subway", "Ascetic")
                }
                for name in ratios:
                    ratios[name].append(x[name])
                p = PAPER[(abbr, algo)]
                rows.append(
                    [
                        algo, abbr, f"{size_gb:.1f}G",
                        f"{x['PT']:.1f}X", f"{x['Subway']:.2f}X", f"{x['Ascetic']:.2f}X",
                        f"{p[1]:.1f}X", f"{p[2]:.1f}X", f"{p[3]:.2f}X",
                    ]
                )
        rows.append(
            [
                "GEOMEAN", "", "",
                f"{geomean(ratios['PT']):.1f}X",
                f"{geomean(ratios['Subway']):.2f}X",
                f"{geomean(ratios['Ascetic']):.2f}X",
                "32.5X", "3.6X", "1.4X",
            ]
        )
        return rows, ratios

    rows, ratios = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "table5",
        "Table 5 — data transfer / dataset size (measured vs paper)",
        format_table(
            ["algo", "ds", "size", "PT", "Subway", "Ascetic",
             "paper PT", "paper Sub", "paper Asc"],
            rows,
        ),
    )

    # Shape claims:
    # 1. Strict ordering of the geomeans: PT ≫ Subway > Ascetic.
    g = {k: geomean(v) for k, v in ratios.items()}
    assert g["PT"] > 3 * g["Subway"] > 3 * g["Ascetic"]
    # 2. Subway's BFS rows sit at ≈1× (each reached edge moves exactly once).
    for abbr in DATASET_ORDER:
        assert 0.8 < grid[(abbr, "BFS")]["Subway"].transfer_over_dataset < 1.3
    # 3. Ascetic's BFS rows sit *below* 1× — the Static Region absorbs part
    #    of the one-shot traffic (paper: 0.02–0.7×).
    for abbr in DATASET_ORDER:
        assert grid[(abbr, "BFS")]["Ascetic"].transfer_over_dataset < 0.9
    # 4. Ascetic never moves more processing data than Subway.
    for (abbr, algo), cell in grid.items():
        assert (
            cell["Ascetic"].processing_bytes_h2d
            <= cell["Subway"].processing_bytes_h2d * 1.05
        ), (abbr, algo)
