"""§1–2 motivation — reuse distances, LRU's cliff, and the pinned alternative.

The paper's founding observations, quantified on our workloads:

* graph traversals *do* reuse data across iterations, but the reuse
  distance is roughly the whole dataset (Fig. 1's Pa→Pb→Pc→Pa pattern);
* therefore LRU caching (UVM, partition swapping) earns ~0 hits until
  capacity reaches the working set — a cliff;
* a *pinned* region of the same size earns hits proportional to its
  coverage — no cliff.  That delta is the entire reason the Static Region
  exists.

Also reproduces §1's headline measurement: PT-style processing of PR on FK
moves a large multiple of the graph per run (the paper measured 1306 GB ≈
2× the dataset *per iteration* on its 11 GB card).
"""

from repro.algorithms import make_program
from repro.analysis.report import format_table
from repro.analysis.reuse import lru_hit_rate_curve, pinned_hit_rate, reuse_distances
from repro.analysis.traces import trace_uvm_run
from repro.harness.experiments import make_workload

from conftest import report

SCALE = 5e-5  # reuse-distance analysis is O(accesses · log) — keep it light


def test_motivation_reuse_distance(benchmark):
    w = make_workload("FK", "PR", scale=SCALE)

    def run():
        trace, summary, _ = trace_uvm_run(
            w.graph, w.fresh_program(), w.spec, data_scale=w.scale
        )
        n_chunks = summary.n_chunks
        distances = reuse_distances(trace.chunk_sets)
        caps = [n_chunks // 8, n_chunks // 4, n_chunks // 2,
                3 * n_chunks // 4, n_chunks]
        lru = lru_hit_rate_curve(trace.chunk_sets, caps)
        pinned = [pinned_hit_rate(trace.chunk_sets, c) for c in caps]
        return n_chunks, distances, caps, lru, pinned

    n_chunks, distances, caps, lru, pinned = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    import numpy as np

    median_d = float(np.median(distances)) if distances.size else 0.0
    rows = [
        [f"{cap / n_chunks:.0%}", f"{l:.1%}", f"{p:.1%}"]
        for cap, l, p in zip(caps, lru, pinned)
    ]
    text = format_table(
        ["cache capacity / dataset", "LRU hit rate", "pinned-region hit rate"], rows
    )
    text += (
        f"\n\nmedian reuse distance: {median_d:,.0f} of {n_chunks:,} chunks "
        f"({median_d / n_chunks:.0%} of the dataset)"
    )
    report("motivation_reuse", "§1–2 motivation — reuse distance and the LRU cliff "
           "(PR on FK, UVM trace)", text)

    # The three claims.
    assert median_d > 0.5 * n_chunks, "reuse distances span most of the dataset"
    # LRU at half the dataset earns (almost) nothing; pinned earns plenty.
    assert lru[2] < 0.15
    assert pinned[2] > 0.30
    assert pinned[2] > lru[2] + 0.25


def test_motivation_fig1_partition_reuse(benchmark):
    """§1's measured motivation: on PR/FK, pinning one partition in the
    PT scheme cut CPU→GPU transfer from 1306 GB to 966 GB (−26 %) — the
    seed of the Static Region idea (Fig. 1's "Partition + Reuse" row)."""
    from repro.harness.experiments import BENCH_SCALE, make_workload, run_workload

    w = make_workload("FK", "PR", scale=BENCH_SCALE)

    def run():
        base = run_workload(w, "PT")
        pinned = run_workload(w, "PT", pinned_partitions=1)
        return base, pinned

    base, pinned = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = 1 - pinned.metrics.bytes_h2d / base.metrics.bytes_h2d
    rows = [
        ["PT (swap everything)", f"{base.metrics.bytes_h2d / 1e9:.0f}GB", "1306GB"],
        ["PT + one pinned partition", f"{pinned.metrics.bytes_h2d / 1e9:.0f}GB", "966GB"],
        ["reduction", f"{reduction:.0%}", "26%"],
    ]
    report(
        "motivation_fig1",
        "§1 / Fig. 1 — pinning one partition in the PT scheme (PR on FK)",
        format_table(["configuration", "measured", "paper"], rows),
    )
    assert 0.10 < reduction < 0.60
    assert pinned.elapsed_seconds <= base.elapsed_seconds
