"""Table 2 — average GPU memory used per iteration by the fine-grained scheme.

Paper (Table 2), on a 8–16 GB card:

    Dataset            BFS      SSSP     CC       PR
    Friendster-konect  0.45GB   0.64GB   1.64GB   2.97GB
    UK-2007-04         0.11GB   0.94GB   0.46GB   3.80GB

Plus §2.2's companion measurement: "68 % of GPU time is idle in BFS ...
on Friendster-konect" under the sequential Subway pipeline.  Both come out
of one Subway run per cell.
"""

import pytest

from repro.analysis.memory_usage import subway_idle_fraction, subway_memory_usage
from repro.analysis.report import format_table, human_bytes

from conftest import ALGO_ORDER, report

PAPER_GB = {
    "FK": {"BFS": 0.45, "SSSP": 0.64, "CC": 1.64, "PR": 2.97},
    "UK": {"BFS": 0.11, "SSSP": 0.94, "CC": 0.46, "PR": 3.80},
}
PAPER_GPU_GB = 10.0


def test_table2_memory_usage(benchmark, grid):
    def collect():
        rows = []
        for abbr in ("FK", "UK"):
            measured = [
                subway_memory_usage(grid[(abbr, algo)]["Subway"]) for algo in ALGO_ORDER
            ]
            rows.append([abbr, *(human_bytes(x) for x in measured)])
            rows.append(
                ["paper", *(f"{PAPER_GB[abbr][a]:.2f}GB" for a in ALGO_ORDER)]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "table2",
        "Table 2 — average memory usage per iteration (Subway-style engine)",
        format_table(["dataset", *ALGO_ORDER], rows),
    )

    # Shape: the sparse traversals use almost none of the 10 GB card — the
    # under-utilization motivating the Static Region.  (CC on the deep UK
    # crawl churns harder than the paper's CC — see EXPERIMENTS.md — so the
    # hard bound is asserted on the other cells.)
    for abbr in ("FK", "UK"):
        assert subway_memory_usage(grid[(abbr, "BFS")]["Subway"]) / 1e9 < 1.0
        assert subway_memory_usage(grid[(abbr, "SSSP")]["Subway"]) / 1e9 < 2.5
        assert subway_memory_usage(grid[(abbr, "PR")]["Subway"]) / 1e9 < 6.0
    # BFS uses the least memory; PR-class workloads the most (paper's order).
    for abbr in ("FK", "UK"):
        bfs = subway_memory_usage(grid[(abbr, "BFS")]["Subway"])
        pr = subway_memory_usage(grid[(abbr, "PR")]["Subway"])
        assert bfs < pr


def test_section22_gpu_idle_time(benchmark, grid):
    """§2.2: the sequential pipeline leaves the GPU idle most of the time."""
    idle = benchmark.pedantic(
        lambda: subway_idle_fraction(grid[("FK", "BFS")]["Subway"]),
        rounds=1,
        iterations=1,
    )
    rows = [["Subway BFS/FK GPU idle", f"{idle:.1%}", "68% (paper §2.2)"]]
    report(
        "section22_idle",
        "§2.2 — GPU idle share under the sequential Subway pipeline",
        format_table(["quantity", "measured", "paper"], rows),
    )
    assert 0.4 < idle < 0.9
