"""Figure 11 — robustness to shrinking GPU memory and growing datasets.

Paper, left half: with the 15 GB Friendster dataset and the card swept
5–13 GB, Ascetic's edge over Subway shrinks as memory shrinks but is still
+24.6 % at 35 % memory:dataset.  Right half: RMAT datasets grown to
2.5–12 B edges against a fixed card keep Ascetic ≥ 1.5× even when the
static region is only ~20 % of the dataset.
"""

import pytest

from repro.analysis.report import format_table
from repro.harness.experiments import BENCH_SCALE
from repro.harness.sweeps import sweep_gpu_memory, sweep_rmat_sizes

from conftest import report

MEMORY_FRACTIONS = [0.35, 0.5, 0.65, 0.8, 0.9]
RMAT_EDGES = [2.5e9, 5e9, 8e9, 12e9]
RMAT_SCALE = 1e-4  # the 12 B-edge point stays tractable


def test_fig11_left_gpu_memory_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_gpu_memory("FK", "PR", MEMORY_FRACTIONS, scale=BENCH_SCALE),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.label, f"{p.ascetic_seconds:.2f}s", f"{p.subway_seconds:.2f}s",
         f"{p.speedup:.2f}x"]
        for p in points
    ]
    report(
        "fig11_left",
        "Fig. 11 (left) — GPU memory sweep, PR on FK "
        "(paper: still +24.6% at 35% memory:dataset)",
        format_table(["memory/dataset", "Ascetic", "Subway", "speedup"], rows),
    )

    # Ascetic never loses to Subway, even at 35 % memory…
    assert all(p.speedup > 1.0 for p in points)
    assert points[0].speedup > 1.15  # ≳ the paper's +24.6 % at the low end
    # …and the benefit grows with available memory (more reuse to exploit).
    assert points[-1].speedup > points[0].speedup


def test_fig11_right_rmat_size_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_rmat_sizes("PR", RMAT_EDGES, scale=RMAT_SCALE),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.label, f"{p.memory_fraction:.0%}", f"{p.ascetic_seconds:.2f}s",
         f"{p.subway_seconds:.2f}s", f"{p.speedup:.2f}x"]
        for p in points
    ]
    report(
        "fig11_right",
        "Fig. 11 (right) — RMAT dataset-size sweep, PR, fixed 16 GB-class card "
        "(paper: ≥1.5x even at ~20% memory:dataset)",
        format_table(["dataset", "mem/data", "Ascetic", "Subway", "speedup"], rows),
    )

    assert all(p.speedup > 1.0 for p in points)
    # The largest dataset still clears a healthy margin (paper: 1.5×).
    assert points[-1].speedup > 1.2
    # Memory:dataset shrinks as the dataset grows (the sweep's premise).
    fracs = [p.memory_fraction for p in points]
    assert all(a > b for a, b in zip(fracs, fracs[1:]))
