"""Table 4 — overall performance: PT seconds, Subway/Ascetic speedups over PT.

Paper (Table 4): Subway 5.6× and Ascetic 11.4× geomean speedup over PT;
Ascetic beats Subway in every cell, with the largest wins on BFS.
"""

from repro.analysis.report import format_table, geomean

from conftest import ALGO_ORDER, DATASET_ORDER, report

PAPER = {  # (PT seconds, Subway ×, Ascetic ×)
    ("GS", "SSSP"): (279.9, 9.4, 15.2), ("FK", "SSSP"): (145.2, 7.3, 10.9),
    ("FS", "SSSP"): (177.9, 6.5, 8.6), ("UK", "SSSP"): (595.4, 16.5, 23.7),
    ("GS", "PR"): (249.1, 1.9, 2.5), ("FK", "PR"): (97.9, 1.4, 3.1),
    ("FS", "PR"): (198.3, 2.1, 2.8), ("UK", "PR"): (393.6, 2.3, 4.6),
    ("GS", "CC"): (40.5, 2.9, 17.6), ("FK", "CC"): (36.4, 1.8, 6.0),
    ("FS", "CC"): (59.4, 3.4, 5.2), ("UK", "CC"): (595.4, 16.5, 23.7),
    ("GS", "BFS"): (49.2, 9.9, 84.7), ("FK", "BFS"): (59.2, 10.6, 28.0),
    ("FS", "BFS"): (84.7, 9.9, 15.2), ("UK", "BFS"): (281.2, 35.3, 50.2),
}


def test_table4_performance(benchmark, grid):
    def collect():
        rows, sub_speedups, asc_speedups = [], [], []
        for algo in ALGO_ORDER:
            for abbr in DATASET_ORDER:
                cell = grid[(abbr, algo)]
                pt = cell["PT"].elapsed_seconds
                sub = pt / cell["Subway"].elapsed_seconds
                asc = pt / cell["Ascetic"].elapsed_seconds
                sub_speedups.append(sub)
                asc_speedups.append(asc)
                p_pt, p_sub, p_asc = PAPER[(abbr, algo)]
                rows.append(
                    [
                        algo, abbr, f"{pt:.1f}s", f"{sub:.1f}X", f"{asc:.1f}X",
                        f"{p_pt:.1f}s", f"{p_sub:.1f}X", f"{p_asc:.1f}X",
                    ]
                )
        rows.append(
            [
                "GEOMEAN", "", "",
                f"{geomean(sub_speedups):.1f}X", f"{geomean(asc_speedups):.1f}X",
                "", "5.6X", "11.4X",
            ]
        )
        return rows, sub_speedups, asc_speedups

    rows, sub_speedups, asc_speedups = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "table4",
        "Table 4 — performance (measured vs paper; normalized to PT)",
        format_table(
            ["algo", "ds", "PT", "Subway", "Ascetic", "paper PT", "paper Sub", "paper Asc"],
            rows,
        ),
    )

    # Shape claims:
    # 1. Ascetic beats Subway in every single cell (the paper's Table 4).
    for (abbr, algo), cell in grid.items():
        assert (
            cell["Ascetic"].elapsed_seconds < cell["Subway"].elapsed_seconds
        ), (abbr, algo)
    # 2. Both beat PT on geomean; Ascetic by clearly more.
    g_sub, g_asc = geomean(sub_speedups), geomean(asc_speedups)
    assert g_sub > 1.5
    assert g_asc > 1.5 * g_sub
    # 3. BFS shows the largest PT gap (sparse frontiers vs whole-partition
    #    swaps), as in the paper's 10–85× BFS rows.
    bfs_asc = geomean(
        [grid[(d, "BFS")]["PT"].elapsed_seconds / grid[(d, "BFS")]["Ascetic"].elapsed_seconds
         for d in DATASET_ORDER]
    )
    assert bfs_asc > g_asc
