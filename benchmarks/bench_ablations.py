"""Ablations of the design choices DESIGN.md calls out (paper §5).

* initial Static Region fill (front / rear / random / lazy) — paper: < 5 %
  runtime difference between prefill policies;
* §3.4 chunk replacement on/off — paper: "does not significantly improve
  the performance" because the on-demand window only fits ~2 % of the data;
* §3.3 adaptive repartitioning on/off — the safety valve for mis-sized
  regions;
* Eq. 2's K parameter sensitivity around the 10 % default.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.ascetic import AsceticConfig
from repro.harness.experiments import BENCH_SCALE, make_workload, run_workload

from conftest import report


def test_ablation_fill_policies(benchmark):
    w = make_workload("FK", "PR", scale=BENCH_SCALE)

    def run():
        return {
            fill: run_workload(w, "Ascetic", config=AsceticConfig(fill=fill))
            for fill in ("front", "rear", "random", "lazy")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [fill, f"{r.elapsed_seconds:.2f}s",
         f"{r.extra['static_prefill_bytes'] / 1e9:.2f}GB",
         f"{r.processing_bytes_h2d / 1e9:.1f}GB"]
        for fill, r in results.items()
    ]
    report(
        "ablation_fill",
        "§5 ablation — initial Static Region fill (paper: < 5% difference)",
        format_table(["fill", "time", "prefill", "processing xfer"], rows),
    )

    times = [r.elapsed_seconds for f, r in results.items() if f != "lazy"]
    spread = (max(times) - min(times)) / min(times)
    assert spread < 0.10, "prefill policy choice must be near-irrelevant (§5)"
    # Lazy fill trades prefill traffic for first-iteration coverage.
    assert results["lazy"].extra["static_prefill_bytes"] == 0


def test_ablation_replacement(benchmark):
    w = make_workload("FK", "PR", scale=BENCH_SCALE)

    def run():
        on = run_workload(w, "Ascetic", config=AsceticConfig(fill="front", replacement=True))
        off = run_workload(w, "Ascetic", config=AsceticConfig(fill="front", replacement=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    swap_share = on.extra["swap_bytes"] / max(on.metrics.bytes_h2d, 1)
    delta = (off.elapsed_seconds - on.elapsed_seconds) / off.elapsed_seconds
    rows = [
        ["replacement on", f"{on.elapsed_seconds:.2f}s", f"{swap_share:.1%}"],
        ["replacement off", f"{off.elapsed_seconds:.2f}s", "-"],
        ["time delta", f"{delta:+.1%}", ""],
    ]
    report(
        "ablation_replacement",
        "§5 ablation — chunk replacement (paper: ~2% of data fits the window; "
        "no significant speedup)",
        format_table(["config", "time", "swap share of H2D"], rows),
    )

    # The §5 finding: replacement is bounded by the window and moves the
    # needle by little either way.
    assert swap_share < 0.15
    assert abs(delta) < 0.15


def test_ablation_adaptive_repartition(benchmark):
    # A deliberately mis-sized static region on an id-local dataset: the
    # Eq. 3 valve must recover most of the loss.
    w = make_workload("UK", "SSSP", scale=BENCH_SCALE)
    bad = AsceticConfig(fill="rear", forced_ratio=0.97)

    def run():
        on = run_workload(w, "Ascetic", config=bad.with_(adaptive=True))
        off = run_workload(w, "Ascetic", config=bad.with_(adaptive=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["adaptive on", f"{on.elapsed_seconds:.2f}s", f"{on.extra['repartitions']:.0f}"],
        ["adaptive off", f"{off.elapsed_seconds:.2f}s", "0"],
    ]
    report(
        "ablation_adaptive",
        "§3.3 ablation — Eq. 3 adaptive repartitioning under a mis-sized region.\n"
        "Note: Eq. 3 assumes active data 'distributed more or less evenly'; on a\n"
        "crawl-ordered (id-banded) dataset like UK the shrink can discard coverage\n"
        "the traversal wave would have reached later — visible here when 'on' loses.",
        format_table(["config", "time", "repartitions"], rows),
    )
    # The mechanism fires and both configurations stay correct; the paper's
    # even-spread assumption decides which wins (see the report note).
    assert on.extra["repartitions"] >= 1
    import numpy as np

    assert np.array_equal(on.values, off.values)


@pytest.mark.parametrize("k", [0.05, 0.10, 0.20])
def test_ablation_k_sensitivity(benchmark, k):
    w = make_workload("FS", "CC", scale=BENCH_SCALE)
    res = benchmark.pedantic(
        lambda: run_workload(w, "Ascetic", config=AsceticConfig(k=k)),
        rounds=1,
        iterations=1,
    )
    report(
        f"ablation_k_{k}",
        f"§3.3 ablation — K = {k:.0%} (Eq. 2 input; paper default 10%)",
        format_table(
            ["K", "static ratio", "time"],
            [[f"{k:.0%}", f"{res.extra['static_ratio']:.2f}",
              f"{res.elapsed_seconds:.2f}s"]],
        ),
    )
    assert res.elapsed_seconds > 0
