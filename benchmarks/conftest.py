"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
full 4-datasets × 4-algorithms × 4-engines grid is computed once per
session (the ``grid`` fixture) and shared by Tables 4/5 and Figures 7/9.

Reports are registered with :func:`report` and printed in the terminal
summary, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the paper-style tables alongside pytest-benchmark's own timings.
Every report is also written to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.engines import registry
from repro.engines.base import RunResult
from repro.harness.experiments import BENCH_SCALE

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (title, text) pairs accumulated across the session.
_REPORTS: List[Tuple[str, str]] = []

DATASET_ORDER = ("GS", "FK", "FS", "UK")
ALGO_ORDER = ("BFS", "SSSP", "CC", "PR")

GridType = Dict[Tuple[str, str], Dict[str, RunResult]]


def report(name: str, title: str, text: str) -> None:
    """Register a paper-style report for the terminal summary + results dir."""
    _REPORTS.append((title, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(title + "\n\n" + text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("paper reproduction reports")
    for title, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"==== {title} ====")
        for line in text.splitlines():
            tr.write_line(line)


@pytest.fixture(scope="session")
def grid() -> GridType:
    """The full Tables-4/5 grid: every (dataset, algorithm) × every engine.

    Delegates to :func:`repro.runner.run_grid`: cells fan out across
    worker processes (``REPRO_BENCH_JOBS``, default CPU count capped at
    8) and persist in ``results/cell-cache`` so a re-run replays
    unchanged cells (disable with ``REPRO_BENCH_NO_CACHE=1``).  Results
    are bit-identical to the old serial in-process loop.  Also dumps the
    raw telemetry to ``results/grid.json`` for downstream analysis.
    """
    from repro.harness.persistence import save_results
    from repro.runner import grid_specs, run_grid

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or min(os.cpu_count() or 1, 8)
    cache = (
        None
        if os.environ.get("REPRO_BENCH_NO_CACHE")
        else os.environ.get(
            "REPRO_BENCH_CACHE", os.path.join(RESULTS_DIR, "cell-cache")
        )
    )
    specs = grid_specs(
        DATASET_ORDER, ALGO_ORDER, registry.available(), scale=BENCH_SCALE
    )
    report = run_grid(specs, jobs=jobs, cache=cache)
    failed = [c for c in report.cells if not c.ok]
    if failed:
        raise RuntimeError(
            "grid cells failed: "
            + "; ".join(f"{c.spec.label()}: {c.error}" for c in failed)
        )
    out: GridType = report.result_map()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_results(report.results(), os.path.join(RESULTS_DIR, "grid.json"))
    return out


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
