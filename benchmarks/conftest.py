"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
full 4-datasets × 4-algorithms × 4-engines grid is computed once per
session (the ``grid`` fixture) and shared by Tables 4/5 and Figures 7/9.

Reports are registered with :func:`report` and printed in the terminal
summary, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the paper-style tables alongside pytest-benchmark's own timings.
Every report is also written to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.engines.base import RunResult
from repro.harness.experiments import BENCH_SCALE, make_workload, run_all_engines

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (title, text) pairs accumulated across the session.
_REPORTS: List[Tuple[str, str]] = []

DATASET_ORDER = ("GS", "FK", "FS", "UK")
ALGO_ORDER = ("BFS", "SSSP", "CC", "PR")

GridType = Dict[Tuple[str, str], Dict[str, RunResult]]


def report(name: str, title: str, text: str) -> None:
    """Register a paper-style report for the terminal summary + results dir."""
    _REPORTS.append((title, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(title + "\n\n" + text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("paper reproduction reports")
    for title, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"==== {title} ====")
        for line in text.splitlines():
            tr.write_line(line)


@pytest.fixture(scope="session")
def grid() -> GridType:
    """The full Tables-4/5 grid: every (dataset, algorithm) × every engine.

    Also dumps the raw telemetry to ``results/grid.json`` for downstream
    analysis.
    """
    from repro.harness.persistence import save_results

    out: GridType = {}
    runs = []
    for abbr in DATASET_ORDER:
        for algo in ALGO_ORDER:
            w = make_workload(abbr, algo, scale=BENCH_SCALE)
            out[(abbr, algo)] = run_all_engines(w)
            runs.extend(out[(abbr, algo)].values())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_results(runs, os.path.join(RESULTS_DIR, "grid.json"))
    return out


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
