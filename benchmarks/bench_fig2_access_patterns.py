"""Figure 2 — chunk-granularity access patterns under UVM.

The paper's §2 experiment: vertices stay in GPU memory, edges live in UVM,
and nvprof traces which data chunks each iteration touches.  Three claims
are read off the plots:

* panels (a)–(c): each iteration sweeps the chunk space in a *roughly
  sequential scan*;
* panels (d)–(f): per-chunk access counts are *flat* — "no noticeable hot
  spot";
* the per-iteration touch set is *sparse* relative to the dataset.

The simulated UVM records the same signal; the report prints the summary
statistics plus an ASCII rendering of the access-count panel.
"""

import pytest

from repro.analysis.report import format_table, sparkline
from repro.analysis.traces import trace_uvm_run
from repro.harness.experiments import BENCH_SCALE, make_workload

from conftest import report


@pytest.mark.parametrize("algo", ["PR", "SSSP", "CC"])
def test_fig2_access_patterns(benchmark, algo):
    w = make_workload("FK", algo, scale=BENCH_SCALE)

    def run():
        return trace_uvm_run(w.graph, w.fresh_program(), w.spec, data_scale=w.scale)

    trace, summary, result = benchmark.pedantic(run, rounds=1, iterations=1)

    counts = trace.access_counts(summary.n_chunks)
    rows = [
        ["iterations", summary.n_iterations],
        ["chunks", summary.n_chunks],
        ["mean chunks touched / iteration", f"{summary.mean_fraction_per_iteration:.1%}"],
        ["within-iteration sequentiality", f"{summary.sequentiality:.2f}"],
        ["access-count CV (flat ≈ 0)", f"{summary.count_cv:.2f}"],
        ["chunks ever touched", f"{summary.touched_fraction:.1%}"],
    ]
    text = format_table(["quantity", "value"], rows)
    text += "\n\naccess counts over chunk id (Fig. 2 bottom panel):\n"
    text += sparkline(counts.tolist(), width=72)
    report(f"fig2_{algo}", f"Fig. 2 — {algo} access pattern on FK (UVM trace)", text)

    # The three §2 claims.
    assert summary.sequentiality > 0.8, "per-iteration scans must be near-sequential"
    assert summary.count_cv < 1.0, "no noticeable hot spot"
    assert summary.touched_fraction > 0.9, "whole dataset swept over the run"
    # Sparsity: PR touches widely; the traversals touch a fraction.
    assert summary.mean_fraction_per_iteration < 0.95
