"""Engine contract and run results.

An engine executes one :class:`~repro.algorithms.base.VertexProgram` on one
graph against a fresh :class:`~repro.gpusim.device.SimulatedGPU`, charging
every byte it moves and every kernel it launches to the virtual clock.  The
numeric computation itself is identical across engines (see
``VertexProgram.step``); what an engine contributes is a *data-movement
policy* — which is what the paper evaluates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.events import EventLog
from repro.gpusim.faults import FaultInjector, FaultPlan
from repro.gpusim.memory import Allocation, GPUOutOfMemory
from repro.gpusim.metrics import Metrics

__all__ = [
    "AccessPath",
    "TransferPolicy",
    "FixedPolicy",
    "RegionPolicy",
    "PinnedPrefixPolicy",
    "emit_access_plan",
    "Engine",
    "IterationRecord",
    "RunResult",
]

#: Optional per-iteration observer: ``hook(engine, gpu, graph, state)`` runs
#: before each superstep (used by the analysis tooling to trace accesses).
IterationHook = Callable[["Engine", SimulatedGPU, CSRGraph, ProgramState], None]


class AccessPath(IntEnum):
    """How one granule of edge data reaches the GPU this iteration.

    Small int codes so a policy's plan is a compact numpy array.  The
    *granule* is whatever unit the engine moves data in — 16 KB chunks for
    Ascetic/Hybrid, UVM pages, whole partitions, Subway gather rounds.
    """

    #: Already in device memory (Static Region chunk, pinned partition).
    RESIDENT = 0
    #: Explicit bulk copy of the whole granule; it becomes resident.
    MIGRATE = 1
    #: CPU gathers the needed bytes into staging, then one bulk copy.
    GATHER = 2
    #: Zero-copy loads over the link; nothing becomes resident.
    DIRECT = 3


@runtime_checkable
class TransferPolicy(Protocol):
    """Per-granule transfer decisions — the introspectable engine contract.

    Engines call :meth:`plan` once per iteration with the granules the
    frontier touches; the returned path codes drive (or, for the fixed
    single-path engines, describe) the iteration's data movement and are
    emitted into the event log via :func:`emit_access_plan`, so every
    engine's policy is visible in traces through the same API.
    """

    def plan(self, iteration: int, chunk_ids: np.ndarray,
             touch_counts: Optional[np.ndarray] = None,
             hotness=None) -> np.ndarray:
        """Path codes (``AccessPath`` values, int8) for ``chunk_ids``.

        ``touch_counts`` is this iteration's active-vertex count per
        granule and ``hotness`` the engine's
        :class:`~repro.core.replacement.HotnessTable`; fixed policies may
        ignore both.
        """
        ...


@dataclass(frozen=True)
class FixedPolicy:
    """Every granule takes the same path (Subway's gather, UVM's direct)."""

    path: AccessPath

    def plan(self, iteration: int, chunk_ids: np.ndarray,
             touch_counts: Optional[np.ndarray] = None,
             hotness=None) -> np.ndarray:
        return np.full(len(chunk_ids), int(self.path), dtype=np.int8)


class RegionPolicy:
    """RESIDENT for granules resident in a Static Region, else a fixed path.

    Ascetic's policy: chunks inside the Static Region are computed in
    place, everything else is CPU-gathered on demand (§3.3).  Residency is
    read live from the region, so the plan tracks swaps and repartitions.
    """

    def __init__(self, region, fallback: AccessPath = AccessPath.GATHER) -> None:
        self.region = region
        self.fallback = AccessPath(fallback)

    def plan(self, iteration: int, chunk_ids: np.ndarray,
             touch_counts: Optional[np.ndarray] = None,
             hotness=None) -> np.ndarray:
        paths = np.full(len(chunk_ids), int(self.fallback), dtype=np.int8)
        if len(chunk_ids):
            ids = np.asarray(chunk_ids, dtype=np.int64)
            paths[self.region.resident[ids]] = int(AccessPath.RESIDENT)
        return paths


@dataclass(frozen=True)
class PinnedPrefixPolicy:
    """RESIDENT for the first ``n_pinned`` granules, else bulk MIGRATE.

    The partition-based engine's policy: pinned partitions stay on device,
    touched streamed partitions are shipped whole.
    """

    n_pinned: int

    def plan(self, iteration: int, chunk_ids: np.ndarray,
             touch_counts: Optional[np.ndarray] = None,
             hotness=None) -> np.ndarray:
        ids = np.asarray(chunk_ids, dtype=np.int64)
        paths = np.full(len(ids), int(AccessPath.MIGRATE), dtype=np.int8)
        paths[ids < self.n_pinned] = int(AccessPath.RESIDENT)
        return paths


def emit_access_plan(gpu: SimulatedGPU, engine: str, granule: str,
                     chunk_ids: np.ndarray, paths: np.ndarray) -> None:
    """Record one iteration's transfer decisions in the event log.

    Always emits one counter-less summary marker (per-path granule counts
    in ``extra`` — markers without counters leave ``Metrics`` and lean-mode
    digests untouched).  In recorded mode it additionally emits one marker
    per contiguous same-path run of granule ids, which is what makes the
    per-chunk decision visible in an exported Chrome trace.
    """
    log = gpu.events
    now = gpu.clock.now
    counts = np.bincount(np.asarray(paths, dtype=np.int64), minlength=4)
    summary = tuple(
        (path.name.lower(), float(counts[path])) for path in AccessPath
        if counts[path]
    )
    log.marker("access-path", f"{engine}:{granule}", now, extra=summary)
    if not log.record or not len(chunk_ids):
        return
    ids = np.asarray(chunk_ids, dtype=np.int64)
    codes = np.asarray(paths, dtype=np.int64)
    breaks = np.nonzero((np.diff(codes) != 0) | (np.diff(ids) != 1))[0] + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [len(ids)]))
    for lo, hi in zip(starts, ends):
        log.marker(
            "access-path", AccessPath(codes[lo]).name.lower(), now,
            extra=((f"{granule}_lo", float(ids[lo])),
                   (f"{granule}_hi", float(ids[hi - 1])),
                   ("n", float(hi - lo))),
        )


@dataclass(frozen=True)
class IterationRecord:
    """Telemetry of one superstep."""

    iteration: int
    n_active_vertices: int
    n_active_edges: int
    bytes_h2d: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class RunResult:
    """Everything a finished engine run reports."""

    engine: str
    algorithm: str
    graph_name: str
    values: np.ndarray
    iterations: int
    elapsed_seconds: float
    metrics: Metrics
    gpu_idle_fraction: float
    per_iteration: List[IterationRecord] = field(default_factory=list)
    #: Engine-specific extras (e.g. Ascetic's static prefill bytes, the
    #: chosen static ratio, UVM fault totals).
    extra: Dict[str, float] = field(default_factory=dict)
    #: The run's full event log, attached only when the engine was built
    #: with ``record_events=True`` (``metrics`` above is its fold).
    event_log: Optional[EventLog] = None

    @property
    def bytes_h2d(self) -> int:
        return self.metrics.bytes_h2d

    @property
    def processing_bytes_h2d(self) -> float:
        """H2D bytes excluding any Static Region prestore.

        The paper's transfer comparisons report processing traffic without
        the one-time prefill (Fig. 7's note; Table 5's sub-dataset BFS/CC
        volumes) — this is that number.  Equal to :attr:`bytes_h2d` for
        engines without a prestore.
        """
        return self.metrics.bytes_h2d - self.extra.get("static_prefill_bytes", 0.0)

    @property
    def transfer_over_dataset(self) -> float:
        """Processing bytes H2D / dataset size — the normalization of Table 5."""
        size = self.extra.get("dataset_bytes", 0.0)
        return self.processing_bytes_h2d / size if size else float("nan")

    def summary(self) -> str:
        return (
            f"{self.engine:>8} {self.algorithm:<4} on {self.graph_name:<12} "
            f"{self.elapsed_seconds:9.4f}s  h2d={self.metrics.bytes_h2d / 1e6:9.2f}MB  "
            f"iters={self.iterations:<4d} idle={self.gpu_idle_fraction:5.1%}"
        )


class Engine(abc.ABC):
    """Base class for all data-movement policies.

    Parameters
    ----------
    spec:
        The simulated platform (cost model + device-memory cap, in
        *scaled* bytes — i.e. already multiplied by ``data_scale``).
    record_spans:
        Keep a full timeline (slower; used by overlap tests and plots).
    record_events:
        Retain the run's full :class:`~repro.gpusim.events.SimEvent` list
        and attach it to :attr:`RunResult.event_log` (trace export,
        validation).  Off by default: lean mode folds events into the
        counters on emit, keeping benchmark overhead flat.
    max_iterations:
        Safety cap overriding the program's own.
    data_scale:
        The dataset down-scaling factor ``s`` (see
        :class:`~repro.gpusim.device.SimulatedGPU`): costs are charged at
        paper scale (``bytes / s``), and byte-granular geometry (UVM pages,
        Ascetic chunks) shrinks by ``s`` so page/chunk *counts* match the
        paper.  ``1.0`` means the graph is at its natural size.
    fault_plan:
        Optional chaos-mode :class:`~repro.gpusim.faults.FaultPlan`; with
        ``seed`` it deterministically injects transfer/kernel/allocation
        faults and capacity squeezes that the engine must absorb.  ``None``
        (or a null plan) is the fault-free model, bit for bit.
    seed:
        The run seed feeding the fault injector's RNG stream.
    """

    name: str = "?"

    #: The engine's per-granule :class:`TransferPolicy`.  Subclasses set it
    #: (in ``__init__`` or ``_prepare``) so the decision rule is a
    #: first-class, introspectable object instead of logic buried in
    #: ``_iteration``; ``None`` means the engine has not declared one.
    transfer_policy: Optional[TransferPolicy] = None

    #: Engine attributes never pickled into checkpoints: user-supplied
    #: callbacks and the checkpoint writer itself.
    _CKPT_EXCLUDE = ("checkpoint", "iteration_hook")

    def __init__(
        self,
        spec: GPUSpec | None = None,
        record_spans: bool = False,
        max_iterations: Optional[int] = None,
        data_scale: float = 1.0,
        record_events: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> None:
        if data_scale <= 0 or data_scale > 1.0:
            raise ValueError("data_scale must be in (0, 1]")
        self.spec = spec or GPUSpec()
        self.record_spans = record_spans
        self.record_events = record_events
        self.max_iterations = max_iterations
        self.data_scale = data_scale
        self.fault_plan = fault_plan
        self.seed = int(seed)
        self.iteration_hook: Optional[IterationHook] = None
        #: Optional :class:`~repro.harness.checkpoint.CheckpointWriter`;
        #: when set, the run loop snapshots after every iteration.
        self.checkpoint = None
        #: Iteration the run resumed from (None = ran from scratch).
        self.resumed_iteration: Optional[int] = None
        self._squeeze_allocs: Dict[int, Allocation] = {}

    def scaled_bytes(self, nbytes: int, floor: int = 1) -> int:
        """Scale a paper-scale byte geometry down to this run's data scale."""
        return max(int(nbytes * self.data_scale), floor)

    def reset_for_request(self, keep_static: bool = False) -> None:
        """Ready this instance to serve another :meth:`run` on the same graph.

        The serving layer (:mod:`repro.serve`) keeps engines in a per-graph
        pool and calls this between consecutive requests.  ``keep_static``
        asks the engine to carry device-resident state across the runs —
        the cross-request analogue of the paper's cross-*iteration* reuse.
        The base contract keeps nothing (every run is cold);
        :class:`~repro.core.ascetic.AsceticEngine` overrides it to hand its
        warm Static Region to the next run, skipping the fill phase.
        """
        self.resumed_iteration = None

    # ------------------------------------------------------------ interface
    @abc.abstractmethod
    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram) -> None:
        """Allocate device regions and do one-time setup (charged to the clock)."""

    @abc.abstractmethod
    def _iteration(
        self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram, state: ProgramState
    ) -> None:
        """Account one superstep's data movement + compute on the clock.

        Called with ``state.active`` being the frontier about to be
        processed; must leave the clock at the iteration's completion time.
        The numeric update itself is performed by the caller (``run``).
        """

    def _finish(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram,
                state: ProgramState) -> None:
        """Optional teardown accounting (e.g. copy results back)."""
        gpu.d2h(self._result_bytes(graph), label="results")
        gpu.sync()

    # ----------------------------------------------------------- main loop
    def run(self, graph: CSRGraph, program: VertexProgram,
            resume_from=None) -> RunResult:
        """Execute ``program`` on ``graph``; returns values + accounting.

        ``resume_from`` accepts an
        :class:`~repro.harness.checkpoint.IterationCheckpoint` written by a
        previous (interrupted) run of the same spec: the engine, device,
        program state, and fault-injector RNG stream are restored bit-exactly
        from the snapshot, ``_prepare`` is skipped, and the loop continues
        from the next iteration — producing the same ``RunResult`` an
        uninterrupted run would have.
        """
        program.validate_graph(graph)
        if resume_from is not None:
            gpu, state, records = self._restore(resume_from)
        else:
            faults = None
            if self.fault_plan is not None and not self.fault_plan.is_null:
                faults = FaultInjector(self.fault_plan, seed=self.seed)
            gpu = SimulatedGPU(
                self.spec,
                record_spans=self.record_spans,
                charge_scale=1.0 / self.data_scale,
                record_events=self.record_events,
                faults=faults,
            )
            state = program.init_state(graph)
            records = []
            self._squeeze_allocs = {}
            self._prepare(gpu, graph, program)
            gpu.sync()

        cap = self.max_iterations if self.max_iterations is not None else program.max_iterations
        cap = max(cap, 0)
        while state.active.any() and state.iteration < cap and not program.done(state):
            if self.iteration_hook is not None:
                self.iteration_hook(self, gpu, graph, state)
            t0 = gpu.clock.now
            h2d0 = gpu.metrics.bytes_h2d
            n_active = state.n_active
            # Memoized: the engine's accounting and the program's step
            # reuse this same walk instead of re-expanding the mask.
            n_edges = state.active_edges(graph)
            # The record is labelled with the superstep it *describes* —
            # the pre-step index — so a program whose ``step`` does not
            # bump ``state.iteration`` cannot produce an off-by-one (or,
            # on a zero-iteration run, a phantom ``-1``) record.
            iter_index = state.iteration
            with gpu.iteration(iter_index):
                self._service_squeezes(gpu, graph, iter_index)
                self._iteration(gpu, graph, program, state)
            program.step(graph, state)
            gpu.sync()
            records.append(
                IterationRecord(
                    iteration=iter_index,
                    n_active_vertices=n_active,
                    n_active_edges=n_edges,
                    bytes_h2d=gpu.metrics.bytes_h2d - h2d0,
                    t_start=t0,
                    t_end=gpu.clock.now,
                )
            )
            if self.checkpoint is not None:
                self.checkpoint.save(self, gpu, graph, program, state, records)
        self._finish(gpu, graph, program, state)

        result = RunResult(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph.name,
            values=program.values(state),
            iterations=state.iteration,
            elapsed_seconds=gpu.elapsed,
            metrics=gpu.metrics,
            gpu_idle_fraction=gpu.gpu_idle_fraction(),
            per_iteration=records,
            extra={"dataset_bytes": graph.dataset_bytes / self.data_scale},
            event_log=gpu.events if self.record_events else None,
        )
        if gpu.faults is not None:
            for key, n in gpu.faults.counts.items():
                result.extra[f"fault_{key}"] = float(n)
        self._report_extra(result, gpu, graph)
        return result

    # -------------------------------------------------------- checkpointing
    def snapshot_state(self, gpu: SimulatedGPU, state: ProgramState,
                       records: List[IterationRecord]) -> bytes:
        """Pickle everything a bit-exact resume needs into one opaque blob.

        A *single* pickle of (engine attrs, gpu, state, records) preserves
        shared object identity — the engine's ``Allocation`` handles stay
        the same objects ``DeviceMemory`` tracks, the lanes keep sharing
        one clock and event log, and the fault injector's RNG stream rides
        along — so the restored run continues exactly where it stopped.
        """
        import pickle

        payload = {
            "engine": {k: v for k, v in self.__dict__.items()
                       if k not in self._CKPT_EXCLUDE},
            "gpu": gpu,
            "state": state,
            "records": records,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def _restore(self, checkpoint):
        """Rehydrate ``snapshot_state``'s blob; returns (gpu, state, records)."""
        import pickle

        payload = pickle.loads(checkpoint.blob)
        self.__dict__.update(payload["engine"])
        self.resumed_iteration = checkpoint.iteration
        return payload["gpu"], payload["state"], payload["records"]

    # ----------------------------------------------------------- resilience
    def _alloc_retry(self, gpu: SimulatedGPU, name: str, nbytes: int) -> Allocation:
        """``gpu.memory.alloc`` that absorbs *injected* transient failures.

        Real capacity exhaustion propagates unchanged — only chaos-mode
        failures (``exc.injected``) are retried, bounded by the plan's
        ``max_retries``.
        """
        attempt = 0
        while True:
            try:
                return gpu.memory.alloc(name, nbytes)
            except GPUOutOfMemory as exc:
                if not exc.injected or attempt >= gpu.faults.plan.max_retries:
                    raise
                attempt += 1

    def _service_squeezes(self, gpu: SimulatedGPU, graph: CSRGraph,
                          iteration: int) -> None:
        """Apply/release the plan's capacity squeezes for this iteration.

        A squeeze is a foreign allocation the engine must make room for:
        releases are processed first (so back-to-back squeezes do not
        stack), then each starting squeeze asks ``_release_memory`` to
        free what is missing and claims ``min(want, available)`` — the
        clamp guarantees no engine ever dies on an unsatisfiable squeeze.
        """
        faults = gpu.faults
        if faults is None:
            return
        for idx, _sq in faults.squeeze_releases(iteration):
            alloc = self._squeeze_allocs.pop(idx, None)
            if alloc is not None:
                gpu.memory.free(alloc)
                gpu.events.marker("squeeze-release", alloc.name, gpu.clock.now,
                                  extra=(("nbytes", float(alloc.nbytes)),))
                self._squeeze_released(gpu, graph)
        for idx, sq in faults.squeeze_starts(iteration):
            want = sq.resolve(gpu.memory.capacity)
            if want <= 0:
                continue
            if want > gpu.memory.available:
                self._release_memory(gpu, graph, want - gpu.memory.available)
            granted = min(want, gpu.memory.available)
            if granted <= 0:
                continue
            alloc = gpu.memory.alloc(f"chaos-squeeze-{idx}", granted)
            self._squeeze_allocs[idx] = alloc
            gpu.events.marker("squeeze", alloc.name, gpu.clock.now,
                              extra=(("nbytes", float(granted)),
                                     ("wanted", float(want))))

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Give back up to ``need`` bytes of device memory; returns bytes freed.

        Engines override this with their degradation policy (shrink the
        static region, re-partition, evict UVM pages...).  The base engine
        has nothing it can safely release.
        """
        return 0

    def _squeeze_released(self, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        """Hook: a squeeze ended and its bytes are available again."""

    # ------------------------------------------------------------- helpers
    def _plan_access(self, gpu: SimulatedGPU, iteration: int,
                     chunk_ids: np.ndarray,
                     touch_counts: Optional[np.ndarray] = None,
                     hotness=None, granule: str = "chunk") -> np.ndarray:
        """Run :attr:`transfer_policy` for one iteration and log the plan."""
        if not len(chunk_ids):
            return np.empty(0, dtype=np.int8)
        paths = self.transfer_policy.plan(iteration, chunk_ids,
                                          touch_counts, hotness)
        emit_access_plan(gpu, self.name, granule, chunk_ids, paths)
        return paths

    def _report_extra(self, result: RunResult, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        """Subclasses append engine-specific numbers to ``result.extra``."""

    @staticmethod
    def _vertex_state_bytes(graph: CSRGraph) -> int:
        return graph.vertex_state_bytes

    @staticmethod
    def _result_bytes(graph: CSRGraph) -> int:
        return graph.n_vertices * 8
