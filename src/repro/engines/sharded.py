"""Multi-device sharded execution over a :class:`~repro.gpusim.fabric.Fabric`.

The :class:`ShardedEngine` is a *meta*-engine: it shards the edge array
across the fabric's devices (:func:`~repro.graph.shard.shard_graph`),
instantiates one **inner** engine per device (any registered single-device
engine — Ascetic or Hybrid are the intended ones), and drives all of them
through one bulk-synchronous superstep loop:

1. every device runs the inner engine's ``_iteration`` against its own
   shard — each shard is a full-vertex-set CSR holding only its edge
   slice, so the global frontier mask filters itself to local work;
2. a fabric-wide barrier, then an **exchange** phase: each device
   broadcasts its locally-produced value/frontier deltas (one entry per
   distinct destination its active local edges touched) to every peer over
   the inter-device links, charged to the cost model and attributed to the
   ``Texchange`` phase;
3. one global ``program.step`` applies the numeric update.

Because the numeric computation is exactly the single global
``program.step(graph, state)`` per superstep — engines are pure
data-movement policies — the sharded run's value arrays are **bit-identical**
to the single-device engines' by construction, which the cross-device
determinism tests pin.  What sharding buys is capacity: the per-device edge
slice (and the inner engine's Static Region over it) only has to fit one
device, so a graph whose edge array exceeds any single device completes on
a fabric of N.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import Engine, IterationRecord, RunResult
from repro.graph.csr import CSRGraph
from repro.graph.shard import GraphShard, shard_graph
from repro.gpusim.device import GPUSpec
from repro.gpusim.fabric import Fabric, FabricSpec

__all__ = ["ShardedEngine", "VALUE_DELTA_BYTES"]

#: Bytes each exchanged vertex delta occupies on the wire: the vertex id
#: (int32) plus its new value (the 8-byte slot every program's value array
#: uses at paper scale).
VALUE_DELTA_BYTES = 12


class ShardedEngine(Engine):
    """Bulk-synchronous multi-device engine wrapping per-device inner engines.

    Parameters (beyond the base :class:`~repro.engines.base.Engine` set)
    ----------------------------------------------------------------------
    fabric:
        A :class:`~repro.gpusim.fabric.FabricSpec` (or its plain-dict /
        HeteroG form) describing the device fleet.  ``None`` builds one
        from ``devices`` + ``topology`` with every device inheriting the
        base spec's memory.
    devices:
        Device count shorthand when ``fabric`` is not given (default 2).
    topology:
        Link class shorthand when ``fabric`` is not given
        (``"pcie"`` | ``"nvlink"``).
    inner:
        Registered name of the per-device engine (default ``"Ascetic"``).
    """

    name = "Sharded"

    def __init__(
        self,
        spec: Optional[GPUSpec] = None,
        record_spans: bool = False,
        max_iterations: Optional[int] = None,
        data_scale: float = 1.0,
        record_events: bool = False,
        fault_plan=None,
        seed: int = 0,
        fabric: Union[FabricSpec, Mapping, None] = None,
        devices: Optional[int] = None,
        topology: str = "pcie",
        inner: str = "Ascetic",
    ) -> None:
        super().__init__(spec=spec, record_spans=record_spans,
                         max_iterations=max_iterations, data_scale=data_scale,
                         record_events=record_events, fault_plan=fault_plan,
                         seed=seed)
        if self.fault_plan is not None and not self.fault_plan.is_null:
            raise ValueError(
                "ShardedEngine does not support chaos-mode fault plans yet; "
                "inject faults into the inner engine's single-device runs"
            )
        if isinstance(fabric, Mapping):
            fabric = FabricSpec.from_dict(fabric)
        if fabric is None:
            fabric = FabricSpec(n_devices=devices if devices else 2,
                                topology=topology)
        elif devices is not None and devices != fabric.n_devices:
            raise ValueError(
                f"devices={devices} contradicts fabric.n_devices="
                f"{fabric.n_devices}"
            )
        if inner == self.name:
            raise ValueError("inner engine cannot be Sharded itself")
        self.fabric_spec: FabricSpec = fabric
        self.inner = inner
        #: The last run's fabric (telemetry/tests); rebuilt per run.
        self.fabric: Optional[Fabric] = None

    # ------------------------------------------------------------ interface
    # The base-class hooks never run (run() is overridden), but the ABC
    # requires them.
    def _prepare(self, gpu, graph, program) -> None:  # pragma: no cover
        raise NotImplementedError("ShardedEngine drives inner engines")

    def _iteration(self, gpu, graph, program, state) -> None:  # pragma: no cover
        raise NotImplementedError("ShardedEngine drives inner engines")

    # ----------------------------------------------------------- main loop
    def run(self, graph: CSRGraph, program: VertexProgram,
            resume_from=None) -> RunResult:
        if resume_from is not None:
            raise NotImplementedError(
                "ShardedEngine does not support checkpoint resume"
            )
        from repro.engines import registry

        program.validate_graph(graph)
        fabric = Fabric(
            self.fabric_spec,
            base=self.spec,
            record_spans=self.record_spans,
            charge_scale=1.0 / self.data_scale,
            record_events=self.record_events,
        )
        self.fabric = fabric
        n = fabric.n_devices
        shards: List[GraphShard] = shard_graph(graph, n)
        inners: List[Engine] = [
            registry.create(
                self.inner,
                spec=fabric.topology.gpu_spec(d),
                data_scale=self.data_scale,
                max_iterations=self.max_iterations,
            )
            for d in range(n)
        ]
        state = program.init_state(graph)
        for d, gpu_d in enumerate(fabric.devices):
            with gpu_d.phase("Tprepare"):
                inners[d]._prepare(gpu_d, shards[d].graph, program)
        fabric.sync_all()

        cap = self.max_iterations if self.max_iterations is not None \
            else program.max_iterations
        cap = max(cap, 0)
        records: List[IterationRecord] = []
        while state.active.any() and state.iteration < cap \
                and not program.done(state):
            if self.iteration_hook is not None:
                self.iteration_hook(self, fabric.devices[0], graph, state)
            t0 = fabric.clock.now
            h2d0 = fabric.events.metrics.bytes_h2d
            n_active = state.n_active
            n_edges = state.active_edges(graph)
            it = state.iteration
            # Per-device local views of the same global frontier: the shard
            # CSR zeroes foreign vertices' degrees, so no explicit masking
            # is needed, and a private state object per device keeps each
            # FrontierCache coherent for its own (shard, mask) pair.
            local_states = [ProgramState(active=state.active, iteration=it)
                            for _ in range(n)]
            for d, gpu_d in enumerate(fabric.devices):
                with gpu_d.iteration(it):
                    inners[d]._iteration(gpu_d, shards[d].graph, program,
                                         local_states[d])
            # Superstep barrier: everyone's local work lands before deltas
            # move — the bulk-synchronous contract that makes one global
            # step equivalent to the single-device run.
            fabric.sync_all()
            self._exchange(fabric, shards, local_states, it)
            program.step(graph, state)
            fabric.sync_all()
            records.append(IterationRecord(
                iteration=it,
                n_active_vertices=n_active,
                n_active_edges=n_edges,
                bytes_h2d=fabric.events.metrics.bytes_h2d - h2d0,
                t_start=t0,
                t_end=fabric.clock.now,
            ))
        # Results live replicated on every device; one copy-back suffices.
        fabric.devices[0].d2h(self._result_bytes(graph), label="results")
        fabric.sync_all()

        result = RunResult(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph.name,
            values=program.values(state),
            iterations=state.iteration,
            elapsed_seconds=fabric.elapsed,
            metrics=fabric.events.metrics,
            gpu_idle_fraction=float(np.mean(
                [fabric.gpu_idle_fraction(d) for d in range(n)]
            )),
            per_iteration=records,
            extra={"dataset_bytes": graph.dataset_bytes / self.data_scale},
            event_log=fabric.events if self.record_events else None,
        )
        result.extra["n_devices"] = float(n)
        result.extra["exchange_bytes"] = float(fabric.exchange_bytes)
        result.extra["max_shard_edge_bytes"] = float(
            max(s.local_edge_bytes for s in shards) / self.data_scale
        )
        horizon = fabric.clock.now
        for d in range(n):
            busy = fabric.events.busy_seconds(fabric.devices[d].gpu.key)
            result.extra[f"device{d}_gpu_busy_frac"] = (
                busy / horizon if horizon > 0 else 0.0
            )
            result.extra[f"device{d}_exchange_bytes"] = float(
                fabric.exchange_bytes_of(d)
            )
        return result

    # ------------------------------------------------------------- exchange
    def _exchange(self, fabric: Fabric, shards: List[GraphShard],
                  local_states: List[ProgramState], iteration: int) -> None:
        """Broadcast each shard's value/frontier deltas to every peer.

        Vertex state is replicated, so after local compute each device owns
        the freshest values for exactly the destinations its local edges
        pushed to this superstep; those deltas (vertex id + value, deduped
        per destination) go to all peers over the inter-device links.  The
        frontier walk is the one the inner engine already memoized on this
        ``(shard, mask)`` pair — no second mask walk.
        """
        n = fabric.n_devices
        if n == 1:
            return
        per_pair: Dict[Tuple[int, int], int] = {}
        for d, shard in enumerate(shards):
            exp = local_states[d].frontier(shard.graph)
            if exp.n_edges == 0:
                continue
            n_updated = int(np.unique(shard.graph.indices[exp.positions]).size)
            # n_updated counts scaled-graph vertices, so this payload is in
            # scaled bytes, exactly like every h2d(nbytes) call; the fabric
            # charges it at paper scale.
            payload = n_updated * VALUE_DELTA_BYTES
            for peer in range(n):
                if peer != d:
                    per_pair[(d, peer)] = payload
        if not per_pair:
            return
        with fabric.phase("Texchange", iteration=iteration):
            fabric.all_exchange(per_pair)
        fabric.sync_all()
