"""Multi-device sharded execution over a :class:`~repro.gpusim.fabric.Fabric`.

The :class:`ShardedEngine` is a *meta*-engine: it shards the edge array
across the fabric's devices (:func:`~repro.graph.shard.shard_graph`),
instantiates one **inner** engine per device (any registered single-device
engine — Ascetic or Hybrid are the intended ones), and drives all of them
through one bulk-synchronous superstep loop:

1. every device runs the inner engine's ``_iteration`` against its own
   shard — each shard is a full-vertex-set CSR holding only its edge
   slice, so the global frontier mask filters itself to local work;
2. a fabric-wide barrier, then an **exchange** phase: each device
   broadcasts its locally-produced value/frontier deltas (one entry per
   distinct destination its active local edges touched) to every peer over
   the inter-device links, charged to the cost model and attributed to the
   ``Texchange`` phase;
3. one global ``program.step`` applies the numeric update.

Because the numeric computation is exactly the single global
``program.step(graph, state)`` per superstep — engines are pure
data-movement policies — the sharded run's value arrays are **bit-identical**
to the single-device engines' by construction, which the cross-device
determinism tests pin.  What sharding buys is capacity: the per-device edge
slice (and the inner engine's Static Region over it) only has to fit one
device, so a graph whose edge array exceeds any single device completes on
a fabric of N.

Fleet chaos mode adds whole-device fault tolerance on top.  Device faults
in the :class:`~repro.gpusim.faults.FaultPlan` resolve at **barrier
granularity**: health is sampled at the top of every superstep
(:meth:`~repro.gpusim.fabric.Fabric.check_health`), so a device that dies
mid-superstep is discovered at the next barrier, where the replicated
vertex state is consistent.  Recovery re-shards the dead device's edge
range across the survivors (the same byte-range tiling as the initial
:func:`~repro.graph.shard.shard_graph` cut, so no edge is dropped or
duplicated), restores the superstep checkpoint
(:class:`~repro.harness.checkpoint.IterationCheckpoint` with per-shard
:class:`~repro.harness.checkpoint.ShardCheckpoint` payloads), and charges
the redistribution H2D plus a survivor re-sync exchange to the sim clock
under a ``Trecover`` phase.  Values stay bit-identical to a fault-free run
because the one global ``program.step`` never depends on the shard layout;
faults cost virtual time, never correctness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import Engine, IterationRecord, RunResult
from repro.graph.csr import CSRGraph
from repro.graph.shard import GraphShard, shard_graph
from repro.gpusim.device import GPUSpec
from repro.gpusim.events import fold_device_faults
from repro.gpusim.fabric import Fabric, FabricSpec
from repro.gpusim.faults import FaultInjector

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.harness's package __init__ pulls in
    # the engine registry, which imports this module.
    from repro.harness.checkpoint import IterationCheckpoint

__all__ = ["ShardedEngine", "DeviceLostError", "VALUE_DELTA_BYTES"]

#: Bytes each exchanged vertex delta occupies on the wire: the vertex id
#: (int32) plus its new value (the 8-byte slot every program's value array
#: uses at paper scale).
VALUE_DELTA_BYTES = 12


class DeviceLostError(RuntimeError):
    """Every device of the fabric failed; there is nothing to recover onto."""


class ShardedEngine(Engine):
    """Bulk-synchronous multi-device engine wrapping per-device inner engines.

    Parameters (beyond the base :class:`~repro.engines.base.Engine` set)
    ----------------------------------------------------------------------
    fabric:
        A :class:`~repro.gpusim.fabric.FabricSpec` (or its plain-dict /
        HeteroG form) describing the device fleet.  ``None`` builds one
        from ``devices`` + ``topology`` with every device inheriting the
        base spec's memory.
    devices:
        Device count shorthand when ``fabric`` is not given (default 2).
    topology:
        Link class shorthand when ``fabric`` is not given
        (``"pcie"`` | ``"nvlink"``).
    inner:
        Registered name of the per-device engine (default ``"Ascetic"``).
    """

    name = "Sharded"

    def __init__(
        self,
        spec: Optional[GPUSpec] = None,
        record_spans: bool = False,
        max_iterations: Optional[int] = None,
        data_scale: float = 1.0,
        record_events: bool = False,
        fault_plan=None,
        seed: int = 0,
        fabric: Union[FabricSpec, Mapping, None] = None,
        devices: Optional[int] = None,
        topology: str = "pcie",
        inner: str = "Ascetic",
    ) -> None:
        super().__init__(spec=spec, record_spans=record_spans,
                         max_iterations=max_iterations, data_scale=data_scale,
                         record_events=record_events, fault_plan=fault_plan,
                         seed=seed)
        if isinstance(fabric, Mapping):
            fabric = FabricSpec.from_dict(fabric)
        if fabric is None:
            fabric = FabricSpec(n_devices=devices if devices else 2,
                                topology=topology)
        elif devices is not None and devices != fabric.n_devices:
            raise ValueError(
                f"devices={devices} contradicts fabric.n_devices="
                f"{fabric.n_devices}"
            )
        if inner == self.name:
            raise ValueError("inner engine cannot be Sharded itself")
        self.fabric_spec: FabricSpec = fabric
        self.inner = inner
        #: The last run's fabric (telemetry/tests); rebuilt per run.
        self.fabric: Optional[Fabric] = None

    # ------------------------------------------------------------ interface
    # The base-class hooks never run (run() is overridden), but the ABC
    # requires them.
    def _prepare(self, gpu, graph, program) -> None:  # pragma: no cover
        raise NotImplementedError("ShardedEngine drives inner engines")

    def _iteration(self, gpu, graph, program, state) -> None:  # pragma: no cover
        raise NotImplementedError("ShardedEngine drives inner engines")

    # ----------------------------------------------------------- main loop
    def run(self, graph: CSRGraph, program: VertexProgram,
            resume_from=None) -> RunResult:
        if resume_from is not None:
            raise NotImplementedError(
                "ShardedEngine does not support checkpoint resume"
            )
        from repro.engines import registry

        program.validate_graph(graph)
        injector: Optional[FaultInjector] = None
        if self.fault_plan is not None and not self.fault_plan.is_null:
            injector = FaultInjector(self.fault_plan, seed=self.seed)
        fabric = Fabric(
            self.fabric_spec,
            base=self.spec,
            record_spans=self.record_spans,
            charge_scale=1.0 / self.data_scale,
            record_events=self.record_events,
            faults=injector,
        )
        self.fabric = fabric
        n = fabric.n_devices
        # Positional view of the live fleet: shards[i] / inners[i] run on
        # fabric device device_ids[i].  Recovery shrinks all three in
        # lockstep; the fabric keeps every device's lanes for accounting.
        device_ids: List[int] = list(range(n))
        shards: List[GraphShard] = shard_graph(graph, n)
        inners: List[Engine] = [
            registry.create(
                self.inner,
                spec=fabric.topology.gpu_spec(d),
                data_scale=self.data_scale,
                max_iterations=self.max_iterations,
            )
            for d in device_ids
        ]
        state = program.init_state(graph)
        for pos, d in enumerate(device_ids):
            gpu_d = fabric.devices[d]
            with gpu_d.phase("Tprepare"):
                inners[pos]._prepare(gpu_d, shards[pos].graph, program)
        fabric.sync_all()
        max_shard_bytes = max(s.local_edge_bytes for s in shards)
        device_losses = 0
        # Superstep checkpoints are only maintained when the plan can
        # actually kill/stall devices — plans without device faults follow
        # the exact fault-free code path, byte for byte.
        track_faults = injector is not None and injector.plan.affects_devices
        checkpoint: Optional["IterationCheckpoint"] = None
        if track_faults:
            checkpoint = self._shard_checkpoint(graph, program, state,
                                                shards, device_ids)

        cap = self.max_iterations if self.max_iterations is not None \
            else program.max_iterations
        cap = max(cap, 0)
        records: List[IterationRecord] = []
        while state.active.any() and state.iteration < cap \
                and not program.done(state):
            if track_faults:
                dead = self._handle_device_faults(fabric, injector)
                if dead:
                    device_ids, shards, inners = self._recover(
                        registry, fabric, graph, program, state,
                        device_ids, dead, checkpoint,
                    )
                    device_losses += len(dead)
                    max_shard_bytes = max(
                        max_shard_bytes,
                        max(s.local_edge_bytes for s in shards),
                    )
            if self.iteration_hook is not None:
                self.iteration_hook(self, fabric.devices[device_ids[0]],
                                    graph, state)
            t0 = fabric.clock.now
            h2d0 = fabric.events.metrics.bytes_h2d
            n_active = state.n_active
            n_edges = state.active_edges(graph)
            it = state.iteration
            # Per-device local views of the same global frontier: the shard
            # CSR zeroes foreign vertices' degrees, so no explicit masking
            # is needed, and a private state object per device keeps each
            # FrontierCache coherent for its own (shard, mask) pair.
            local_states = [ProgramState(active=state.active, iteration=it)
                            for _ in device_ids]
            for pos, d in enumerate(device_ids):
                gpu_d = fabric.devices[d]
                with gpu_d.iteration(it):
                    inners[pos]._iteration(gpu_d, shards[pos].graph, program,
                                           local_states[pos])
            # Superstep barrier: everyone's local work lands before deltas
            # move — the bulk-synchronous contract that makes one global
            # step equivalent to the single-device run.
            fabric.sync_all()
            self._exchange(fabric, shards, local_states, device_ids, it)
            program.step(graph, state)
            fabric.sync_all()
            if track_faults:
                checkpoint = self._shard_checkpoint(graph, program, state,
                                                    shards, device_ids)
            records.append(IterationRecord(
                iteration=it,
                n_active_vertices=n_active,
                n_active_edges=n_edges,
                bytes_h2d=fabric.events.metrics.bytes_h2d - h2d0,
                t_start=t0,
                t_end=fabric.clock.now,
            ))
        # Results live replicated on every device; one copy-back suffices.
        fabric.devices[device_ids[0]].d2h(self._result_bytes(graph),
                                          label="results")
        fabric.sync_all()

        result = RunResult(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph.name,
            values=program.values(state),
            iterations=state.iteration,
            elapsed_seconds=fabric.elapsed,
            metrics=fabric.events.metrics,
            gpu_idle_fraction=float(np.mean(
                [fabric.gpu_idle_fraction(d) for d in range(n)]
            )),
            per_iteration=records,
            extra={"dataset_bytes": graph.dataset_bytes / self.data_scale},
            event_log=fabric.events if self.record_events else None,
        )
        result.extra["n_devices"] = float(n)
        result.extra["exchange_bytes"] = float(fabric.exchange_bytes)
        result.extra["max_shard_edge_bytes"] = float(
            max_shard_bytes / self.data_scale
        )
        horizon = fabric.clock.now
        for d in range(n):
            busy = fabric.events.busy_seconds(fabric.devices[d].gpu.key)
            result.extra[f"device{d}_gpu_busy_frac"] = (
                busy / horizon if horizon > 0 else 0.0
            )
            result.extra[f"device{d}_exchange_bytes"] = float(
                fabric.exchange_bytes_of(d)
            )
        # Fault telemetry: only *observed* faults are reported, so a plan
        # whose device loss lands after the final superstep (or a run with
        # no plan at all) produces the exact fault-free extras — pinned by
        # the digest-stability regression tests.
        if injector is not None:
            for key in sorted(injector.counts):
                if injector.counts[key]:
                    result.extra[f"fault_{key}"] = float(injector.counts[key])
        if device_losses:
            result.extra["device_losses"] = float(device_losses)
        if self.record_events:
            per_device = fold_device_faults(fabric.events.events)
            for dev in sorted(per_device,
                              key=lambda d: -1 if d is None else d):
                prefix = "" if dev is None else f"device{dev}_"
                for key in sorted(per_device[dev]):
                    result.extra[prefix + key] = float(per_device[dev][key])
        return result

    # ------------------------------------------------------- fault handling
    def _shard_checkpoint(self, graph: CSRGraph, program: VertexProgram,
                          state: ProgramState, shards: List[GraphShard],
                          device_ids: List[int]) -> "IterationCheckpoint":
        """Snapshot the superstep barrier state plus per-shard layout.

        Taken right after every ``program.step`` (and once before the first
        superstep), so when a death is detected at the *next* barrier the
        checkpoint is exactly the consistent state every survivor already
        replicates — recovery restores placement and charges traffic, it
        never needs to roll numeric state back.
        """
        from repro.harness.checkpoint import (IterationCheckpoint,
                                              ShardCheckpoint)

        return IterationCheckpoint(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph.name,
            iteration=state.iteration,
            values=np.array(program.values(state), copy=True),
            active=np.array(state.active, copy=True),
            blob=b"",
            shards=tuple(
                ShardCheckpoint(
                    device=d,
                    e_lo=shards[pos].e_lo,
                    e_hi=shards[pos].e_hi,
                    restore_bytes=graph.vertex_state_bytes,
                )
                for pos, d in enumerate(device_ids)
            ),
        )

    def _handle_device_faults(self, fabric: Fabric,
                              injector: FaultInjector) -> List[int]:
        """Sample device health at the barrier; charge stalls, report deaths.

        A transient stall occupies the device's compute lane for the
        remainder of the stall window (kind ``device-stall``, counted as
        retry/wasted time) — the next barrier simply waits it out.  Newly
        ``down`` devices are returned for :meth:`_recover`.
        """
        dead: List[int] = []
        for d, new in fabric.check_health():
            if new == "down":
                dead.append(d)
            elif new == "stalled":
                now = fabric.clock.now
                dur = injector.stall_end(d, now) - now
                if dur > 0:
                    fabric.devices[d].gpu.submit(
                        dur, f"dev{d}-stall", kind="device-stall",
                        counters={"retry_seconds": dur},
                    )
        return dead

    def _recover(self, registry, fabric: Fabric, graph: CSRGraph,
                 program: VertexProgram, state: ProgramState,
                 device_ids: List[int], dead: List[int],
                 checkpoint: "IterationCheckpoint",
                 ) -> Tuple[List[int], List[GraphShard], List[Engine]]:
        """Re-shard the dead devices' edge ranges across the survivors.

        All recovery work is attributed to a ``Trecover`` phase: a typed
        ``reshard`` marker per lost device (its orphaned edge range), a
        fresh inner-engine ``_prepare`` per survivor (the redistribution
        H2D of the re-tiled shards), a charged checkpoint-restore H2D per
        survivor, and one survivors-only exchange round re-syncing the
        active frontier's deltas.  Numeric state needs no rollback — the
        barrier state *is* the checkpoint — so values stay bit-identical
        to a fault-free run.
        """
        survivors = [d for d in device_ids if d not in dead]
        if not survivors:
            raise DeviceLostError(
                f"all {len(device_ids)} device(s) failed at "
                f"iteration {state.iteration}; nothing to recover onto"
            )
        old_range = {s.device: (s.e_lo, s.e_hi) for s in checkpoint.shards}
        with fabric.phase("Trecover", iteration=state.iteration):
            now = fabric.clock.now
            for d in sorted(dead):
                e_lo, e_hi = old_range.get(d, (0, 0))
                fabric.events.marker(
                    "reshard", f"dev{d}", now, device=d,
                    extra=(("device", float(d)),
                           ("e_lo", float(e_lo)),
                           ("e_hi", float(e_hi)),
                           ("survivors", float(len(survivors)))),
                )
            new_shards = shard_graph(graph, len(survivors))
            new_inners: List[Engine] = []
            for pos, d in enumerate(survivors):
                gpu_d = fabric.devices[d]
                inner = registry.create(
                    self.inner,
                    spec=fabric.topology.gpu_spec(d),
                    data_scale=self.data_scale,
                    max_iterations=self.max_iterations,
                )
                # Redistribution H2D: the survivor drops its old shard's
                # placement and re-stages the (larger) re-tiled shard
                # exactly like the initial placement did.
                gpu_d.memory.release_all()
                inner._prepare(gpu_d, new_shards[pos].graph, program)
                restore = graph.vertex_state_bytes
                gpu_d.h2d(restore, label="ckpt-restore")
                fabric.events.marker(
                    "ckpt-restore", f"dev{d}", fabric.clock.now, device=d,
                    extra=(("bytes", float(restore)),
                           ("iteration", float(checkpoint.iteration))),
                )
                new_inners.append(inner)
            # The barrier state is the checkpoint (copyto documents the
            # restore; it is a bit-identical no-op by construction).
            np.copyto(state.active, checkpoint.active)
            # Survivors re-sync the in-flight frontier deltas among
            # themselves so every replica agrees before the next superstep.
            payload = int(state.active.sum()) * VALUE_DELTA_BYTES
            if len(survivors) > 1 and payload > 0:
                per_pair = {
                    (a, b): payload
                    for a in survivors for b in survivors if a != b
                }
                fabric.all_exchange(per_pair, label="recovery-exchange")
        fabric.sync_all()
        return survivors, new_shards, new_inners

    # ------------------------------------------------------------- exchange
    def _exchange(self, fabric: Fabric, shards: List[GraphShard],
                  local_states: List[ProgramState], device_ids: List[int],
                  iteration: int) -> None:
        """Broadcast each shard's value/frontier deltas to every live peer.

        Vertex state is replicated, so after local compute each device owns
        the freshest values for exactly the destinations its local edges
        pushed to this superstep; those deltas (vertex id + value, deduped
        per destination) go to all peers over the inter-device links.  The
        frontier walk is the one the inner engine already memoized on this
        ``(shard, mask)`` pair — no second mask walk.  Only ``device_ids``
        (the surviving fleet) participates — dead devices neither send nor
        receive.
        """
        if len(device_ids) == 1:
            return
        per_pair: Dict[Tuple[int, int], int] = {}
        for pos, d in enumerate(device_ids):
            shard = shards[pos]
            exp = local_states[pos].frontier(shard.graph)
            if exp.n_edges == 0:
                continue
            n_updated = int(np.unique(shard.graph.indices[exp.positions]).size)
            # n_updated counts scaled-graph vertices, so this payload is in
            # scaled bytes, exactly like every h2d(nbytes) call; the fabric
            # charges it at paper scale.
            payload = n_updated * VALUE_DELTA_BYTES
            for peer in device_ids:
                if peer != d:
                    per_pair[(d, peer)] = payload
        if not per_pair:
            return
        with fabric.phase("Texchange", iteration=iteration):
            fabric.all_exchange(per_pair)
        fabric.sync_all()
