"""UVM — the Unified Virtual Memory baseline (§2.1, §4.4).

Vertices live in device memory; the edge array is a managed allocation whose
pages migrate to the GPU on first touch and are evicted LRU under
oversubscription.  Three modelled effects match the paper's §4.4 diagnosis:

* *page amplification*: a touched edge drags its whole page across PCIe,
  so sparse frontiers move far more bytes than they use;
* *defeated LRU*: reuse distances are the whole dataset, so pages are
  evicted long before their next-iteration reuse (Fig. 1's thrashing);
* *fault overhead*: faults stall the kernel; they are serviced in driver
  batches, each charged ``uvm_fault_latency`` on the GPU lane.

``pin_fraction`` reserves a prefix of the edge array on-device via
``cudaMemAdvise(SetPreferredLocation)`` — the paper's UVM baseline applies
such advice (§4.1).  Pinned pages never fault and never move again.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import AccessPath, Engine, FixedPolicy, RunResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.uvm import UVMMemory

__all__ = ["UVMEngine"]


class UVMEngine(Engine):
    """The UVM baseline: demand-paged edges, LRU eviction, memadvise pinning.

    See the module docstring for the three modelled §4.4 penalties.
    """

    name = "UVM"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        record_spans: bool = False,
        max_iterations: int | None = None,
        data_scale: float = 1.0,
        record_events: bool = False,
        fault_plan=None,
        seed: int = 0,
        pin_fraction: float = 0.25,
    ) -> None:
        super().__init__(spec, record_spans, max_iterations, data_scale,
                         record_events, fault_plan, seed)
        if not 0.0 <= pin_fraction <= 1.0:
            raise ValueError("pin_fraction must be in [0, 1]")
        self.pin_fraction = pin_fraction
        #: UVM's fixed policy: every touched page is accessed through the
        #: unified address space (demand paging does the moving).
        self.transfer_policy = FixedPolicy(AccessPath.DIRECT)
        #: Optional access-trace recorder with ``record(t, chunk_ids)``
        #: (duck-typed; see :mod:`repro.analysis.traces`).  Fig. 2 is
        #: produced through this hook — the paper acquired the same signal
        #: with nvprof on UVM.
        self.trace = None

    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram) -> None:
        self._alloc_retry(gpu, "vertex_state", self._vertex_state_bytes(graph))
        capacity = gpu.memory.available
        self._pool_alloc = self._alloc_retry(gpu, "uvm_resident_pool", capacity)
        # Page geometry scales with the data so the page *count* — and with
        # it fault counts and LRU behaviour — matches the paper-scale run.
        self._uvm = UVMMemory(
            managed_bytes=graph.edge_array_bytes,
            capacity_bytes=capacity,
            page_size=self.scaled_bytes(gpu.spec.uvm_page_size),
            events=gpu.events,
            clock=gpu.clock,
        )
        gpu.h2d(self._vertex_state_bytes(graph), label="vertex-state")
        if self.pin_fraction > 0.0 and self._uvm.n_pages:
            # Pin a prefix of the edge array sized relative to *capacity*
            # (pinning relative to the dataset could starve the pager).
            n_pin = min(
                int(self._uvm.capacity_pages * self.pin_fraction),
                self._uvm.n_pages,
                max(self._uvm.capacity_pages - 1, 0),
            )
            if n_pin > 0:
                moved = self._uvm.advise_pin(np.arange(n_pin, dtype=np.int64))
                gpu.h2d(moved, label="memadvise-prefetch")

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Shrink the resident pool (evicting LRU pages) to free bytes.

        The pool never shrinks below the pinned pages plus one streaming
        page — the pager must keep one slot to make progress.
        """
        page = self._uvm.page_size
        floor_pages = self._uvm.pinned_pages + 1
        cur_pages = self._pool_alloc.nbytes // page
        give_pages = min(-(-need // page), cur_pages - floor_pages)
        if give_pages <= 0:
            return 0
        new_pages = cur_pages - give_pages
        self._uvm.shrink_capacity(new_pages * page)
        freed = self._pool_alloc.nbytes - new_pages * page
        gpu.memory.resize(self._pool_alloc, new_pages * page)
        return freed

    def _touched_pages(self, graph: CSRGraph, active: np.ndarray) -> np.ndarray:
        """Unique page ids the active vertices' edge ranges cover (vectorized)."""
        vs = np.nonzero(active)[0]
        if vs.size == 0 or self._uvm.n_pages == 0:
            return np.empty(0, dtype=np.int64)
        bpe = graph.bytes_per_edge
        lo = graph.indptr[vs] * bpe
        hi = graph.indptr[vs + 1] * bpe
        has = hi > lo
        lo, hi = lo[has], hi[has]
        if lo.size == 0:
            return np.empty(0, dtype=np.int64)
        from repro.core.static_region import range_mark

        p_lo = lo // self._uvm.page_size
        p_hi = (hi - 1) // self._uvm.page_size
        marks = range_mark(p_lo, p_hi + 1, self._uvm.n_pages)
        return np.nonzero(np.cumsum(marks[:-1]) > 0)[0]

    def _iteration(
        self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram, state: ProgramState
    ) -> None:
        pages = self._touched_pages(graph, state.active)
        self._plan_access(gpu, state.iteration, pages, granule="page")
        access = self._uvm.touch(pages)
        prefetch_bytes = 0
        k = gpu.spec.uvm_prefetch_pages
        if k > 0 and access.n_faults and self._uvm.n_pages:
            # Sequential prefetch: pull the next k pages behind each
            # touched page (the driver's density heuristic, simplified).
            ahead = (pages[:, None] + np.arange(1, k + 1)[None, :]).ravel()
            ahead = ahead[ahead < self._uvm.n_pages]
            prefetch_bytes = self._uvm.prefetch(ahead)
        if self.trace is not None:
            self.trace.record(gpu.clock.now, pages)
        gpu.vertex_scan(graph.n_vertices, passes=1, label="gen-active")
        n_edges = state.active_edges(graph)
        spec = gpu.spec
        charged_bytes = int((access.bytes_migrated + prefetch_bytes) * gpu.charge_scale)
        fault_batches = -(-access.n_faults // spec.uvm_fault_batch) if access.n_faults else 0
        stall = (
            fault_batches * spec.uvm_fault_latency
            + charged_bytes / spec.uvm_migration_bandwidth
        )
        kernel = spec.uvm_kernel_penalty * spec.kernel.edge_kernel_seconds(
            int(n_edges * gpu.charge_scale), atomics=program.atomics
        )
        # Faults stall the SMs: kernel then migration serialize on the GPU
        # lane as two events, so the compute / fault-stall split survives in
        # the timeline.  The fault/migration/eviction counters were already
        # emitted by the pager's touch(); the stall event carries the PCIe
        # charge.
        done = gpu.clock.now
        if n_edges > 0 or kernel > 0:
            with gpu.phase("Tcompute"):
                done = gpu.gpu.submit_kernel(
                    kernel, label="uvm-kernel",
                    counters={
                        "kernel_launches": 1 if n_edges else 0,
                        "edges_processed": int(n_edges * gpu.charge_scale),
                    },
                    faults=gpu.faults,
                )
        if stall > 0 or fault_batches or charged_bytes:
            with gpu.phase("Tfault"):
                done = gpu.gpu.submit(
                    stall, label="uvm-fault-stall", kind="fault-stall",
                    counters={
                        "bytes_h2d": charged_bytes,
                        "h2d_transfers": fault_batches,
                        "fault_batches": fault_batches,
                    },
                )
        gpu.sync(done)

    def _report_extra(self, result: RunResult, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        result.extra["page_size"] = float(self._uvm.page_size)
        result.extra["resident_pages"] = float(self._uvm.resident_pages)
        result.extra["pin_fraction"] = float(self.pin_fraction)
