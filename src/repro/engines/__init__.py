"""Out-of-GPU-memory processing engines.

The three baselines the paper compares against (§4.1):

* :class:`~repro.engines.partition_based.PartitionEngine` — **PT**: the
  GraphReduce-style scheme that swaps whole graph partitions through GPU
  memory every iteration;
* :class:`~repro.engines.uvm_engine.UVMEngine` — **UVM**: NVIDIA Unified
  Virtual Memory demand paging with LRU eviction and ``cudaMemAdvise``;
* :class:`~repro.engines.subway.SubwayEngine` — **Subway** (EuroSys '20):
  fine-grained per-iteration subgraph gathering, with the sequential
  GenDataMap → Gather → Transfer → Compute pipeline of Fig. 5.

The paper's own engine, Ascetic, is implemented in :mod:`repro.core` and
re-exported here (with its config) so this package is the one-stop engine
surface.  All engines run the same
:class:`~repro.algorithms.base.VertexProgram` and produce bit-identical
vertex values; they differ only in how edge data reaches the simulated GPU —
which is the entire subject of the paper.

A fifth engine, :class:`~repro.engines.hybrid.HybridEngine`, goes beyond
the paper: it chooses per chunk among explicit migration, CPU gathering,
and zero-copy direct access from measured hotness (the HyTGraph/EMOGI
direction).  Every engine expresses its per-granule decision rule through
the :class:`~repro.engines.base.TransferPolicy` API, so the choice of
:class:`~repro.engines.base.AccessPath` is introspectable and visible in
traces uniformly.

Engine lookup by name goes through :mod:`repro.engines.registry`; the
built-in five (``PT``, ``UVM``, ``Subway``, ``Ascetic``, ``Hybrid``) are
pre-registered with :class:`~repro.engines.registry.EngineInfo` capability
metadata.
"""

from repro.engines.base import (
    AccessPath,
    Engine,
    FixedPolicy,
    IterationRecord,
    PinnedPrefixPolicy,
    RegionPolicy,
    RunResult,
    TransferPolicy,
)
from repro.engines.partition_based import PartitionEngine
from repro.engines.uvm_engine import UVMEngine
from repro.engines.subway import SubwayEngine
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.hybrid import HybridEngine, HybridPolicy
from repro.engines.sharded import ShardedEngine
from repro.engines import registry
from repro.engines.registry import EngineInfo

__all__ = [
    "AccessPath",
    "TransferPolicy",
    "FixedPolicy",
    "RegionPolicy",
    "PinnedPrefixPolicy",
    "Engine",
    "EngineInfo",
    "IterationRecord",
    "RunResult",
    "PartitionEngine",
    "UVMEngine",
    "SubwayEngine",
    "AsceticEngine",
    "AsceticConfig",
    "HybridEngine",
    "HybridPolicy",
    "ShardedEngine",
    "registry",
]
