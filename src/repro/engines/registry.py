"""Engine registry — the single source of truth for engine names.

Every place that used to hard-code the engine names (the harness's
``ENGINES`` dict, the CLI's ``--engine`` choices, the grid runner) now
derives them from this registry.  Third-party engines plug in with one
call::

    from repro.engines import registry

    registry.register("MyEngine", MyEngineClass, info=registry.EngineInfo(
        description="my transfer scheme",
        supported_engine_opts=("my_knob",),
    ))

A *factory* is any callable returning an :class:`~repro.engines.base.Engine`
when called with the engine's keyword options (``spec=``, ``data_scale=``,
plus engine-specific extras such as Ascetic's ``config=``).  Plain engine
classes qualify.

The optional :class:`EngineInfo` declares the engine's capabilities —
whether it can warm-start across serve requests, which extra constructor
options it accepts, and a one-line summary of its transfer policy — so the
CLI help and the serve catalog can introspect engines instead of
hard-coding their quirks.  When ``info`` carries a non-``None``
``supported_engine_opts``, :func:`create` validates option names against it
up front, turning a silent ``TypeError`` deep in a sweep into an immediate
error naming the engine and its accepted options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.engines.base import Engine

__all__ = [
    "COMMON_ENGINE_OPTS",
    "EngineInfo",
    "register",
    "unregister",
    "create",
    "get",
    "describe",
    "available",
    "is_registered",
]

#: Constructor options every :class:`~repro.engines.base.Engine` accepts;
#: engine-specific extras come on top via ``EngineInfo.supported_engine_opts``.
COMMON_ENGINE_OPTS: Tuple[str, ...] = (
    "spec",
    "record_spans",
    "max_iterations",
    "data_scale",
    "record_events",
    "fault_plan",
    "seed",
)


@dataclass(frozen=True)
class EngineInfo:
    """Capability metadata registered alongside an engine factory.

    ``supported_engine_opts`` lists the engine-*specific* constructor
    keywords (the :data:`COMMON_ENGINE_OPTS` are implied); ``None`` means
    "unknown — accept anything", which is what info-less registrations get
    so pre-existing third-party engines keep working unvalidated.
    """

    description: str = ""
    #: Can :meth:`~repro.engines.base.Engine.reset_for_request`
    #: ``(keep_static=True)`` carry device-resident state to the next run?
    supports_warm_start: bool = False
    #: Engine-specific constructor keywords beyond :data:`COMMON_ENGINE_OPTS`.
    supported_engine_opts: Optional[Tuple[str, ...]] = None
    #: One-line summary of the per-granule transfer policy (CLI help text).
    transfer_policy: str = ""

    @property
    def all_opts(self) -> Optional[Tuple[str, ...]]:
        """Every accepted constructor keyword, or ``None`` if unvalidated."""
        if self.supported_engine_opts is None:
            return None
        return COMMON_ENGINE_OPTS + tuple(self.supported_engine_opts)


#: Registration-ordered name → factory map (insertion order is the paper's
#: presentation order: PT, UVM, Subway, Ascetic, then Hybrid).
_FACTORIES: Dict[str, Callable[..., Engine]] = {}
#: name → :class:`EngineInfo` for factories registered with metadata.
_INFO: Dict[str, EngineInfo] = {}

#: Fallback for info-less registrations: unknown capabilities, no
#: option validation.
_DEFAULT_INFO = EngineInfo()


def register(name: str, factory: Callable[..., Engine], *,
             replace: bool = False, info: Optional[EngineInfo] = None) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing a built-in engine is almost always a bug.  ``info``
    optionally attaches :class:`EngineInfo` capability metadata.
    """
    if not name:
        raise ValueError("engine name must be non-empty")
    if not callable(factory):
        raise TypeError(f"engine factory for {name!r} must be callable")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"engine {name!r} is already registered (pass replace=True to override)"
        )
    _FACTORIES[name] = factory
    if info is not None:
        _INFO[name] = info
    else:
        _INFO.pop(name, None)


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (raises ``KeyError`` if absent)."""
    if name not in _FACTORIES:
        known = ", ".join(available()) or "<none>"
        raise KeyError(f"unknown engine {name!r}; registered engines: {known}")
    del _FACTORIES[name]
    _INFO.pop(name, None)


def get(name: str) -> Callable[..., Engine]:
    """The factory registered under ``name``."""
    try:
        return _FACTORIES[name]
    except KeyError:
        known = ", ".join(available()) or "<none>"
        raise KeyError(f"unknown engine {name!r}; registered engines: {known}") from None


def describe(name: str) -> EngineInfo:
    """The :class:`EngineInfo` for ``name`` (a default for info-less entries).

    Raises the same ``KeyError`` as :func:`get` for unknown names.
    """
    get(name)
    return _INFO.get(name, _DEFAULT_INFO)


def create(name: str, **opts) -> Engine:
    """Instantiate the engine registered under ``name`` with ``opts``.

    When the engine's :class:`EngineInfo` declares its option names, unknown
    keywords raise ``TypeError`` here — naming the engine and the accepted
    options — instead of an anonymous failure inside the factory.
    """
    factory = get(name)
    accepted = describe(name).all_opts
    if accepted is not None:
        unknown = sorted(set(opts) - set(accepted))
        if unknown:
            raise TypeError(
                f"engine {name!r} does not accept option(s) "
                f"{', '.join(map(repr, unknown))}; accepted options: "
                f"{', '.join(accepted)}"
            )
    return factory(**opts)


def available() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_FACTORIES)


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a factory."""
    return name in _FACTORIES


def _register_builtins() -> None:
    """Install the paper's four engines plus Hybrid and Sharded (idempotent)."""
    from repro.core.ascetic import AsceticEngine
    from repro.engines.hybrid import HybridEngine
    from repro.engines.partition_based import PartitionEngine
    from repro.engines.sharded import ShardedEngine
    from repro.engines.subway import SubwayEngine
    from repro.engines.uvm_engine import UVMEngine

    builtins = (
        ("PT", PartitionEngine, EngineInfo(
            description="partition-based baseline: ships touched partitions "
                        "whole every iteration (GraphReduce-style)",
            supports_warm_start=False,
            supported_engine_opts=("double_buffer", "pinned_partitions"),
            transfer_policy="pinned prefix resident, rest bulk-migrated per "
                            "iteration (PinnedPrefixPolicy)",
        )),
        ("UVM", UVMEngine, EngineInfo(
            description="unified-memory baseline: demand paging with LRU "
                        "eviction and memadvise pinning",
            supports_warm_start=False,
            supported_engine_opts=("pin_fraction",),
            transfer_policy="every touched page direct via the unified "
                            "address space (FixedPolicy: DIRECT)",
        )),
        ("Subway", SubwayEngine, EngineInfo(
            description="subgraph-gathering baseline: CPU gathers the active "
                        "subgraph each iteration (EuroSys '20)",
            supports_warm_start=False,
            supported_engine_opts=("pipelined", "materialize"),
            transfer_policy="every gather round CPU-gathered "
                            "(FixedPolicy: GATHER)",
        )),
        ("Ascetic", AsceticEngine, EngineInfo(
            description="the paper's engine: Static Region + overlapped "
                        "on-demand gathering + chunk replacement",
            supports_warm_start=True,
            supported_engine_opts=("config",),
            transfer_policy="resident chunks compute in place, rest "
                            "CPU-gathered (RegionPolicy)",
        )),
        ("Hybrid", HybridEngine, EngineInfo(
            description="hotness-driven hybrid: migrate hot chunks, gather "
                        "dense footprints, zero-copy cold sparse ones",
            supports_warm_start=True,
            supported_engine_opts=("chunk_bytes", "cache_fraction",
                                   "reuse_horizon"),
            transfer_policy="per-chunk migrate/gather/direct from measured "
                            "hotness and needed-vs-moved bytes (HybridPolicy)",
        )),
        ("Sharded", ShardedEngine, EngineInfo(
            description="multi-device meta-engine: equal-edge shards on a "
                        "fabric of N devices, one inner engine per device, "
                        "bulk-synchronous delta exchange (docs/fleet.md)",
            supports_warm_start=False,
            supported_engine_opts=("fabric", "devices", "topology", "inner"),
            transfer_policy="per shard, the inner engine's policy; deltas "
                            "exchanged over inter-device links per superstep",
        )),
    )
    for name, cls, info in builtins:
        if name not in _FACTORIES:
            register(name, cls, info=info)


_register_builtins()
