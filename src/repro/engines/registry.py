"""Engine registry — the single source of truth for engine names.

Every place that used to hard-code the four engine names (the harness's
``ENGINES`` dict, the CLI's ``--engine`` choices, the grid runner) now
derives them from this registry.  Third-party engines plug in with one
call::

    from repro.engines import registry

    registry.register("MyEngine", MyEngineClass)

A *factory* is any callable returning an :class:`~repro.engines.base.Engine`
when called with the engine's keyword options (``spec=``, ``data_scale=``,
plus engine-specific extras such as Ascetic's ``config=``).  Plain engine
classes qualify.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.engines.base import Engine

__all__ = ["register", "unregister", "create", "get", "available", "is_registered"]

#: Registration-ordered name → factory map (insertion order is the paper's
#: presentation order: PT, UVM, Subway, Ascetic).
_FACTORIES: Dict[str, Callable[..., Engine]] = {}


def register(name: str, factory: Callable[..., Engine], *, replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing a built-in engine is almost always a bug.
    """
    if not name:
        raise ValueError("engine name must be non-empty")
    if not callable(factory):
        raise TypeError(f"engine factory for {name!r} must be callable")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"engine {name!r} is already registered (pass replace=True to override)"
        )
    _FACTORIES[name] = factory


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (raises ``KeyError`` if absent)."""
    del _FACTORIES[name]


def get(name: str) -> Callable[..., Engine]:
    """The factory registered under ``name``."""
    try:
        return _FACTORIES[name]
    except KeyError:
        known = ", ".join(available()) or "<none>"
        raise KeyError(f"unknown engine {name!r}; registered engines: {known}") from None


def create(name: str, **opts) -> Engine:
    """Instantiate the engine registered under ``name`` with ``opts``."""
    return get(name)(**opts)


def available() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_FACTORIES)


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a factory."""
    return name in _FACTORIES


def _register_builtins() -> None:
    """Install the paper's four engines (idempotent)."""
    from repro.core.ascetic import AsceticEngine
    from repro.engines.partition_based import PartitionEngine
    from repro.engines.subway import SubwayEngine
    from repro.engines.uvm_engine import UVMEngine

    for name, cls in (
        ("PT", PartitionEngine),
        ("UVM", UVMEngine),
        ("Subway", SubwayEngine),
        ("Ascetic", AsceticEngine),
    ):
        if name not in _FACTORIES:
            register(name, cls)


_register_builtins()
