"""Subway — the state-of-the-art baseline (Sabet et al., EuroSys '20; §2.2).

Per iteration, three strictly sequential steps (the paper's Fig. 5 top row):

(a) the GPU generates the sub-graph structure for the current frontier
    (GenDataMap) and sends the request list to the CPU;
(b) CPU threads gather exactly the active edges into a pinned staging
    buffer, which is then copied over PCIe;
(c) the GPU processes the gathered subgraph.

Because the steps serialize, the GPU idles through (b) — the §2.2
measurement this engine reproduces ("68 % of GPU time is idle in BFS on
Friendster").  Data volume is minimal (only active edges move — Table 5's
~1–4×), but nothing is reused across iterations and most of GPU memory sits
empty (Table 2).

A frontier whose gathered subgraph exceeds the staging region is processed
in rounds, each a full gather → transfer → compute sequence.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import AccessPath, Engine, FixedPolicy, RunResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import SimulatedGPU

__all__ = ["SubwayEngine"]

#: Bytes per active vertex for the subgraph's offset/degree arrays that
#: accompany the gathered edges (Subway's SubVertex structure).
OFFSET_BYTES_PER_ACTIVE_VERTEX = 8


class SubwayEngine(Engine):
    """Subway, with an optional pipelined mode.

    ``pipelined=False`` is the paper's baseline: strictly sequential
    GenDataMap → Gather → Transfer → Compute (the top row of Fig. 5).
    ``pipelined=True`` lets a multi-round iteration overlap round *r+1*'s
    gather with round *r*'s transfer/compute — it quantifies how much of
    Ascetic's win is mere pipelining versus the Static Region (spoiler,
    reproduced in ``bench_engine_variants``: pipelining alone recovers only
    part of the gap, because single-round iterations have nothing to
    pipeline while Ascetic still overlaps against static compute).
    """

    name = "Subway"

    def __init__(self, spec=None, record_spans=False, max_iterations=None,
                 data_scale=1.0, record_events=False, fault_plan=None, seed=0,
                 pipelined: bool = False, materialize: bool = False):
        super().__init__(spec, record_spans, max_iterations, data_scale,
                         record_events, fault_plan, seed)
        #: Subway's fixed policy: every granule (a gather round) is
        #: CPU-gathered — nothing is resident, nothing migrates.
        self.transfer_policy = FixedPolicy(AccessPath.GATHER)
        self.pipelined = pipelined
        #: Physically build each iteration's SubCSR (the buffer a real
        #: system DMAs) instead of only costing it.  Slower; the staged
        #: byte count feeds the cost model directly, cross-validating the
        #: closed-form accounting (and is itself validated against the
        #: source graph).
        self.materialize = materialize

    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram) -> None:
        from repro.gpusim.memory import GPUOutOfMemory

        self._alloc_retry(gpu, "vertex_state", self._vertex_state_bytes(graph))
        budget = gpu.memory.available
        if budget <= 0:
            raise GPUOutOfMemory(
                "no device memory left for the subgraph buffer",
                name="subgraph_buffer", requested=1, available=budget,
                capacity=gpu.memory.capacity, live=gpu.memory.live_allocations(),
            )
        if self.pipelined:
            # Two staging halves so one can fill while the other computes.
            allocs = [
                self._alloc_retry(gpu, "subgraph_buffer_a", budget // 2),
                self._alloc_retry(gpu, "subgraph_buffer_b", budget - budget // 2),
            ]
        else:
            allocs = [self._alloc_retry(gpu, "subgraph_buffer", budget)]
        # Degradation floors: a squeeze may shrink the staging buffers, but
        # never below 1/8 of their original size (rounds just multiply).
        self._staging_allocs = [(a, max(a.nbytes // 8, 1)) for a in allocs]
        self._staging_bytes = max(min(a.nbytes for a in allocs), 1)
        gpu.h2d(self._vertex_state_bytes(graph), label="vertex-state")
        self._sum_iteration_bytes = 0
        self._n_iterations = 0

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Shrink the staging buffer(s) toward their floors to free bytes."""
        freed = 0
        for alloc, floor in self._staging_allocs:
            if freed >= need:
                break
            give = min(alloc.nbytes - floor, need - freed)
            if give > 0:
                gpu.memory.resize(alloc, alloc.nbytes - give)
                freed += give
        if freed:
            self._staging_bytes = max(
                min(a.nbytes for a, _ in self._staging_allocs), 1)
            gpu.events.marker("staging-shrink", "subway", gpu.clock.now,
                              extra=(("freed", float(freed)),
                                     ("staging_bytes", float(self._staging_bytes))))
        return freed

    def _iteration(
        self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram, state: ProgramState
    ) -> None:
        if self.materialize:
            from repro.graph.subgraph import extract_subgraph

            sub = extract_subgraph(graph, state.active)
            sub.validate_against(graph)
            n_edges = sub.n_edges
            offset_bytes = sub.offset_nbytes
            total_bytes = sub.nbytes
        else:
            n_edges = state.active_edges(graph)
            edge_bytes = n_edges * graph.bytes_per_edge
            offset_bytes = state.n_active * OFFSET_BYTES_PER_ACTIVE_VERTEX
            total_bytes = edge_bytes + offset_bytes
        self._sum_iteration_bytes += total_bytes
        self._n_iterations += 1

        # (a) GenDataMap on the GPU + request list down to the host.
        with gpu.phase("Tmap"):
            done = gpu.vertex_scan(graph.n_vertices, passes=2,
                                   label="gen-datamap")
        gpu.sync(done)
        gpu.sync(gpu.d2h(offset_bytes, label="requests"))

        # With two staging halves, pipelined mode lets round r+1 gather
        # while round r flies/computes.
        rounds = max(-(-total_bytes // self._staging_bytes), 1)
        if self.pipelined and rounds == 1 and total_bytes > 0:
            rounds = 2  # split to expose pipelining within the iteration
        self._plan_access(gpu, state.iteration,
                          np.arange(rounds, dtype=np.int64), granule="round")
        edges_left, bytes_left = n_edges, total_bytes
        prev_gather = 0.0
        for r in range(rounds):
            r_bytes = -(-bytes_left // (rounds - r))
            r_edges = -(-edges_left // (rounds - r))
            bytes_left -= r_bytes
            edges_left -= r_edges
            if self.pipelined:
                with gpu.phase("Tfilling"):
                    t_g = gpu.cpu_gather(r_bytes, label="gather",
                                         after=prev_gather)
                with gpu.phase("Ttransfer"):
                    t_x = gpu.h2d(r_bytes, label="subgraph", after=t_g)
                with gpu.phase("Tcompute"):
                    gpu.edge_kernel(r_edges, label="compute",
                                    atomics=program.atomics, after=t_x)
                prev_gather = t_g
            else:
                # (b) host gather, then PCIe copy — GPU idles throughout.
                with gpu.phase("Tfilling"):
                    done = gpu.cpu_gather(r_bytes, label="gather")
                gpu.sync(done)
                with gpu.phase("Ttransfer"):
                    done = gpu.h2d(r_bytes, label="subgraph")
                gpu.sync(done)
                # (c) compute on the gathered subgraph.
                with gpu.phase("Tcompute"):
                    done = gpu.edge_kernel(r_edges, label="compute",
                                           atomics=program.atomics)
                gpu.sync(done)
        gpu.sync()

    def _report_extra(self, result: RunResult, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        # Paper-scale bytes, like every reported byte quantity.
        up = 1.0 / self.data_scale
        if self._n_iterations:
            result.extra["avg_iteration_bytes"] = (
                self._sum_iteration_bytes / self._n_iterations * up
            )
        result.extra["staging_bytes"] = self._staging_bytes * up
