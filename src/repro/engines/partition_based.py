"""PT — the partition-based baseline (GraphReduce-style, §2.1).

The graph's edge array is split into partitions sized to the GPU memory left
after vertex state.  Every iteration, each partition containing at least one
active vertex is shipped whole to the device and processed; the next
iteration ships it again (nothing persists — Fig. 1's "Partition" row).
Transfers and kernels are sequential on purpose: this baseline is the
swap-everything scheme the paper normalizes Tables 4 and 5 to, and its
defining property is that moved bytes ≫ useful bytes (Table 5 shows
10–218× the dataset size).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import Engine, PinnedPrefixPolicy, RunResult
from repro.graph.csr import CSRGraph
from repro.graph.partition import EdgePartition, partition_by_bytes, partitions_of_vertices
from repro.gpusim.device import SimulatedGPU

__all__ = ["PartitionEngine"]


class PartitionEngine(Engine):
    """PT, with an optional GraphReduce-style double buffer.

    ``double_buffer=False`` (the default, and the baseline the paper
    normalizes to) swaps one partition at a time: the kernel waits for the
    transfer, the next transfer waits for the kernel.  ``double_buffer=True``
    halves the partition size and pipelines: partition *i+1* streams in
    while partition *i* computes — the classic optimization GraphReduce
    applies, exposed here for the ablation bench.
    """

    name = "PT"

    def __init__(self, spec=None, record_spans=False, max_iterations=None,
                 data_scale=1.0, record_events=False, fault_plan=None, seed=0,
                 double_buffer: bool = False, pinned_partitions: int = 0):
        super().__init__(spec, record_spans, max_iterations, data_scale,
                         record_events, fault_plan, seed)
        if pinned_partitions < 0:
            raise ValueError("pinned_partitions must be non-negative")
        self.double_buffer = double_buffer
        #: Fig. 1's "Partition + Reuse" row: keep the first k partitions
        #: resident across iterations (§1 measures the idea at 1306 GB →
        #: 966 GB on PR/FK before generalizing it into the Static Region).
        self.pinned_partitions = pinned_partitions

    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram) -> None:
        from repro.gpusim.memory import GPUOutOfMemory

        self._alloc_retry(gpu, "vertex_state", self._vertex_state_bytes(graph))
        budget = gpu.memory.available
        if budget <= 0:
            raise GPUOutOfMemory(
                "no device memory left for a partition buffer",
                name="partition_buffer", requested=1, available=budget,
                capacity=gpu.memory.capacity, live=gpu.memory.live_allocations(),
            )
        # Pinned partitions carve their share off the streaming budget.
        n_slots = (2 if self.double_buffer else 1) + self.pinned_partitions
        part_budget = budget // n_slots
        if part_budget <= 0:
            raise GPUOutOfMemory(
                "device memory too small for the buffer layout",
                name="partition_buffer", requested=n_slots, available=budget,
                capacity=gpu.memory.capacity, live=gpu.memory.live_allocations(),
            )
        self._parts: List[EdgePartition] = partition_by_bytes(graph, part_budget)
        self._n_pinned = min(self.pinned_partitions, len(self._parts))
        #: PT's fixed policy at partition granularity: pinned partitions
        #: stay resident, every other touched partition bulk-migrates whole
        #: (and is thrown away again — Fig. 1's "Partition" row).
        self.transfer_policy = PinnedPrefixPolicy(self._n_pinned)
        buf = min(part_budget, max(p.nbytes for p in self._parts))
        self._part_allocs = [self._alloc_retry(gpu, "partition_buffer", buf)]
        if self.double_buffer:
            self._part_allocs.append(
                self._alloc_retry(gpu, "partition_buffer_2", buf))
        self._part_floor = max(buf // 8, 1)
        # Vertex state (values + offsets + bitmaps) is shipped once, then
        # the pinned partitions (their transfer counts, like any prestore).
        gpu.h2d(self._vertex_state_bytes(graph), label="vertex-state")
        pinned_bytes = sum(p.nbytes for p in self._parts[: self._n_pinned])
        if pinned_bytes:
            gpu.memory.alloc("pinned_partitions", pinned_bytes)
            gpu.h2d(pinned_bytes, label="pinned-partitions")

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Re-partition with smaller streaming buffers to free bytes.

        With pinned partitions the layout is fixed (their allocation is
        sized to the current partitioning), so nothing is safely
        releasable — the squeeze clamp absorbs the difference.
        """
        if self._n_pinned > 0:
            return 0
        n_bufs = len(self._part_allocs)
        cur = self._part_allocs[0].nbytes
        target = max(cur - (-(-need // n_bufs)), self._part_floor)
        if target >= cur:
            return 0
        parts = partition_by_bytes(graph, target)
        buf = min(target, max(p.nbytes for p in parts))
        freed = 0
        for a in self._part_allocs:
            freed += a.nbytes - buf
            gpu.memory.resize(a, buf)
        self._parts = parts
        gpu.events.marker("repartition", "pt-squeeze", gpu.clock.now,
                          extra=(("freed", float(freed)),
                                 ("n_partitions", float(len(parts)))))
        return freed

    def _iteration(
        self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram, state: ProgramState
    ) -> None:
        touched = partitions_of_vertices(graph, self._parts, state.active)
        if not touched.any():
            return
        self._plan_access(gpu, state.iteration, np.nonzero(touched)[0],
                          granule="partition")
        gpu.vertex_scan(graph.n_vertices, passes=1, label="gen-active")
        # kernel_ends[-2] gates the transfer into a reused buffer: with one
        # buffer the previous kernel, with two the one before it.
        lag = 2 if self.double_buffer else 1
        kernel_ends: List[float] = []
        for pid in np.nonzero(touched)[0]:
            part = self._parts[pid]
            if pid < self._n_pinned:
                # Resident across iterations (Fig. 1 "Partition + Reuse"):
                # compute straight away, nothing to transfer.  Does not
                # gate the streaming buffers (kernel_ends tracks only
                # partitions that occupy them).
                with gpu.phase("Tcompute"):
                    gpu.edge_kernel(part.n_edges, label=f"compute{pid}",
                                    atomics=program.atomics)
                continue
            gate = kernel_ends[-lag] if len(kernel_ends) >= lag else 0.0
            with gpu.phase("Ttransfer"):
                t_x = gpu.h2d(part.nbytes, label=f"part{pid}", after=gate)
            # Partition-granular processing is *redundant* by construction:
            # the kernel sweeps the whole partition, active or not (§2.1).
            with gpu.phase("Tcompute"):
                t_k = gpu.edge_kernel(
                    part.n_edges,
                    label=f"compute{pid}",
                    atomics=program.atomics,
                    after=t_x,
                )
            kernel_ends.append(t_k)
        gpu.sync()

    def _report_extra(self, result: RunResult, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        result.extra["n_partitions"] = float(len(self._parts))
