"""Hybrid — per-chunk migrate / gather / direct transfer management.

HyTGraph (PAPERS.md) shows the win from *choosing per chunk* among explicit
migration, CPU-assisted gather, and zero-copy direct access; EMOGI shows
direct access beating migration outright for sparse, low-reuse traversals.
This engine combines the repo's existing machinery — the
:class:`~repro.core.static_region.StaticRegion` as a migrated-chunk device
cache, the :class:`~repro.core.replacement.HotnessTable` as the reuse
signal, Ascetic's pipelined gather rounds — with the simulator's new
zero-copy path (:meth:`~repro.gpusim.device.SimulatedGPU.direct_access`).

Every iteration, :class:`HybridPolicy` scores each touched non-resident
chunk with the platform's own cost model:

* **MIGRATE** — the whole chunk flies once over bulk PCIe and becomes
  resident; the cost amortizes over the chunk's measured cross-iteration
  reuse (hot and dense wins here).  Bounded by cache capacity: overflowing
  candidates fall back to their runner-up path.
* **GATHER** — the CPU assembles only the needed bytes and ships them at
  bulk bandwidth; the fixed gather setup amortizes over the round's many
  chunks (medium-density footprints win here).
* **DIRECT** — sector-granular zero-copy loads move only the needed bytes
  with no DMA setup and no burst amplification, but at roughly half
  bandwidth (cold, sparse, one-touch chunks win here).

Chunks already in the cache are **RESIDENT** and compute in place.  The
decisions are emitted through the shared
:class:`~repro.engines.base.TransferPolicy` API, so the per-chunk
:class:`~repro.engines.base.AccessPath` choice is visible in traces exactly
like the fixed-policy engines'.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.bitmaps import split_active
from repro.core.ondemand import plan_ondemand
from repro.core.replacement import HotnessTable
from repro.core.static_region import DEFAULT_CHUNK_BYTES, StaticRegion
from repro.engines.base import AccessPath, Engine, RunResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec, SimulatedGPU

__all__ = ["HybridEngine", "HybridPolicy"]

#: Above this round count the gather chain is charged in aggregate
#: (matching :data:`repro.core.manager.ROUND_LOOP_LIMIT`'s rationale).
ROUND_LOOP_LIMIT = 64

_PATH_CODES = np.array(
    [int(AccessPath.MIGRATE), int(AccessPath.GATHER), int(AccessPath.DIRECT)],
    dtype=np.int8,
)


class HybridPolicy:
    """Cost-model scores for migrate / gather / direct, per touched chunk.

    The per-iteration inputs the engine installs before ``plan``:

    ``bytes_per_touch``
        Expected needed (paper-scale) bytes per active vertex touching a
        chunk — the bytes-needed-vs-bytes-moved signal.
    ``migrate_budget``
        Chunks the device cache can absorb this iteration (free slots plus
        evictable cold residents); migration beyond it falls back.
    """

    def __init__(self, spec: GPUSpec, region: StaticRegion, chunk_bytes: int,
                 reuse_horizon: int = 8) -> None:
        self.spec = spec
        self.region = region
        #: Paper-scale bytes of one chunk (the unit a migration moves).
        self.chunk_bytes = float(chunk_bytes)
        self.reuse_horizon = int(reuse_horizon)
        self.bytes_per_touch = float(chunk_bytes)
        self.migrate_budget = 0

    def plan(self, iteration: int, chunk_ids: np.ndarray,
             touch_counts: Optional[np.ndarray] = None,
             hotness=None) -> np.ndarray:
        ids = np.asarray(chunk_ids, dtype=np.int64)
        paths = np.empty(len(ids), dtype=np.int8)
        resident = self.region.resident[ids]
        paths[resident] = int(AccessPath.RESIDENT)
        need = np.nonzero(~resident)[0]
        if need.size == 0:
            return paths
        touches = (
            np.asarray(touch_counts, dtype=np.float64)[need]
            if touch_counts is not None else np.ones(need.size)
        )
        needed = np.clip(touches * self.bytes_per_touch, 1.0, self.chunk_bytes)
        link = self.spec.pcie
        gather = self.spec.gather
        history = (
            np.minimum(hotness.cumulative[ids[need]], self.reuse_horizon)
            .astype(np.float64)
            if hotness is not None else np.zeros(need.size)
        )
        reuse = 1.0 + history
        # Fixed stage costs amortize over *this iteration's* candidate set:
        # one DMA launch serves every migrated chunk and one request
        # round-trip plus CPU wake-up serves every gathered chunk, so a
        # sparse iteration (few candidates) carries a large per-chunk share
        # — which is exactly when zero-copy's setup-free loads win (EMOGI's
        # sparse-frontier result) — while a dense one amortizes it away.
        n_cand = float(need.size)
        # Migrate: the whole chunk once over bulk PCIe (contiguous in host
        # memory, so no CPU gather), amortized over expected reuse.
        cost_migrate = (
            link.latency / n_cand + self.chunk_bytes / link.bandwidth
        ) / reuse
        # Gather: CPU assembly pipelines with the bulk copy, so the score
        # is the bottleneck stage plus the amortized round overhead (the
        # request round-trip and the gather kick-off).
        cost_gather = (
            needed / min(gather.bandwidth, link.bandwidth)
            + (link.latency + gather.setup) / n_cand
        )
        # Direct: sector-granular zero-copy loads of only the needed bytes.
        sectors = np.ceil(needed / link.sector)
        cost_direct = (
            sectors * link.direct_latency
            + sectors * link.sector / link.direct_bandwidth
        )
        costs = np.stack([cost_migrate, cost_gather, cost_direct])
        chosen = _PATH_CODES[np.argmin(costs, axis=0)].copy()
        # Capacity-bounded migration: keep the candidates with the largest
        # savings over their runner-up path; the rest take the runner-up.
        mig = np.nonzero(chosen == int(AccessPath.MIGRATE))[0]
        budget = max(int(self.migrate_budget), 0)
        if mig.size > budget:
            runner_up = np.where(costs[1, mig] <= costs[2, mig],
                                 _PATH_CODES[1], _PATH_CODES[2])
            saving = np.minimum(costs[1, mig], costs[2, mig]) - costs[0, mig]
            keep = np.argsort(-saving, kind="stable")[:budget]
            overflow = np.ones(mig.size, dtype=bool)
            overflow[keep] = False
            chosen[mig[overflow]] = runner_up[overflow]
        paths[need] = chosen
        return paths


class HybridEngine(Engine):
    """Hotness-driven hybrid transfer management (HyTGraph/EMOGI direction).

    Parameters beyond the :class:`~repro.engines.base.Engine` basics:

    chunk_bytes:
        Paper-scale decision/migration granule (16 KB, like Ascetic's
        chunks — §3.4's burst-friendly size).
    cache_fraction:
        Share of post-vertex-state device memory given to the migrated-chunk
        cache; the rest is the gather staging buffer.
    reuse_horizon:
        Iterations of measured reuse the migration score may amortize over
        (caps the hotness history's influence).
    """

    name = "Hybrid"

    def __init__(self, spec=None, record_spans=False, max_iterations=None,
                 data_scale=1.0, record_events=False, fault_plan=None, seed=0,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 cache_fraction: float = 0.75,
                 reuse_horizon: int = 8):
        super().__init__(spec, record_spans, max_iterations, data_scale,
                         record_events, fault_plan, seed)
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if not 0.0 <= cache_fraction <= 0.95:
            raise ValueError("cache_fraction must be in [0, 0.95]")
        if reuse_horizon < 1:
            raise ValueError("reuse_horizon must be >= 1")
        self.chunk_bytes = int(chunk_bytes)
        self.cache_fraction = float(cache_fraction)
        self.reuse_horizon = int(reuse_horizon)
        self._warm_region: Optional[StaticRegion] = None

    # ------------------------------------------------------------ lifecycle
    def reset_for_request(self, keep_static: bool = False) -> None:
        """Arm the next run to reuse this run's migrated-chunk cache."""
        super().reset_for_request(keep_static)
        region = getattr(self, "_region", None)
        self._warm_region = region if (keep_static and region is not None) else None

    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph,
                 program: VertexProgram) -> None:
        from repro.gpusim.memory import GPUOutOfMemory

        self._alloc_retry(gpu, "vertex_state", self._vertex_state_bytes(graph))
        available = gpu.memory.available
        if available <= 0:
            raise GPUOutOfMemory(
                "no device memory left for the hybrid cache",
                name="hybrid_cache", requested=1, available=available,
                capacity=gpu.memory.capacity, live=gpu.memory.live_allocations(),
            )
        chunk_scaled = self.scaled_bytes(self.chunk_bytes)
        cache_bytes = int(available * self.cache_fraction)
        warm = (self._warm_region is not None
                and self._warm_region.compatible_with(graph, chunk_scaled))
        invalidated = 0
        if warm:
            region = self._warm_region
            invalidated = region.shrink_to(cache_bytes)
        else:
            # The cache starts empty and fills from migration decisions —
            # the lazy analogue of Ascetic's prefilled Static Region.
            region = StaticRegion(graph, capacity_bytes=cache_bytes,
                                  chunk_bytes=chunk_scaled, fill="lazy")
        self._warm_region = None
        self._region = region
        cache_alloc_bytes = region.capacity_chunks * chunk_scaled
        self._cache_alloc = (
            self._alloc_retry(gpu, "hybrid_cache", cache_alloc_bytes)
            if cache_alloc_bytes > 0 else None
        )
        staging_bytes = available - cache_alloc_bytes
        self._staging_alloc = self._alloc_retry(
            gpu, "hybrid_staging", max(staging_bytes, 1))
        self._staging_floor = max(self._staging_alloc.nbytes // 8, 1)
        # Cumulative history: how many iterations each chunk has been
        # touched — the migration score's reuse estimate.
        self._hotness = HotnessTable(region.n_chunks, policy="cumulative",
                                     stale_threshold=self.reuse_horizon)
        self.transfer_policy = HybridPolicy(
            gpu.spec, region, self.chunk_bytes, self.reuse_horizon)
        gpu.h2d(self._vertex_state_bytes(graph), label="vertex-state")
        self._warm_hit = warm
        self._warm_bytes = region.resident_bytes if warm else 0
        self._warm_invalidated = invalidated
        if warm:
            gpu.events.marker(
                "warm-hit", "hybrid-cache", gpu.clock.now,
                extra=(("resident_chunks", float(region.resident_chunks)),
                       ("skipped_bytes", float(self._warm_bytes)),
                       ("invalidated_chunks", float(invalidated))))
        self._migrated_chunks = 0
        self._path_bytes = {AccessPath.MIGRATE: 0, AccessPath.GATHER: 0,
                            AccessPath.DIRECT: 0}

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Shrink staging toward its floor, then evict cache chunks."""
        freed = 0
        give = min(self._staging_alloc.nbytes - self._staging_floor, need)
        if give > 0:
            gpu.memory.resize(self._staging_alloc,
                              self._staging_alloc.nbytes - give)
            freed += give
        if freed < need and self._cache_alloc is not None:
            region = self._region
            target = max(self._cache_alloc.nbytes - (need - freed), 0)
            region.shrink_to(target)
            new_bytes = region.capacity_chunks * region.chunk_bytes
            freed += self._cache_alloc.nbytes - new_bytes
            gpu.memory.resize(self._cache_alloc, new_bytes)
        if freed:
            gpu.events.marker("cache-shrink", "hybrid", gpu.clock.now,
                              extra=(("freed", float(freed)),))
        return freed

    # ------------------------------------------------------------ iteration
    def _iteration(self, gpu: SimulatedGPU, graph: CSRGraph,
                   program: VertexProgram, state: ProgramState) -> None:
        region = self._region
        policy: HybridPolicy = self.transfer_policy
        with gpu.phase("Tmap"):
            t_map = gpu.vertex_scan(graph.n_vertices, passes=2,
                                    label="gen-datamap")
        touch = region.chunk_touch_counts(state.active)
        ids = np.nonzero(touch)[0]
        total_edges = state.active_edges(graph)
        static_bitmap = region.vertex_static_bitmap()
        smap, odmap = split_active(state.active, static_bitmap)
        # A squeezed staging buffer still streams chunk by chunk (the same
        # floor Ascetic's _stream_cap applies).
        staging = max(self._staging_alloc.nbytes, region.chunk_bytes)
        od_plan = plan_ondemand(graph, odmap, staging)
        resident_edges = total_edges - od_plan.n_edges

        # Install this iteration's cost-model inputs, then decide.  The
        # needed-bytes-per-touch estimate is reconstructed in *paper*
        # geometry: down-scaled chunks are smaller than one vertex's edge
        # span, so raw per-chunk byte counts would read as 100 % dense and
        # hide exactly the sub-chunk sparsity zero-copy exploits.  At paper
        # scale a touched 16 KB chunk holds one frontier vertex's edges when
        # the frontier is sparse and ``density × chunk`` bytes when dense.
        n_od_active = int(np.count_nonzero(odmap))
        if n_od_active:
            # Degree is scale-invariant, so scaled bytes over scaled count
            # is the paper-scale per-vertex edge footprint.
            vertex_bytes = od_plan.edge_bytes / n_od_active
            density = n_od_active / max(graph.n_vertices, 1)
            policy.bytes_per_touch = min(
                float(self.chunk_bytes),
                max(vertex_bytes, density * self.chunk_bytes),
            )
        else:
            policy.bytes_per_touch = 0.0
        evictable = region.resident & (self._hotness.last == 0)
        policy.migrate_budget = int(region.free_chunks + int(evictable.sum()))
        paths = self._plan_access(gpu, state.iteration, ids, touch[ids],
                                  self._hotness)

        # Split the on-demand traffic across paths by needed-bytes weight.
        needed = np.clip(touch[ids] * policy.bytes_per_touch, 1.0,
                         float(self.chunk_bytes))
        needed[region.resident[ids]] = 0.0
        w_m = float(needed[paths == int(AccessPath.MIGRATE)].sum())
        w_g = float(needed[paths == int(AccessPath.GATHER)].sum())
        w_d = float(needed[paths == int(AccessPath.DIRECT)].sum())
        w_total = w_m + w_g + w_d
        od_edges = od_plan.n_edges
        if w_total > 0:
            e_m = int(od_edges * (w_m / w_total))
            e_g = int(od_edges * (w_g / w_total))
            b_g = int(od_plan.edge_bytes * (w_g / w_total))
            b_d = int(od_plan.edge_bytes * (w_d / w_total))
            req_g = int(od_plan.request_bytes * (w_g / w_total))
        else:
            e_m = e_g = b_g = b_d = req_g = 0
        e_d = od_edges - e_m - e_g
        mig_ids = ids[paths == int(AccessPath.MIGRATE)]
        mig_bytes = int(mig_ids.size) * region.chunk_bytes

        # ➊ Resident compute overlaps every transfer chain.
        with gpu.phase("Tsr"):
            gpu.edge_kernel(resident_edges, label="static-compute",
                            atomics=program.atomics, after=t_map)
        # ➋ Migration: whole chunks, contiguous in pinned host memory —
        # one bulk copy, no CPU gather, then their compute.
        if mig_bytes:
            with gpu.phase("Tmigrate"):
                t_mig = gpu.h2d(mig_bytes, label="chunk-migrate", after=t_map)
            with gpu.phase("Tondemand"):
                gpu.edge_kernel(e_m, label="migrate-compute",
                                atomics=program.atomics, after=t_mig)
        # ➌ Gather chain: request list down, then pipelined
        # gather → transfer → compute rounds (Ascetic's schedule).
        if b_g > 0:
            prev = gpu.d2h(req_g, label="od-requests", after=t_map)
            rounds = max(-(-b_g // staging), 1)
            if rounds > ROUND_LOOP_LIMIT:
                with gpu.phase("Tfilling"):
                    t_gather = gpu.cpu_gather(b_g, label="od-gather",
                                              after=prev)
                with gpu.phase("Ttransfer"):
                    t_xfer = gpu.h2d(b_g, label="od-transfer", after=t_gather)
                with gpu.phase("Tondemand"):
                    gpu.edge_kernel(e_g, label="od-compute",
                                    atomics=program.atomics, after=t_xfer)
            else:
                bytes_left, edges_left = b_g, e_g
                for r in range(rounds):
                    r_bytes = -(-bytes_left // (rounds - r))
                    r_edges = -(-edges_left // (rounds - r))
                    bytes_left -= r_bytes
                    edges_left -= r_edges
                    with gpu.phase("Tfilling"):
                        t_gather = gpu.cpu_gather(r_bytes, label="od-gather",
                                                  after=prev)
                    with gpu.phase("Ttransfer"):
                        t_xfer = gpu.h2d(r_bytes, label="od-transfer",
                                         after=t_gather)
                    with gpu.phase("Tondemand"):
                        gpu.edge_kernel(r_edges, label="od-compute",
                                        atomics=program.atomics, after=t_xfer)
                    prev = t_gather
        # ➍ Direct chain: zero-copy loads feed the consuming kernel; both
        # start at t_map and overlap (the sync below takes the max).
        if b_d > 0 or e_d > 0:
            with gpu.phase("Tdirect"):
                gpu.direct_access(b_d, label="zero-copy", after=t_map)
            with gpu.phase("Tondemand"):
                gpu.edge_kernel(e_d, label="direct-compute",
                                atomics=program.atomics, after=t_map)
        # ➎ Cache update: migrated chunks become resident; overflowing the
        # free slots evicts the coldest already-consumed residents (free —
        # the cache is read-only).
        if mig_ids.size:
            n_evict = int(mig_ids.size) - region.free_chunks
            if n_evict > 0:
                cand = np.nonzero(evictable)[0]
                order = np.argsort(-self._hotness.cumulative[cand],
                                   kind="stable")
                evict_ids = cand[order][:n_evict]
            else:
                evict_ids = np.empty(0, dtype=np.int64)
            region.swap(evict_ids, mig_ids)
            self._migrated_chunks += int(mig_ids.size)
        self._hotness.update(touch)
        up = gpu.charge_scale
        self._path_bytes[AccessPath.MIGRATE] += int(mig_bytes * up)
        self._path_bytes[AccessPath.GATHER] += int(b_g * up)
        self._path_bytes[AccessPath.DIRECT] += int(b_d * up)
        gpu.sync()

    # ------------------------------------------------------------- reporting
    def _report_extra(self, result: RunResult, gpu: SimulatedGPU,
                      graph: CSRGraph) -> None:
        up = 1.0 / self.data_scale
        result.extra["cache_chunks"] = float(self._region.capacity_chunks)
        result.extra["resident_chunks"] = float(self._region.resident_chunks)
        result.extra["migrated_chunks"] = float(self._migrated_chunks)
        result.extra["migrate_bytes"] = float(self._path_bytes[AccessPath.MIGRATE])
        result.extra["gather_bytes"] = float(self._path_bytes[AccessPath.GATHER])
        result.extra["direct_bytes"] = float(self._path_bytes[AccessPath.DIRECT])
        # Warm-start ledger, named like Ascetic's so the serve pool's
        # fold_result picks it up unchanged.
        result.extra["warm_start"] = 1.0 if self._warm_hit else 0.0
        result.extra["static_warm_bytes"] = self._warm_bytes * up
        result.extra["static_refill_bytes"] = 0.0
        result.extra["warm_invalidated_chunks"] = float(self._warm_invalidated)
