"""Run counters.

Everything the paper's evaluation reports is derived from these counters:
bytes over PCIe (Tables 2 and 5, Figs. 7 and 9), component times
(Fig. 10's Tsr / Tfilling / Ttransfer / Tondemand), GPU idle share
(§2.2's "68 % of GPU time is idle"), and UVM fault counts (§4.4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Mutable counter bundle owned by a :class:`~repro.gpusim.device.SimulatedGPU`."""

    bytes_h2d: int = 0
    bytes_d2h: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    #: Bytes moved by zero-copy direct access over the link (EMOGI path).
    bytes_direct: int = 0
    #: Individual zero-copy load accesses issued over the link.
    direct_accesses: int = 0
    page_faults: int = 0
    fault_batches: int = 0
    pages_migrated: int = 0
    pages_evicted: int = 0
    kernel_launches: int = 0
    edges_processed: int = 0
    #: Failed transfer attempts injected by a fault plan (chaos mode).
    transfer_faults: int = 0
    #: Transfer attempts that had to be repeated before succeeding.
    transfer_retries: int = 0
    #: Kernel launches aborted and re-issued (chaos mode).
    kernel_aborts: int = 0
    #: Virtual seconds burned on failed attempts and backoff delays —
    #: the chaos-mode ``retry`` bucket.
    retry_seconds: float = 0.0
    #: Per-phase accumulated virtual seconds, e.g. ``Tsr``, ``Tfilling``,
    #: ``Ttransfer``, ``Tondemand`` for Fig. 10.
    phase_seconds: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def add_phase(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative phase time {seconds} for {phase!r}")
        self.phase_seconds[phase] += seconds

    def merge(self, other: "Metrics") -> "Metrics":
        """Accumulate another metrics bundle into this one (multi-run sweeps)."""
        self.bytes_h2d += other.bytes_h2d
        self.bytes_d2h += other.bytes_d2h
        self.h2d_transfers += other.h2d_transfers
        self.d2h_transfers += other.d2h_transfers
        self.bytes_direct += other.bytes_direct
        self.direct_accesses += other.direct_accesses
        self.page_faults += other.page_faults
        self.fault_batches += other.fault_batches
        self.pages_migrated += other.pages_migrated
        self.pages_evicted += other.pages_evicted
        self.kernel_launches += other.kernel_launches
        self.edges_processed += other.edges_processed
        self.transfer_faults += other.transfer_faults
        self.transfer_retries += other.transfer_retries
        self.kernel_aborts += other.kernel_aborts
        self.retry_seconds += other.retry_seconds
        for phase, sec in other.phase_seconds.items():
            self.phase_seconds[phase] += sec
        return self

    def as_dict(self) -> Dict[str, float]:
        d: Dict[str, float] = {
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "h2d_transfers": self.h2d_transfers,
            "d2h_transfers": self.d2h_transfers,
            "bytes_direct": self.bytes_direct,
            "direct_accesses": self.direct_accesses,
            "page_faults": self.page_faults,
            "fault_batches": self.fault_batches,
            "pages_migrated": self.pages_migrated,
            "pages_evicted": self.pages_evicted,
            "kernel_launches": self.kernel_launches,
            "edges_processed": self.edges_processed,
            "transfer_faults": self.transfer_faults,
            "transfer_retries": self.transfer_retries,
            "kernel_aborts": self.kernel_aborts,
            "retry_seconds": self.retry_seconds,
        }
        for phase, sec in sorted(self.phase_seconds.items()):
            d[f"phase:{phase}"] = sec
        return d
