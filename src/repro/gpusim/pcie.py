"""PCIe link model.

Transfers cost a fixed per-transfer latency (driver + DMA setup) plus bytes
over an effective bandwidth, with payloads rounded up to the burst
granularity.  §3.4 picks 16 KB chunks explicitly because they are "amenable
to the PCI-e burst transfer mechanism" — the burst rounding here is what
makes that choice matter in the model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeLink"]


@dataclass(frozen=True)
class PCIeLink:
    """Cost model of the host↔device interconnect.

    Parameters
    ----------
    bandwidth:
        Effective bytes/second of a large streaming copy (PCIe 3.0 x16
        sustains ~12 GB/s of its 15.75 GB/s peak).
    latency:
        Seconds of fixed overhead per explicit transfer.
    burst:
        Bytes of DMA burst granularity; payloads round up to it.
    """

    bandwidth: float = 12.0e9
    latency: float = 10.0e-6
    burst: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0 or self.burst <= 0:
            raise ValueError("invalid PCIe parameters")

    def payload_bytes(self, nbytes: int) -> int:
        """Bytes actually moved after burst rounding."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0
        bursts = -(-nbytes // self.burst)  # ceil division
        return bursts * self.burst

    def transfer_seconds(self, nbytes: int) -> float:
        """Virtual seconds one explicit transfer of ``nbytes`` takes."""
        if nbytes == 0:
            return 0.0
        return self.latency + self.payload_bytes(nbytes) / self.bandwidth

    def streaming_seconds(self, nbytes: int, n_requests: int = 1) -> float:
        """Seconds for ``nbytes`` split over ``n_requests`` queued transfers.

        Queued async copies pay the latency once per request but pipeline,
        so latencies beyond the first hide under the data movement; we charge
        the dominant term plus one latency, matching measured cudaMemcpyAsync
        batching behaviour closely enough for ratio work.
        """
        if nbytes == 0:
            return 0.0
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        return self.latency + self.payload_bytes(nbytes) / self.bandwidth
