"""PCIe link model.

Transfers cost a fixed per-transfer latency (driver + DMA setup) plus bytes
over an effective bandwidth, with payloads rounded up to the burst
granularity.  §3.4 picks 16 KB chunks explicitly because they are "amenable
to the PCI-e burst transfer mechanism" — the burst rounding here is what
makes that choice matter in the model.

The link also models *zero-copy direct access* (EMOGI / HyTGraph): the GPU
reads pinned host memory through individual load instructions instead of
staging a DMA copy.  Each access pays a tiny per-access latency and moves a
128-byte sector — no 10 µs driver setup, no 16 KB burst amplification — but
the sustained rate is roughly half of a bulk copy.  That asymmetry is the
whole point: direct access wins for small, sparse, one-touch footprints;
explicit migration wins once a chunk's bytes are reused.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeLink"]


@dataclass(frozen=True)
class PCIeLink:
    """Cost model of the host↔device interconnect.

    Parameters
    ----------
    bandwidth:
        Effective bytes/second of a large streaming copy (PCIe 3.0 x16
        sustains ~12 GB/s of its 15.75 GB/s peak).
    latency:
        Seconds of fixed overhead per explicit transfer.
    burst:
        Bytes of DMA burst granularity; payloads round up to it.
    direct_bandwidth:
        Effective bytes/second of zero-copy loads over the link.  Scattered
        sector-sized reads sustain roughly half of bulk-copy bandwidth.
    direct_latency:
        Seconds of per-access overhead for one zero-copy load (issue +
        link round-trip amortized over the warp's coalesced accesses).
    sector:
        Bytes one zero-copy access moves (the PCIe read-completion /
        cache-line sector); direct payloads round up to it.
    """

    bandwidth: float = 12.0e9
    latency: float = 10.0e-6
    burst: int = 16 * 1024
    direct_bandwidth: float = 6.0e9
    direct_latency: float = 15.0e-9
    sector: int = 128

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0 or self.burst <= 0:
            raise ValueError("invalid PCIe parameters")
        if (self.direct_bandwidth <= 0 or self.direct_latency < 0
                or self.sector <= 0):
            raise ValueError("invalid PCIe direct-access parameters")

    def payload_bytes(self, nbytes: int) -> int:
        """Bytes actually moved after burst rounding."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0
        bursts = -(-nbytes // self.burst)  # ceil division
        return bursts * self.burst

    def transfer_seconds(self, nbytes: int) -> float:
        """Virtual seconds one explicit transfer of ``nbytes`` takes."""
        if nbytes == 0:
            return 0.0
        return self.latency + self.payload_bytes(nbytes) / self.bandwidth

    def streaming_seconds(self, nbytes: int, n_requests: int = 1) -> float:
        """Seconds for ``nbytes`` split over ``n_requests`` queued transfers.

        Queued async copies pay the latency once per request but pipeline,
        so latencies beyond the first hide under the data movement; we charge
        the dominant term plus one latency, matching measured cudaMemcpyAsync
        batching behaviour closely enough for ratio work.
        """
        if nbytes == 0:
            return 0.0
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        return self.latency + self.payload_bytes(nbytes) / self.bandwidth

    # ------------------------------------------------------ zero-copy path
    def direct_payload_bytes(self, nbytes: int) -> int:
        """Bytes actually moved by zero-copy loads after sector rounding.

        Deliberately *not* burst-rounded: sector granularity is what lets
        direct access beat migration on sparse footprints.
        """
        if nbytes < 0:
            raise ValueError("negative direct-access size")
        if nbytes == 0:
            return 0
        sectors = -(-nbytes // self.sector)  # ceil division
        return sectors * self.sector

    def direct_access_seconds(self, nbytes: int, n_accesses: int = 1) -> float:
        """Virtual seconds ``n_accesses`` zero-copy loads of ``nbytes`` take.

        ``n_accesses`` per-access latencies plus the sector-rounded payload
        over the (halved) direct bandwidth.  With one access per sector this
        is cheaper than :meth:`transfer_seconds` below a crossover footprint
        of roughly ``latency / (1/direct_bandwidth + direct_latency/sector
        - 1/bandwidth)`` bytes (~50 KB at the defaults) — the EMOGI regime —
        and dearer above it, which is what a hybrid policy exploits.
        """
        if nbytes == 0:
            return 0.0
        if n_accesses < 1:
            raise ValueError("n_accesses must be >= 1")
        payload = self.direct_payload_bytes(nbytes)
        return n_accesses * self.direct_latency + payload / self.direct_bandwidth
