"""Virtual time.

All engine timing in this repo is *virtual*: the simulator adds up analytic
costs (bytes / bandwidth, edges / throughput, per-fault latencies) on a
monotonic clock.  Determinism matters more than resolution — two runs of the
same engine on the same graph produce bit-identical timelines, which is what
lets the benchmarks reproduce the paper's *ratios* without real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["VirtualClock", "Span"]


@dataclass(frozen=True)
class Span:
    """One recorded activity on one lane of the timeline."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class VirtualClock:
    """A monotonic virtual clock with an optional span log.

    ``record=True`` keeps every span (used by trace analysis, Fig. 2 and the
    timeline tests); benchmarks leave it off to stay lean.
    """

    now: float = 0.0
    record: bool = False
    spans: List[Span] = field(default_factory=list)

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` if ``t`` is in the future (else no-op)."""
        if t > self.now:
            self.now = t
        return self.now

    def log(self, lane: str, label: str, start: float, end: float) -> Optional[Span]:
        """Record a span if recording is enabled."""
        if not self.record:
            return None
        span = Span(lane=lane, label=label, start=start, end=end)
        self.spans.append(span)
        return span

    def reset(self) -> None:
        self.now = 0.0
        self.spans.clear()
