"""Simulated GPU platform.

The paper's artifact is CUDA on a Tesla P100; Python offers no fine-grained
GPU memory control, so this package models the platform deterministically:

* :mod:`repro.gpusim.clock` — virtual time and span recording;
* :mod:`repro.gpusim.device` — the :class:`~repro.gpusim.device.SimulatedGPU`
  facade and its :class:`~repro.gpusim.device.GPUSpec` cost model;
* :mod:`repro.gpusim.memory` — device-memory allocator;
* :mod:`repro.gpusim.pcie` — PCIe link (bandwidth + latency + burst);
* :mod:`repro.gpusim.stream` — lanes (GPU compute / copy engine / CPU) with
  overlap and idle-time accounting;
* :mod:`repro.gpusim.kernel` — kernel cost model (edges/s, scans, launches);
* :mod:`repro.gpusim.uvm` — Unified Virtual Memory: pages, faults, LRU;
* :mod:`repro.gpusim.host` — host-side gather cost model;
* :mod:`repro.gpusim.metrics` — counters every engine reports from;
* :mod:`repro.gpusim.events` — the event-sourced accounting core: every
  submit emits one :class:`~repro.gpusim.events.SimEvent`, and metrics,
  phases, spans, and idle accounting are folds over the per-run
  :class:`~repro.gpusim.events.EventLog`;
* :mod:`repro.gpusim.fabric` — multi-device fabric: N
  :class:`~repro.gpusim.device.SimulatedGPU` instances sharing one clock
  and one event log, with typed host↔device / device↔device links built
  from a :class:`~repro.gpusim.fabric.FabricSpec` (see ``docs/fleet.md``);
* :mod:`repro.gpusim.faults` — deterministic chaos mode: a seeded
  :class:`~repro.gpusim.faults.FaultPlan` /
  :class:`~repro.gpusim.faults.FaultInjector` pair injecting transfer
  faults, link degradation, allocation failures, capacity squeezes, and
  kernel faults into the simulation (see ``docs/robustness.md``).

Every engine decision (what to move, when, overlapped with what) lives in the
engines; this package only turns (bytes, edges) into virtual seconds and
enforces capacity.
"""

from repro.gpusim.clock import VirtualClock, Span
from repro.gpusim.events import (
    EventLog,
    EventLogError,
    IdleBreakdown,
    LaneStats,
    SimEvent,
    fold_device_faults,
    fold_device_metrics,
    fold_lane_stats,
    fold_metrics,
    fold_phase_seconds,
    fold_spans,
    idle_breakdown,
    lane_key,
    qualified_lane,
    validate_log,
)
from repro.gpusim.fabric import (
    DeviceSpec,
    Fabric,
    FabricSpec,
    FabricTopology,
    LinkSpec,
    fold_exchange_bytes,
)
from repro.gpusim.events import DEVICE_FAULT_KINDS, FAULT_KINDS
from repro.gpusim.faults import (
    CapacitySqueeze,
    DeviceFault,
    FaultInjector,
    FaultPlan,
    KernelFaultError,
    LinkDegradation,
    TransferFaultError,
    standard_fleet_plan,
    standard_plan,
)
from repro.gpusim.metrics import Metrics
from repro.gpusim.memory import DeviceMemory, Allocation, GPUOutOfMemory
from repro.gpusim.pcie import PCIeLink
from repro.gpusim.kernel import KernelModel
from repro.gpusim.stream import Lane
from repro.gpusim.uvm import UVMMemory
from repro.gpusim.host import HostGather
from repro.gpusim.device import GPUSpec, SimulatedGPU

__all__ = [
    "VirtualClock",
    "Span",
    "SimEvent",
    "EventLog",
    "EventLogError",
    "LaneStats",
    "IdleBreakdown",
    "fold_metrics",
    "fold_spans",
    "fold_phase_seconds",
    "fold_lane_stats",
    "fold_device_metrics",
    "fold_device_faults",
    "idle_breakdown",
    "lane_key",
    "qualified_lane",
    "validate_log",
    "DeviceSpec",
    "LinkSpec",
    "FabricSpec",
    "FabricTopology",
    "Fabric",
    "fold_exchange_bytes",
    "FAULT_KINDS",
    "DEVICE_FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "DeviceFault",
    "LinkDegradation",
    "CapacitySqueeze",
    "TransferFaultError",
    "KernelFaultError",
    "standard_plan",
    "standard_fleet_plan",
    "Metrics",
    "DeviceMemory",
    "Allocation",
    "GPUOutOfMemory",
    "PCIeLink",
    "KernelModel",
    "Lane",
    "UVMMemory",
    "HostGather",
    "GPUSpec",
    "SimulatedGPU",
]
