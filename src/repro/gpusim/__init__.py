"""Simulated GPU platform.

The paper's artifact is CUDA on a Tesla P100; Python offers no fine-grained
GPU memory control, so this package models the platform deterministically:

* :mod:`repro.gpusim.clock` — virtual time and span recording;
* :mod:`repro.gpusim.device` — the :class:`~repro.gpusim.device.SimulatedGPU`
  facade and its :class:`~repro.gpusim.device.GPUSpec` cost model;
* :mod:`repro.gpusim.memory` — device-memory allocator;
* :mod:`repro.gpusim.pcie` — PCIe link (bandwidth + latency + burst);
* :mod:`repro.gpusim.stream` — lanes (GPU compute / copy engine / CPU) with
  overlap and idle-time accounting;
* :mod:`repro.gpusim.kernel` — kernel cost model (edges/s, scans, launches);
* :mod:`repro.gpusim.uvm` — Unified Virtual Memory: pages, faults, LRU;
* :mod:`repro.gpusim.host` — host-side gather cost model;
* :mod:`repro.gpusim.metrics` — counters every engine reports from.

Every engine decision (what to move, when, overlapped with what) lives in the
engines; this package only turns (bytes, edges) into virtual seconds and
enforces capacity.
"""

from repro.gpusim.clock import VirtualClock, Span
from repro.gpusim.metrics import Metrics
from repro.gpusim.memory import DeviceMemory, Allocation, GPUOutOfMemory
from repro.gpusim.pcie import PCIeLink
from repro.gpusim.kernel import KernelModel
from repro.gpusim.stream import Lane
from repro.gpusim.uvm import UVMMemory
from repro.gpusim.host import HostGather
from repro.gpusim.device import GPUSpec, SimulatedGPU

__all__ = [
    "VirtualClock",
    "Span",
    "Metrics",
    "DeviceMemory",
    "Allocation",
    "GPUOutOfMemory",
    "PCIeLink",
    "KernelModel",
    "Lane",
    "UVMMemory",
    "HostGather",
    "GPUSpec",
    "SimulatedGPU",
]
