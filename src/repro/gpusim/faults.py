"""Deterministic fault injection (chaos mode) for the simulated platform.

The paper's whole design is about surviving a hostile memory hierarchy —
Ascetic's Eq. 3 repartition exists because the on-demand region can
overflow mid-iteration — yet a simulator left to itself only exercises the
happy path.  This module supplies the hostile part on purpose:

* :class:`FaultPlan` — a frozen, serializable description of *what* can go
  wrong: transient PCIe transfer failures, corrupted (CRC-mismatch)
  payloads, link-degradation windows, named allocation failures, capacity
  squeezes, and kernel slowdown/abort events;
* :class:`FaultInjector` — the per-run oracle that answers "does this
  attempt fail?".  It is **fully deterministic**: no wall clock, no global
  RNG — all draws come from a generator seeded from ``(seed, plan)``, so
  the same :class:`~repro.runner.spec.RunSpec` seed and plan reproduce a
  bit-identical :class:`~repro.engines.base.RunResult`, event log
  included, across serial / parallel / checkpoint-resumed execution.

Faults *cost virtual time, never correctness*: a failed transfer is
retried with deterministic exponential backoff
(:meth:`~repro.gpusim.stream.Lane.submit_transfer`), a failed allocation
is retried or absorbed by shrinking (see the engines' ``_release_memory``
hooks), and every injected event leaves a typed marker in the
:class:`~repro.gpusim.events.EventLog` so chaos shows up in Chrome traces
and the ``retry`` idle bucket.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "LinkDegradation",
    "CapacitySqueeze",
    "DeviceFault",
    "FaultPlan",
    "FaultInjector",
    "TransferFaultError",
    "KernelFaultError",
    "standard_plan",
    "standard_fleet_plan",
]


class TransferFaultError(RuntimeError):
    """A transfer kept failing after the plan's retry budget was spent."""


class KernelFaultError(RuntimeError):
    """A kernel kept aborting after the plan's retry budget was spent."""


@dataclass(frozen=True)
class LinkDegradation:
    """A window of virtual time during which PCIe bandwidth is cut.

    While ``start <= t < end`` the *variable* (bytes-over-bandwidth) part
    of a transfer is divided by ``factor`` — latency is unaffected, like a
    real link renegotiating its width.
    """

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad degradation window [{self.start}, {self.end})")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")

    def contains(self, t: float) -> bool:
        """Whether virtual time ``t`` falls inside the window."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class DeviceFault:
    """A whole-device fault: permanent loss or a transient stall window.

    ``end is None`` means the device fails *permanently* at virtual time
    ``start`` (it never comes back — the fleet layers must recover around
    it).  A finite ``end`` is a transient stall: the device is unavailable
    while ``start <= t < end`` and healthy again afterwards (clock
    throttling, a driver hiccup, an ECC scrub pause).
    """

    device: int
    start: float
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError("device must be non-negative")
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"bad stall window [{self.start}, {self.end})")

    @property
    def permanent(self) -> bool:
        """Whether this is a device loss (no recovery) rather than a stall."""
        return self.end is None

    def state_at(self, t: float) -> str:
        """This fault's contribution to the device state at time ``t``."""
        if t < self.start:
            return "up"
        if self.end is None:
            return "down"
        return "stalled" if t < self.end else "up"


@dataclass(frozen=True)
class CapacitySqueeze:
    """External memory pressure: bytes taken away for a span of iterations.

    At ``start_iteration`` the engine must give up ``resolve(capacity)``
    bytes (another tenant's allocation, a driver reservation); at
    ``end_iteration`` (exclusive; ``None`` = never) the bytes come back.
    Size is ``nbytes`` absolute or ``fraction`` of device capacity,
    whichever is larger — fractions make one plan meaningful across
    dataset scales.
    """

    start_iteration: int
    end_iteration: Optional[int] = None
    nbytes: int = 0
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.start_iteration < 0:
            raise ValueError("start_iteration must be non-negative")
        if self.end_iteration is not None and self.end_iteration <= self.start_iteration:
            raise ValueError("end_iteration must exceed start_iteration")
        if self.nbytes < 0 or not 0.0 <= self.fraction < 1.0:
            raise ValueError("squeeze size must be non-negative (fraction < 1)")

    def resolve(self, capacity_bytes: int) -> int:
        """The squeeze size in bytes against a concrete device capacity."""
        return max(int(self.nbytes), int(self.fraction * capacity_bytes))


@dataclass(frozen=True)
class FaultPlan:
    """Everything that is allowed to go wrong in one run (frozen, hashable).

    Rates are per *attempt*; retried attempts re-roll.  ``alloc_failures``
    names :class:`~repro.gpusim.memory.DeviceMemory` allocations whose
    attempts fail transiently — a name listed *k* times fails its first
    *k* attempts (repeats are how tests drive the shrink ladder all the
    way to Ascetic's pure-on-demand floor).  Serialization
    (:meth:`to_dict` / :meth:`from_dict`) is canonical: the injector's RNG
    stream is seeded from it, and a :class:`~repro.runner.spec.RunSpec`
    embeds it in the cache key.
    """

    #: Probability an individual transfer attempt fails outright.
    transfer_fail_rate: float = 0.0
    #: Probability an attempt completes but fails its CRC (payload moved,
    #: time spent, data unusable — retried like a failure).
    transfer_corrupt_rate: float = 0.0
    #: Bandwidth-cut windows over virtual time.
    degradations: Tuple[LinkDegradation, ...] = ()
    #: Allocation names that fail transiently (repeats = repeat failures).
    alloc_failures: Tuple[str, ...] = ()
    #: Iteration-scoped capacity squeezes.
    squeezes: Tuple[CapacitySqueeze, ...] = ()
    #: Probability a kernel launch aborts partway (re-launched).
    kernel_abort_rate: float = 0.0
    #: Fraction of the kernel's duration burned before an abort is noticed.
    kernel_abort_fraction: float = 0.5
    #: Probability a kernel runs but slower (clock throttling).
    kernel_slowdown_rate: float = 0.0
    #: Duration multiplier for a slowed kernel.
    kernel_slowdown_factor: float = 1.5
    #: Extra attempts after a failed transfer/kernel before giving up.
    max_retries: int = 4
    #: First backoff delay in virtual seconds; doubles per extra attempt.
    backoff_base: float = 50.0e-6
    #: Multiplier between consecutive backoff delays.
    backoff_factor: float = 2.0
    #: Whole-device faults: permanent losses and transient stall windows.
    device_faults: Tuple[DeviceFault, ...] = ()
    #: Bandwidth-cut windows on the *peer* (device↔device) links — the
    #: NVLink/PCIe-bounce analogue of ``degradations`` (which cover the
    #: host link).
    peer_degradations: Tuple[LinkDegradation, ...] = ()

    def __post_init__(self) -> None:
        for name in ("transfer_fail_rate", "transfer_corrupt_rate",
                     "kernel_abort_rate", "kernel_slowdown_rate"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.transfer_fail_rate + self.transfer_corrupt_rate >= 1.0:
            raise ValueError("combined transfer fault rates must stay below 1")
        if not 0.0 < self.kernel_abort_fraction <= 1.0:
            raise ValueError("kernel_abort_fraction must be in (0, 1]")
        if self.kernel_slowdown_factor < 1.0:
            raise ValueError("kernel_slowdown_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("invalid backoff parameters")
        object.__setattr__(self, "degradations", tuple(
            d if isinstance(d, LinkDegradation) else LinkDegradation(**d)
            for d in self.degradations))
        object.__setattr__(self, "squeezes", tuple(
            s if isinstance(s, CapacitySqueeze) else CapacitySqueeze(**s)
            for s in self.squeezes))
        object.__setattr__(self, "alloc_failures",
                           tuple(str(n) for n in self.alloc_failures))
        object.__setattr__(self, "device_faults", tuple(
            f if isinstance(f, DeviceFault) else DeviceFault(**f)
            for f in self.device_faults))
        object.__setattr__(self, "peer_degradations", tuple(
            d if isinstance(d, LinkDegradation) else LinkDegradation(**d)
            for d in self.peer_degradations))

    # --------------------------------------------------------------- views
    @property
    def is_null(self) -> bool:
        """Whether this plan can never inject anything."""
        return (self.transfer_fail_rate == 0.0
                and self.transfer_corrupt_rate == 0.0
                and not self.degradations
                and not self.alloc_failures
                and not self.squeezes
                and self.kernel_abort_rate == 0.0
                and self.kernel_slowdown_rate == 0.0
                and not self.device_faults
                and not self.peer_degradations)

    @property
    def affects_transfers(self) -> bool:
        """Whether transfer attempts need a random draw."""
        return self.transfer_fail_rate > 0.0 or self.transfer_corrupt_rate > 0.0

    @property
    def affects_kernels(self) -> bool:
        """Whether kernel launches need a random draw."""
        return self.kernel_abort_rate > 0.0 or self.kernel_slowdown_rate > 0.0

    @property
    def affects_devices(self) -> bool:
        """Whether whole devices can fail or stall (pure plan lookups —
        device faults draw no randomness, so plans without them behave
        bit-identically to the pre-device-fault schema)."""
        return bool(self.device_faults)

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return self.backoff_base * self.backoff_factor ** attempt

    def with_(self, **kwargs) -> "FaultPlan":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form (cache keys, RunSpec embedding)."""
        out = asdict(self)
        out["degradations"] = [asdict(d) for d in self.degradations]
        out["squeezes"] = [asdict(s) for s in self.squeezes]
        out["alloc_failures"] = list(self.alloc_failures)
        # The device-scoped fields postdate the original plan schema: omit
        # them when empty so every pre-existing plan keeps its fingerprint —
        # and with it the injector's RNG stream and the chaos digests.
        if self.device_faults:
            out["device_faults"] = [asdict(f) for f in self.device_faults]
        else:
            del out["device_faults"]
        if self.peer_degradations:
            out["peer_degradations"] = [
                asdict(d) for d in self.peer_degradations
            ]
        else:
            del out["peer_degradations"]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan written by :meth:`to_dict` (unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultPlan fields: {sorted(extra)}")
        return cls(**dict(data))

    def fingerprint(self) -> int:
        """A 32-bit content hash of the plan (part of the RNG seed)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return zlib.crc32(blob.encode("utf-8"))


def standard_plan() -> FaultPlan:
    """The standard chaos plan (``repro chaos``, the chaos-grid tests).

    Moderate everything: rare transfer failures/corruptions, two
    bandwidth-cut windows (one covering startup so every engine hits it),
    one transient allocation failure per engine's main buffer, a 20 %
    capacity squeeze over iterations 1–3, and rare kernel aborts.  Rates
    are far below the point where ``max_retries`` could be exhausted.
    """
    return FaultPlan(
        transfer_fail_rate=0.02,
        transfer_corrupt_rate=0.01,
        degradations=(
            LinkDegradation(start=0.0, end=0.02, factor=0.5),
            LinkDegradation(start=0.1, end=0.25, factor=0.25),
        ),
        alloc_failures=("static_region", "subgraph_buffer",
                        "subgraph_buffer_a", "partition_buffer",
                        "uvm_resident_pool"),
        squeezes=(CapacitySqueeze(start_iteration=1, end_iteration=4,
                                  fraction=0.2),),
        kernel_abort_rate=0.01,
        kernel_slowdown_rate=0.02,
        kernel_slowdown_factor=1.5,
    )


def standard_fleet_plan(seed: int = 0, n_devices: int = 4, *,
                        down_at: float = 2.0,
                        degrade_start: float = 4.0,
                        degrade_end: float = 8.0,
                        degrade_factor: float = 0.25) -> FaultPlan:
    """The standard fleet chaos plan: one device loss + one peer-link window.

    One device — picked deterministically from the seed — fails permanently
    at ``down_at``, and one peer-link degradation window cuts
    device↔device bandwidth to ``degrade_factor`` over
    ``[degrade_start, degrade_end)``.  The default times sit on the serve
    clock (seconds-scale load tests); engine-level tests pass an explicit
    ``down_at`` inside their own (much shorter) sim horizon.

    Device faults draw no randomness, so runs that never consult the
    device state (single-device engines) are bit-identical under this plan
    to a fault-free run.
    """
    if n_devices < 2:
        raise ValueError(
            "standard_fleet_plan needs n_devices >= 2 (a 1-device fleet "
            "cannot survive losing its only device)"
        )
    victim = int(seed) % n_devices
    return FaultPlan(
        device_faults=(DeviceFault(device=victim, start=down_at),),
        peer_degradations=(
            LinkDegradation(start=degrade_start, end=degrade_end,
                            factor=degrade_factor),
        ),
    )


class FaultInjector:
    """The per-run fault oracle: seeded, stateful, picklable.

    One injector is built per engine run from ``(plan, seed)``; the
    simulation is single-threaded, so the draw order — and with it every
    injected fault — is a pure function of those two inputs.  The whole
    object pickles inside iteration checkpoints, so a resumed run
    continues the RNG stream bit-exactly.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        # Seeding from (seed, plan-fingerprint) decorrelates plans that
        # share a seed without consulting anything non-deterministic.
        self._rng = np.random.default_rng(
            [self.seed & 0xFFFFFFFF, plan.fingerprint()]
        )
        #: How often each fault type actually fired (reported via
        #: ``RunResult.extra`` as ``fault_*``).
        self.counts: Dict[str, int] = {
            "transfer_fail": 0, "transfer_corrupt": 0,
            "kernel_abort": 0, "kernel_slow": 0,
            "alloc_fail": 0, "degradation_windows": 0,
            "device_down": 0, "device_stall": 0,
            "peer_degradation_windows": 0,
        }
        self._alloc_failed: Dict[str, int] = {}
        self._noted_windows: set = set()
        self._noted_peer_windows: set = set()

    # ----------------------------------------------------------- transfers
    def transfer_outcome(self) -> str:
        """One attempt's fate: ``"ok"`` / ``"fail"`` / ``"corrupt"``.

        Draws exactly one uniform when the plan has transfer rates and
        none otherwise, keeping the stream identical for plans that differ
        only in unrelated fault types.
        """
        plan = self.plan
        if not plan.affects_transfers:
            return "ok"
        u = float(self._rng.random())
        if u < plan.transfer_fail_rate:
            self.counts["transfer_fail"] += 1
            return "fail"
        if u < plan.transfer_fail_rate + plan.transfer_corrupt_rate:
            self.counts["transfer_corrupt"] += 1
            return "corrupt"
        return "ok"

    def link_state(self, t: float) -> Tuple[float, List[Tuple[int, LinkDegradation]]]:
        """``(bandwidth factor, windows first seen)`` at virtual time ``t``.

        The factor is the minimum over all windows containing ``t``;
        windows are reported once each so the caller can leave one marker
        per window in the event log.
        """
        factor = 1.0
        fresh: List[Tuple[int, LinkDegradation]] = []
        for i, w in enumerate(self.plan.degradations):
            if w.contains(t):
                factor = min(factor, w.factor)
                if i not in self._noted_windows:
                    self._noted_windows.add(i)
                    self.counts["degradation_windows"] += 1
                    fresh.append((i, w))
        return factor, fresh

    def peer_link_state(
        self, t: float
    ) -> Tuple[float, List[Tuple[int, LinkDegradation]]]:
        """:meth:`link_state` for the peer (device↔device) links.

        Folds over ``plan.peer_degradations`` with its own noted-window
        set, so host-link and peer-link windows are marked and counted
        independently.
        """
        factor = 1.0
        fresh: List[Tuple[int, LinkDegradation]] = []
        for i, w in enumerate(self.plan.peer_degradations):
            if w.contains(t):
                factor = min(factor, w.factor)
                if i not in self._noted_peer_windows:
                    self._noted_peer_windows.add(i)
                    self.counts["peer_degradation_windows"] += 1
                    fresh.append((i, w))
        return factor, fresh

    # ------------------------------------------------------------- devices
    # Device faults are *pure plan lookups* — no RNG draws — so a plan
    # without them leaves every draw-consuming stream untouched and the run
    # bit-identical to the pre-device-fault schema.
    def device_down_at(self, device: int) -> Optional[float]:
        """When ``device`` fails permanently, or ``None`` if it never does."""
        times = [f.start for f in self.plan.device_faults
                 if f.device == device and f.permanent]
        return min(times) if times else None

    def device_state(self, device: int, t: float) -> str:
        """``"up"`` / ``"stalled"`` / ``"down"`` for ``device`` at time ``t``."""
        state = "up"
        for f in self.plan.device_faults:
            if f.device != device:
                continue
            s = f.state_at(t)
            if s == "down":
                return "down"
            if s == "stalled":
                state = "stalled"
        return state

    def stall_end(self, device: int, t: float) -> float:
        """When every stall window covering ``(device, t)`` has ended."""
        return max([f.end for f in self.plan.device_faults
                    if f.device == device and not f.permanent
                    and f.start <= t < f.end], default=t)

    def note_device_down(self) -> None:
        """Count one observed permanent device loss."""
        self.counts["device_down"] += 1

    def note_device_stall(self) -> None:
        """Count one observed transient device stall."""
        self.counts["device_stall"] += 1

    # ------------------------------------------------------------- kernels
    def kernel_outcome(self) -> Tuple[str, float]:
        """One launch's fate: ``("ok"|"abort"|"slow", duration factor)``."""
        plan = self.plan
        if not plan.affects_kernels:
            return "ok", 1.0
        u = float(self._rng.random())
        if u < plan.kernel_abort_rate:
            self.counts["kernel_abort"] += 1
            return "abort", plan.kernel_abort_fraction
        if u < plan.kernel_abort_rate + plan.kernel_slowdown_rate:
            self.counts["kernel_slow"] += 1
            return "slow", plan.kernel_slowdown_factor
        return "ok", 1.0

    # --------------------------------------------------------- allocations
    def alloc_should_fail(self, name: str) -> bool:
        """Whether this attempt at allocation ``name`` fails (transiently).

        A name listed *k* times in ``plan.alloc_failures`` fails its
        first *k* attempts; failures are counted per name, so a retry of
        the same size eventually succeeds.
        """
        budget = self.plan.alloc_failures.count(name)
        if budget == 0:
            return False
        seen = self._alloc_failed.get(name, 0)
        if seen >= budget:
            return False
        self._alloc_failed[name] = seen + 1
        self.counts["alloc_fail"] += 1
        return True

    # ------------------------------------------------------------ squeezes
    def squeeze_starts(self, iteration: int) -> List[Tuple[int, CapacitySqueeze]]:
        """Squeezes that take effect at ``iteration`` (pure function of the plan)."""
        return [(i, s) for i, s in enumerate(self.plan.squeezes)
                if s.start_iteration == iteration]

    def squeeze_releases(self, iteration: int) -> List[Tuple[int, CapacitySqueeze]]:
        """Squeezes whose pressure ends at ``iteration``."""
        return [(i, s) for i, s in enumerate(self.plan.squeezes)
                if s.end_iteration == iteration]
