"""The simulated GPU platform facade.

:class:`GPUSpec` is the single source of truth for the cost model (DESIGN.md
§5); :class:`SimulatedGPU` bundles the virtual clock, the device-memory
allocator, the three lanes (GPU compute, copy engine, host CPU), and the
per-run :class:`~repro.gpusim.events.EventLog`.  Engines talk to this facade
exclusively — it is the "hardware" every policy is charged against,
identically.

Accounting is event-sourced: every operation routes through
:meth:`~repro.gpusim.stream.Lane.submit`, which emits exactly one
:class:`~repro.gpusim.events.SimEvent` carrying the op's counter
contribution and the phase/iteration context installed with
``with gpu.phase("Tsr", iteration=i): ...``.  The legacy ``gpu.metrics``
counters remain available as the log's derived view.  Empty operations
(zero bytes / zero edges) are short-circuited uniformly: no lane time, no
span, no event, no counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.gpusim.clock import VirtualClock
from repro.gpusim.events import EventLog
from repro.gpusim.host import HostGather
from repro.gpusim.kernel import KernelModel
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.metrics import Metrics
from repro.gpusim.pcie import PCIeLink
from repro.gpusim.stream import Lane

__all__ = ["GPUSpec", "SimulatedGPU"]


@dataclass(frozen=True)
class GPUSpec:
    """Cost-model parameters of the simulated platform.

    Defaults approximate the paper's testbed: Tesla P100 (16 GB, capped to
    10 GB), PCIe 3.0 x16, Xeon Silver 4210 host (§4.1).  ``memory_bytes``
    here is the *cap applied to the card*, not the physical 16 GB.
    """

    memory_bytes: int = 10 * 10**9
    pcie: PCIeLink = field(default_factory=PCIeLink)
    kernel: KernelModel = field(default_factory=KernelModel)
    gather: HostGather = field(default_factory=HostGather)
    #: UVM migration granularity (§2: 64 KB–2 MB pages; default 64 KB).
    uvm_page_size: int = 64 * 1024
    #: Seconds the driver spends servicing one batch of page faults.
    uvm_fault_latency: float = 30.0e-6
    #: Faults serviced per driver batch.
    uvm_fault_batch: int = 8
    #: Effective bytes/second of *fault-driven* page migration.  Demand
    #: paging moves data far below bulk-copy bandwidth (small, scattered
    #: DMA plus driver bookkeeping) — the core §4.4 penalty.
    uvm_migration_bandwidth: float = 2.0e9
    #: Kernel slowdown on UVM-managed data even when resident (address
    #: translation, replayable-fault machinery, no read-only caching).
    uvm_kernel_penalty: float = 2.0
    #: Sequential-prefetch depth: pages pulled ahead of each faulting page
    #: (the driver's tree prefetcher groups up to 2 MB).  0 disables.
    uvm_prefetch_pages: int = 0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.uvm_page_size <= 0 or self.uvm_fault_batch <= 0:
            raise ValueError("invalid UVM parameters")
        if self.uvm_fault_latency < 0 or self.uvm_migration_bandwidth <= 0:
            raise ValueError("invalid UVM fault parameters")
        if self.uvm_kernel_penalty < 1.0:
            raise ValueError("uvm_kernel_penalty must be >= 1")
        if self.uvm_prefetch_pages < 0:
            raise ValueError("uvm_prefetch_pages must be non-negative")

    def with_memory(self, memory_bytes: int) -> "GPUSpec":
        """The same platform with a different device-memory cap."""
        return replace(self, memory_bytes=int(memory_bytes))


class SimulatedGPU:
    """One simulated device + host pair for one engine run.

    ``charge_scale`` reconciles scaled datasets with real time constants:
    experiments run on graphs scaled down by ``s`` (1/1000 by default) with
    device memory scaled identically, but latencies and bandwidths are
    physical.  Charging a transfer of ``n`` scaled bytes as ``n / s``
    paper-scale bytes keeps every fixed-cost : streaming-cost ratio — and
    therefore every speedup the paper reports — at paper scale.  Reported
    metrics (bytes, seconds) come out directly comparable to the paper's
    tables.  Capacity accounting (the memory allocator) stays in scaled
    bytes throughout.

    ``record_events`` retains the full :class:`SimEvent` list on
    ``self.events`` for trace export and validation; the default lean mode
    folds each event into the counters on emit and drops it.
    """

    def __init__(self, spec: GPUSpec, record_spans: bool = False,
                 charge_scale: float = 1.0,
                 record_events: bool = False,
                 faults=None,
                 device_id: Optional[int] = None,
                 clock: Optional[VirtualClock] = None,
                 events: Optional[EventLog] = None) -> None:
        if charge_scale <= 0:
            raise ValueError("charge_scale must be positive")
        self.spec = spec
        self.charge_scale = charge_scale
        #: Identity within a multi-device :class:`~repro.gpusim.fabric.Fabric`
        #: (rides on every emitted event); ``None`` for a standalone device.
        self.device_id = device_id
        # A Fabric passes one shared clock + log so all its devices live on
        # one timeline; standalone construction keeps private ones.
        self.clock = clock if clock is not None else VirtualClock(record=record_spans)
        self.events = events if events is not None else EventLog(record=record_events)
        #: Optional chaos-mode :class:`~repro.gpusim.faults.FaultInjector`;
        #: None means the fault-free model, bit for bit.
        self.faults = faults
        self.memory = DeviceMemory(spec.memory_bytes, faults=faults,
                                   events=self.events, clock=self.clock)
        self.gpu = Lane("gpu", self.clock, log=self.events, device=device_id)
        self.copy = Lane("copy", self.clock, log=self.events, device=device_id)
        self.cpu = Lane("cpu", self.clock, log=self.events, device=device_id)
        #: Zero-copy direct-access traffic over the link (EMOGI path).
        #: Separate from the copy engine: direct loads issue from the SMs
        #: and overlap freely with DMA copies in flight.
        self.direct = Lane("direct", self.clock, log=self.events, device=device_id)

    @property
    def metrics(self) -> Metrics:
        """The legacy counter bundle — now the event log's derived view."""
        return self.events.metrics

    def _scale(self, n: float) -> int:
        """Scaled count → paper-scale count for the cost model."""
        return int(round(n * self.charge_scale))

    # ------------------------------------------------------------- context
    @contextmanager
    def phase(self, name: str,
              iteration: Optional[int] = None) -> Iterator["SimulatedGPU"]:
        """Attribute all work submitted inside the block to phase ``name``.

        Replaces the old per-call ``phase=`` string threading: the emitted
        events carry the phase, and ``metrics.phase_seconds`` is folded
        from them.  Optionally also (re)binds the iteration index.
        """
        log = self.events
        prev_phase = log.current_phase
        prev_iter = log.current_iteration
        log.current_phase = name
        if iteration is not None:
            log.current_iteration = iteration
        try:
            yield self
        finally:
            log.current_phase = prev_phase
            log.current_iteration = prev_iter

    @contextmanager
    def iteration(self, index: int) -> Iterator["SimulatedGPU"]:
        """Stamp events emitted inside the block with iteration ``index``."""
        log = self.events
        prev = log.current_iteration
        log.current_iteration = index
        try:
            yield self
        finally:
            log.current_iteration = prev

    # ------------------------------------------------------------ transfers
    def h2d(self, nbytes: int, label: str = "h2d", after: float = 0.0,
            n_requests: int = 1) -> float:
        """Queue a host→device copy on the copy engine; returns finish time."""
        if nbytes <= 0:
            return self.copy.submit(0.0, label, after=after)
        charged = self._scale(nbytes)
        payload = self.spec.pcie.payload_bytes(charged)
        # Split into fixed latency + streamed payload so chaos-mode link
        # degradation can slow only the streamed part; summed unchanged,
        # this reproduces streaming_seconds() bit for bit.
        fixed = self.spec.pcie.latency if payload else 0.0
        return self.copy.submit_transfer(
            fixed, payload / self.spec.pcie.bandwidth, label, after=after,
            kind="h2d",
            counters={"bytes_h2d": payload, "h2d_transfers": 1},
            faults=self.faults,
        )

    def d2h(self, nbytes: int, label: str = "d2h", after: float = 0.0) -> float:
        """Queue a device→host copy on the copy engine; returns finish time."""
        if nbytes <= 0:
            return self.copy.submit(0.0, label, after=after)
        charged = self._scale(nbytes)
        payload = self.spec.pcie.payload_bytes(charged)
        fixed = self.spec.pcie.latency if payload else 0.0
        return self.copy.submit_transfer(
            fixed, payload / self.spec.pcie.bandwidth, label, after=after,
            kind="d2h",
            counters={"bytes_d2h": payload, "d2h_transfers": 1},
            faults=self.faults,
        )

    def direct_access(self, nbytes: int, n_accesses: Optional[int] = None,
                      label: str = "zero-copy", after: float = 0.0) -> float:
        """Queue zero-copy reads of host memory on the direct lane.

        ``nbytes`` is in scaled units like :meth:`h2d`; ``n_accesses``
        (also scaled) defaults to one access per charged 128 B sector.
        Fault-injectable exactly like H2D: the injector degrades only the
        streamed term and failed attempts emit ``direct-fault`` events.
        """
        if nbytes <= 0:
            return self.direct.submit(0.0, label, after=after)
        pcie = self.spec.pcie
        charged = self._scale(nbytes)
        payload = pcie.direct_payload_bytes(charged)
        if n_accesses is None:
            accesses = payload // pcie.sector
        else:
            accesses = max(self._scale(n_accesses), 1)
        # fixed + variable sums to pcie.direct_access_seconds() bit for bit.
        return self.direct.submit_transfer(
            accesses * pcie.direct_latency, payload / pcie.direct_bandwidth,
            label, after=after, kind="direct",
            counters={"bytes_direct": payload, "direct_accesses": accesses},
            faults=self.faults,
        )

    # -------------------------------------------------------------- kernels
    def edge_kernel(self, n_edges: int, label: str = "edges", atomics: bool = False,
                    after: float = 0.0) -> float:
        """Queue an edge-traversal kernel on the GPU lane."""
        if n_edges <= 0:
            return self.gpu.submit(0.0, label, after=after)
        charged = self._scale(n_edges)
        dur = self.spec.kernel.edge_kernel_seconds(charged, atomics=atomics)
        return self.gpu.submit_kernel(
            dur, label, after=after,
            counters={"kernel_launches": 1, "edges_processed": charged},
            faults=self.faults,
        )

    def vertex_scan(self, n_vertices: int, passes: int = 1, label: str = "scan",
                    after: float = 0.0) -> float:
        """Queue a vertex-array scan kernel (map generation etc.)."""
        if n_vertices <= 0 or passes <= 0:
            return self.gpu.submit(0.0, label, after=after)
        dur = self.spec.kernel.vertex_scan_seconds(self._scale(n_vertices), passes)
        return self.gpu.submit_kernel(
            dur, label, after=after,
            counters={"kernel_launches": 1},
            faults=self.faults,
        )

    # ------------------------------------------------------------------ CPU
    def cpu_gather(self, nbytes: int, label: str = "gather",
                   after: float = 0.0) -> float:
        """Queue a host gather of ``nbytes`` into the staging buffer."""
        if nbytes <= 0:
            return self.cpu.submit(0.0, label, after=after)
        dur = self.spec.gather.gather_seconds(self._scale(nbytes))
        return self.cpu.submit(dur, label, after=after, kind="gather")

    def cpu_work(self, seconds: float, label: str = "cpu",
                 after: float = 0.0) -> float:
        """Queue arbitrary host work measured in seconds."""
        return self.cpu.submit(seconds, label, after=after, kind="cpu")

    # ----------------------------------------------------------------- sync
    def sync(self, t: float | None = None) -> float:
        """Wait: for time ``t``, or for all lanes when ``t`` is None."""
        if t is None:
            t = max(self.gpu.busy_until, self.copy.busy_until,
                    self.cpu.busy_until, self.direct.busy_until)
        return self.clock.advance_to(t)

    @property
    def elapsed(self) -> float:
        """Virtual seconds since the run started."""
        return self.clock.now

    def gpu_idle_fraction(self) -> float:
        """Share of elapsed time the GPU compute lane sat idle (§2.2's 68 %)."""
        if self.clock.now <= 0:
            return 0.0
        return self.events.idle_seconds(self.gpu.key, self.clock.now) / self.clock.now
