"""A multi-device fabric: N simulated GPUs on one clock and one event log.

The rest of :mod:`repro.gpusim` models *one* device + host pair.  A
:class:`Fabric` instantiates N :class:`~repro.gpusim.device.SimulatedGPU`
devices that share a single :class:`~repro.gpusim.clock.VirtualClock` and a
single :class:`~repro.gpusim.events.EventLog`, plus typed inter-device
links so a sharded engine (:mod:`repro.engines.sharded`) and the serve-layer
fleet (:mod:`repro.serve.fleet`) can charge cross-device traffic to the same
cost model as everything else.

Topology comes from a :class:`FabricSpec` — a frozen, picklable value object
that rides through :class:`~repro.runner.spec.RunSpec` engine options and
serve configs.  It can be built HeteroG-style from a plain dict::

    FabricSpec.from_dict({
        "device_mems": [13e9, 13e9, 10e9, 10e9],
        "bandwidth": ["10000", "747"],   # [device<->device, host<->device] MB/s
        "topology": "nvlink",
    })

Two link classes are modelled (§"typed links"):

* ``pcie`` — peer transfers are routed through the host/root complex: two
  PCIe hops, so half the bulk bandwidth and twice the latency of the
  host↔device link.
* ``nvlink`` — a direct point-to-point NVLink-class connection with its own
  (much higher) bandwidth and lower latency.

Every device's lanes carry its ``device_id``, so per-device metrics, idle
attribution, and the Chrome-trace export (one "process" per device) are all
folds over the one shared log — and a fabric of one device degenerates to
the classic single-device model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.gpusim.clock import VirtualClock
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.events import EventLog
from repro.gpusim.stream import Lane

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "FabricSpec",
    "FabricTopology",
    "Fabric",
    "fold_exchange_bytes",
    "NVLINK_BANDWIDTH",
    "NVLINK_LATENCY",
    "TOPOLOGIES",
]

#: NVLink-class per-direction link bandwidth (bytes/s).  Approximates one
#: NVLink 2.0 brick pair (~46 GB/s effective) — an order of magnitude above
#: the PCIe 3.0 x16 host link the paper's testbed uses.
NVLINK_BANDWIDTH = 46.0e9
#: NVLink-class per-transfer latency (seconds): no root-complex traversal.
NVLINK_LATENCY = 5.0e-6

#: Recognized fabric topologies.
TOPOLOGIES = ("pcie", "nvlink")


@dataclass(frozen=True)
class LinkSpec:
    """One typed link of the fabric (host↔device or device↔device)."""

    kind: str  # "pcie" | "nvlink"
    bandwidth: float  # bytes / second
    latency: float  # seconds per transfer

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")

    def transfer_seconds(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link (latency + streaming)."""
        if nbytes <= 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class DeviceSpec:
    """One device of the fabric: identity + its (scaled) memory capacity."""

    device_id: int
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")


@dataclass(frozen=True)
class FabricSpec:
    """The serializable fabric description (rides through RunSpec/serve).

    ``device_mems`` optionally gives each device its own memory cap (same
    units as the :class:`~repro.gpusim.device.GPUSpec` it is applied to);
    ``None`` replicates the base spec's capacity to every device.
    ``d2d_bandwidth`` / ``d2d_latency`` / ``h2d_bandwidth`` override the
    topology's defaults (useful for HeteroG-style configs that pin both
    numbers explicitly).
    """

    n_devices: int = 1
    topology: str = "pcie"
    device_mems: Optional[Tuple[int, ...]] = None
    d2d_bandwidth: Optional[float] = None
    d2d_latency: Optional[float] = None
    h2d_bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.device_mems is not None:
            object.__setattr__(
                self, "device_mems",
                tuple(int(m) for m in self.device_mems),
            )
            if len(self.device_mems) != self.n_devices:
                raise ValueError(
                    f"device_mems has {len(self.device_mems)} entries "
                    f"for {self.n_devices} devices"
                )
            if any(m <= 0 for m in self.device_mems):
                raise ValueError("device_mems entries must be positive")
        for name in ("d2d_bandwidth", "h2d_bandwidth"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive")
        if self.d2d_latency is not None and self.d2d_latency < 0:
            raise ValueError("d2d_latency must be non-negative")

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON-able form (default-valued fields omitted)."""
        out: Dict[str, Any] = {"n_devices": self.n_devices,
                               "topology": self.topology}
        if self.device_mems is not None:
            out["device_mems"] = list(self.device_mems)
        for name in ("d2d_bandwidth", "d2d_latency", "h2d_bandwidth"):
            v = getattr(self, name)
            if v is not None:
                out[name] = v
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FabricSpec":
        """Build from a plain dict — native or HeteroG-style keys.

        HeteroG configs spell per-device memory as ``device_mems`` (floats)
        and both link speeds as ``bandwidth: [d2d, h2d]`` in MB/s (often as
        strings); both spellings are accepted and may be mixed with the
        native ``n_devices`` / ``d2d_bandwidth`` keys.
        """
        known = {"n_devices", "topology", "device_mems",
                 "d2d_bandwidth", "d2d_latency", "h2d_bandwidth", "bandwidth"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FabricSpec fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        mems = data.get("device_mems")
        if mems is not None:
            kwargs["device_mems"] = tuple(int(m) for m in mems)
            kwargs["n_devices"] = int(data.get("n_devices", len(mems)))
        elif "n_devices" in data:
            kwargs["n_devices"] = int(data["n_devices"])
        if "topology" in data:
            kwargs["topology"] = str(data["topology"])
        # HeteroG's bandwidth pair, MB/s: [device<->device, host<->device].
        bw = data.get("bandwidth")
        if bw is not None:
            if len(bw) != 2:
                raise ValueError("bandwidth must be [d2d, h2d] in MB/s")
            kwargs["d2d_bandwidth"] = float(bw[0]) * 1e6
            kwargs["h2d_bandwidth"] = float(bw[1]) * 1e6
        for name in ("d2d_bandwidth", "d2d_latency", "h2d_bandwidth"):
            if name in data:
                kwargs[name] = float(data[name])
        return cls(**kwargs)

    # ------------------------------------------------------------- queries
    def memory_of(self, device_id: int, default: int) -> int:
        """Device ``device_id``'s memory cap (``default`` when unspecified)."""
        if self.device_mems is None:
            return default
        return self.device_mems[device_id]

    def scaled(self, factor: float) -> "FabricSpec":
        """The same fabric with ``device_mems`` scaled by ``factor``.

        Matches the dataset-scaling convention: capacities shrink with the
        data, link bandwidths/latencies stay physical (charging happens at
        paper scale).
        """
        if self.device_mems is None:
            return self
        return replace(self, device_mems=tuple(
            max(int(m * factor), 1) for m in self.device_mems
        ))


class FabricTopology:
    """The resolved link graph of a fabric: devices + typed links.

    Built by resolving a :class:`FabricSpec` against the base
    :class:`~repro.gpusim.device.GPUSpec` (whose PCIe link supplies the
    host↔device defaults).  Symmetric and fully connected — every device
    pair gets one :class:`LinkSpec` of the topology's class.
    """

    def __init__(self, spec: FabricSpec, base: GPUSpec) -> None:
        self.spec = spec
        self.base = base
        pcie = base.pcie
        if spec.h2d_bandwidth is not None:
            pcie = replace(pcie, bandwidth=spec.h2d_bandwidth)
        self.host_link = LinkSpec(kind="pcie", bandwidth=pcie.bandwidth,
                                  latency=pcie.latency)
        if spec.topology == "nvlink":
            d2d_bw = spec.d2d_bandwidth or NVLINK_BANDWIDTH
            d2d_lat = spec.d2d_latency if spec.d2d_latency is not None \
                else NVLINK_LATENCY
        else:
            # Peer traffic over PCIe bounces through the root complex: two
            # hops share the host link, so half bandwidth, double latency.
            d2d_bw = spec.d2d_bandwidth or pcie.bandwidth / 2
            d2d_lat = spec.d2d_latency if spec.d2d_latency is not None \
                else pcie.latency * 2
        self.device_link = LinkSpec(kind=spec.topology, bandwidth=d2d_bw,
                                    latency=d2d_lat)
        self.devices: List[DeviceSpec] = [
            DeviceSpec(d, spec.memory_of(d, base.memory_bytes))
            for d in range(spec.n_devices)
        ]

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def link(self, src: int, dst: int) -> LinkSpec:
        """The link used between two endpoints (-1 denotes the host)."""
        if src == dst:
            raise ValueError(f"no link from device {src} to itself")
        if src < 0 or dst < 0:
            return self.host_link
        return self.device_link

    def gpu_spec(self, device_id: int) -> GPUSpec:
        """The per-device :class:`GPUSpec` (base + this device's memory cap)."""
        spec = self.base.with_memory(self.devices[device_id].memory_bytes)
        if self.spec.h2d_bandwidth is not None:
            spec = replace(spec, pcie=replace(
                spec.pcie, bandwidth=self.spec.h2d_bandwidth))
        return spec


class Fabric:
    """N simulated devices sharing one virtual clock and one event log.

    The fabric owns one extra lane per device — its *link port* — on which
    inter-device transfers are serialized (a device has one NVLink/PCIe
    egress engine, just as it has one copy engine).  Exchange traffic is
    charged at paper scale exactly like every other transfer and emitted as
    ``d2d`` events, so it shows up in phase breakdowns (the sharded
    engine's ``Texchange``), traces, and the serve layer's per-device
    accounting.
    """

    def __init__(self, spec: FabricSpec, base: Optional[GPUSpec] = None,
                 record_spans: bool = False, charge_scale: float = 1.0,
                 record_events: bool = False, faults=None) -> None:
        if charge_scale <= 0:
            raise ValueError("charge_scale must be positive")
        self.spec = spec
        self.topology = FabricTopology(spec, base or GPUSpec())
        self.charge_scale = charge_scale
        self.clock = VirtualClock(record=record_spans)
        self.events = EventLog(record=record_events)
        self.faults = faults
        self.devices: List[SimulatedGPU] = [
            SimulatedGPU(
                self.topology.gpu_spec(d.device_id),
                charge_scale=charge_scale,
                faults=faults,
                device_id=d.device_id,
                clock=self.clock,
                events=self.events,
            )
            for d in self.topology.devices
        ]
        #: Per-device link port: the serially-ordered egress engine for
        #: device↔device traffic.
        self.links: List[Lane] = [
            Lane("link", self.clock, log=self.events, device=d.device_id)
            for d in self.topology.devices
        ]
        #: Total paper-scale device↔device bytes moved (incremental; the
        #: recorded-mode equivalent is :func:`fold_exchange_bytes`).
        self.exchange_bytes: int = 0
        self._exchange_by_device: Dict[int, int] = {
            d.device_id: 0 for d in self.topology.devices
        }
        #: Per-device health (``"up"`` / ``"stalled"`` / ``"down"``),
        #: advanced by :meth:`check_health` against the fault plan's
        #: device faults.  Without an injector every device stays up.
        self.health: Dict[int, str] = {
            d.device_id: "up" for d in self.topology.devices
        }

    # -------------------------------------------------------------- queries
    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def device(self, device_id: int) -> SimulatedGPU:
        return self.devices[device_id]

    def exchange_bytes_of(self, device_id: int) -> int:
        """Paper-scale bytes device ``device_id`` has sent over its port."""
        return self._exchange_by_device[device_id]

    @property
    def elapsed(self) -> float:
        return self.clock.now

    def alive(self) -> List[int]:
        """Device ids not permanently down, in id order."""
        return [d for d in sorted(self.health) if self.health[d] != "down"]

    # --------------------------------------------------------------- health
    def check_health(self, t: Optional[float] = None) -> List[Tuple[int, str]]:
        """Advance per-device health to time ``t``; return the transitions.

        A pure plan lookup through the injector (device faults draw no
        randomness).  Each transition emits a typed marker carrying the
        device id — ``device-down`` on entering ``stalled`` or ``down``,
        ``device-up`` on recovering from a stall — so failures render in
        each device's Chrome-trace process.  Health is sampled where the
        controlling engine calls this (the sharded engine's superstep
        barrier), so fault times resolve at barrier granularity.
        """
        if self.faults is None or not self.faults.plan.device_faults:
            return []
        now = self.clock.now if t is None else t
        transitions: List[Tuple[int, str]] = []
        for d in sorted(self.health):
            old = self.health[d]
            if old == "down":
                continue  # permanent: no way back up
            new = self.faults.device_state(d, now)
            if new == old:
                continue
            self.health[d] = new
            if new == "down":
                self.faults.note_device_down()
                self.events.marker("device-down", f"dev{d}", now, device=d,
                                   extra=(("device", float(d)),))
            elif new == "stalled":
                self.faults.note_device_stall()
                self.events.marker("device-down", f"dev{d}:stall", now,
                                   device=d,
                                   extra=(("device", float(d)),
                                          ("stall", 1.0)))
            else:
                self.events.marker("device-up", f"dev{d}", now, device=d,
                                   extra=(("device", float(d)),))
            transitions.append((d, new))
        return transitions

    # -------------------------------------------------------------- context
    @contextmanager
    def phase(self, name: str,
              iteration: Optional[int] = None) -> Iterator["Fabric"]:
        """Attribute all fabric-wide work inside the block to phase ``name``."""
        log = self.events
        prev_phase = log.current_phase
        prev_iter = log.current_iteration
        log.current_phase = name
        if iteration is not None:
            log.current_iteration = iteration
        try:
            yield self
        finally:
            log.current_phase = prev_phase
            log.current_iteration = prev_iter

    # ------------------------------------------------------------ transfers
    def transfer(self, src: int, dst: int, nbytes: int,
                 label: str = "exchange", after: float = 0.0) -> float:
        """Move ``nbytes`` (scaled) from device ``src`` to ``dst``.

        Occupies the *sender's* link port for the link's transfer time
        (receive DMA overlaps — one event, no double charging) and returns
        the completion time for the receiver to depend on.  Zero-byte
        transfers are short-circuited like every other empty op.
        """
        link = self.topology.link(src, dst)
        if nbytes <= 0:
            return self.links[src].submit(0.0, label, after=after)
        charged = int(round(nbytes * self.charge_scale))
        dur = link.transfer_seconds(charged)
        if self.faults is not None and self.faults.plan.peer_degradations:
            t0 = max(self.clock.now, self.links[src].busy_until, after)
            factor, fresh = self.faults.peer_link_state(t0)
            for i, w in fresh:
                self.events.marker(
                    "peer-degrade", f"window{i}", t0,
                    extra=(("factor", float(w.factor)),
                           ("until", float(w.end))))
            if factor < 1.0:
                # Only the streaming part slows; latency is unaffected,
                # like the host-link degradation in Lane.submit_transfer.
                dur = link.latency + (charged / link.bandwidth) / factor
        self.exchange_bytes += charged
        self._exchange_by_device[src] += charged
        return self.links[src].submit(
            dur, label, after=after, kind="d2d",
            extra=(("bytes", float(charged)), ("dst", float(dst))),
        )

    def all_exchange(self, per_pair_bytes, label: str = "exchange") -> float:
        """One all-to-all exchange round; returns its completion time.

        ``per_pair_bytes[(src, dst)]`` gives the scaled payload for each
        ordered pair.  Pairs are issued in sorted order (deterministic);
        each sender's port serializes its own sends, different senders
        overlap.  The returned time is the max completion across pairs.
        """
        done = self.clock.now
        for (src, dst) in sorted(per_pair_bytes):
            end = self.transfer(src, dst, per_pair_bytes[(src, dst)],
                                label=label)
            done = max(done, end)
        return done

    # ----------------------------------------------------------------- sync
    def sync_all(self) -> float:
        """Wait for every device lane and link port to drain."""
        t = max(
            [l.busy_until for l in self.links]
            + [max(g.gpu.busy_until, g.copy.busy_until,
                   g.cpu.busy_until, g.direct.busy_until)
               for g in self.devices],
        )
        return self.clock.advance_to(t)

    def gpu_idle_fraction(self, device_id: int) -> float:
        """Idle share of one device's compute lane on the shared timeline."""
        if self.clock.now <= 0:
            return 0.0
        key = self.devices[device_id].gpu.key
        return self.events.idle_seconds(key, self.clock.now) / self.clock.now


def fold_exchange_bytes(events) -> Dict[int, int]:
    """Per-source-device exchange bytes from a recorded fabric log.

    A pure fold over ``d2d`` events (payload rides in ``extra`` — exchange
    traffic deliberately touches no :class:`~repro.gpusim.metrics.Metrics`
    counter, keeping single-device folds untouched).
    """
    out: Dict[int, int] = {}
    for e in events:
        if e.kind != "d2d" or e.device is None:
            continue
        nbytes = int(dict(e.extra).get("bytes", 0.0))
        out[e.device] = out.get(e.device, 0) + nbytes
    return out
