"""Kernel cost model.

Graph kernels on GPUs are memory-bound: time scales with edges touched (the
frontier expansion) plus a vertex-array scan term (bitmap/map generation,
value updates) plus a fixed launch overhead.  The constants approximate a
P100 running a push-style vertex-centric kernel; their absolute values only
set the compute:transfer balance — the quantity the paper's overlap analysis
(Fig. 5, Fig. 10) depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelModel"]


@dataclass(frozen=True)
class KernelModel:
    """Analytic GPU kernel timing.

    Parameters
    ----------
    edge_throughput:
        Edges processed per second by a traversal/relaxation kernel.
        P100-class push frameworks sustain on the order of 1–3 billion
        traversed edges per second out of device memory.
    vertex_scan_throughput:
        Vertices per second for full-array scans (map generation, bitmap
        AND/XOR, value init) — these stream 4–8 B/vertex at near memory
        bandwidth.
    launch_overhead:
        Seconds per kernel launch.
    atomic_penalty:
        Multiplier ≥ 1 applied to edge work for kernels dominated by atomic
        scatter updates (push PR/SSSP pay contention).
    """

    edge_throughput: float = 2.0e9
    vertex_scan_throughput: float = 50.0e9
    launch_overhead: float = 5.0e-6
    atomic_penalty: float = 1.5

    def __post_init__(self) -> None:
        if min(self.edge_throughput, self.vertex_scan_throughput) <= 0:
            raise ValueError("throughputs must be positive")
        if self.launch_overhead < 0 or self.atomic_penalty < 1.0:
            raise ValueError("invalid kernel overheads")

    def edge_kernel_seconds(self, n_edges: int, atomics: bool = False) -> float:
        """Seconds to process ``n_edges`` in one traversal kernel."""
        if n_edges < 0:
            raise ValueError("negative edge count")
        if n_edges == 0:
            return 0.0
        penalty = self.atomic_penalty if atomics else 1.0
        return self.launch_overhead + penalty * n_edges / self.edge_throughput

    def vertex_scan_seconds(self, n_vertices: int, passes: int = 1) -> float:
        """Seconds for ``passes`` full scans over ``n_vertices`` state words."""
        if n_vertices < 0 or passes < 0:
            raise ValueError("negative scan size")
        if n_vertices == 0 or passes == 0:
            return 0.0
        return self.launch_overhead + passes * n_vertices / self.vertex_scan_throughput
