"""Lanes: overlap-aware scheduling of simulated work.

CUDA overlap comes from streams: the compute engine, the copy engine, and the
host CPU can each be busy simultaneously, and synchronization points decide
who waits for whom.  A :class:`Lane` models one such engine as a
"busy-until" horizon.  Work submitted to a lane starts at the latest of
(current virtual time, the lane's horizon, an explicit dependency time) and
occupies the lane for its duration; synchronizing advances the clock.

This is exactly enough to reproduce the paper's Fig. 5: the Subway baseline
submits GenDataMap → Gather → Transfer → Compute with a sync after each
(sequential), while Ascetic submits Static-Region compute on the GPU lane and
Gather+Transfer on the CPU/copy lanes with no sync in between, so the
timeline overlaps and the total is the max, not the sum.

Every submit is also the single accounting point: when the lane is wired to
an :class:`~repro.gpusim.events.EventLog` it emits exactly one
:class:`~repro.gpusim.events.SimEvent` per op, carrying the op's counter
contribution and the phase/iteration context active at emission time.
``Metrics``, spans, and idle accounting are all folds over those events.

Chaos mode adds the resilience layer here, where the events are born:
:meth:`Lane.submit_transfer` retries injected transfer failures with
deterministic exponential backoff (failed attempts and backoff delays
occupy the lane and are charged to the ``retry`` bucket), and
:meth:`Lane.submit_kernel` re-launches injected kernel aborts.  Without a
:class:`~repro.gpusim.faults.FaultInjector` both degrade to a single
:meth:`submit`, bit-identical to the fault-free model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.gpusim.clock import VirtualClock
from repro.gpusim.events import EventLog, qualified_lane
from repro.gpusim.faults import FaultInjector, KernelFaultError, TransferFaultError

__all__ = ["Lane"]


@dataclass
class Lane:
    """One serially-ordered execution engine (GPU SMs, copy engine, CPU).

    ``device`` identifies the owning simulated device when several share
    one event log (a :class:`~repro.gpusim.fabric.Fabric`); it rides on
    every emitted event and qualifies the lane's accounting key.  The
    single-device default ``None`` keeps names, keys, and digests exactly
    as before.
    """

    name: str
    clock: VirtualClock
    log: EventLog = None  # type: ignore[assignment]
    busy_until: float = 0.0
    device: Optional[int] = None

    def __post_init__(self) -> None:
        # Standalone lanes get a private lean log; a SimulatedGPU wires all
        # its lanes to the shared per-run log instead.
        if self.log is None:
            self.log = EventLog(record=False)

    @property
    def key(self) -> str:
        """The lane-identity key this lane's time is accounted under."""
        return qualified_lane(self.name, self.device)

    def submit(self, duration: float, label: str = "", after: float = 0.0,
               *, kind: str = "op",
               counters: Optional[Mapping[str, int]] = None,
               extra: Tuple[Tuple[str, float], ...] = ()) -> float:
        """Schedule ``duration`` seconds of work; return its completion time.

        ``after`` is an explicit dependency: the work cannot start before
        that virtual time (use the completion time of work on another lane).
        The clock itself does not move — call :meth:`Lane.sync` (or
        ``clock.advance_to``) at the point the controlling code actually
        waits.

        ``counters`` is the op's contribution to the run metrics (e.g.
        ``{"bytes_h2d": n, "h2d_transfers": 1}``); it rides on the emitted
        event and is folded by the :class:`~repro.gpusim.events.EventLog`.
        ``extra`` carries descriptive (non-folded) key/value pairs for the
        trace export.  Empty ops — zero duration and no counters — are
        short-circuited uniformly: no span, no event, no lane occupancy.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        if duration == 0 and not counters:
            return max(self.clock.now, self.busy_until, after)
        start = max(self.clock.now, self.busy_until, after)
        end = start + duration
        self.busy_until = end
        if duration > 0:
            self.clock.log(self.key, label, start, end)
        # emit_op folds without constructing a SimEvent in lean mode (and
        # builds the identical event in recorded mode).
        self.log.emit_op(
            self.name, kind, label, start, end,
            counters=counters, extra=extra, device=self.device,
        )
        return end

    # ------------------------------------------------------------ resilience
    def submit_transfer(self, fixed: float, variable: float, label: str = "",
                        after: float = 0.0, *, kind: str,
                        counters: Optional[Mapping[str, int]] = None,
                        faults: Optional[FaultInjector] = None) -> float:
        """A transfer with bounded retry, backoff, and link degradation.

        ``fixed`` is the per-transfer latency; ``variable`` is the
        bytes-over-bandwidth part, the only part a
        :class:`~repro.gpusim.faults.LinkDegradation` window divides.
        Without an injector this is exactly
        ``submit(fixed + variable, ...)`` — the fault-free model,
        bit for bit.

        Under an injector, each attempt may fail outright or complete with
        a corrupted (CRC-mismatch) payload.  A failed/corrupt attempt
        occupies the lane for its full duration (kind ``<kind>-fault``,
        counted in ``transfer_faults``/``retry_seconds`` — byte counters
        ride only on the eventually useful attempt), then a deterministic
        exponential backoff occupies the lane (kind ``backoff``) before
        the retry.  After ``plan.max_retries`` extra attempts,
        :class:`~repro.gpusim.faults.TransferFaultError` propagates — the
        grid runner degrades the cell / resumes from checkpoint.
        """
        if faults is None or (not faults.plan.affects_transfers
                              and not faults.plan.degradations):
            return self.submit(fixed + variable, label, after=after,
                               kind=kind, counters=counters)
        attempt = 0
        while True:
            start = max(self.clock.now, self.busy_until, after)
            factor, fresh = faults.link_state(start)
            for i, w in fresh:
                self.log.marker("link-degrade", f"window{i}", start,
                                extra=(("factor", w.factor),
                                       ("until", w.end)))
            duration = fixed + variable / factor
            extra: Tuple[Tuple[str, float], ...] = (
                (("link_factor", factor),) if factor < 1.0 else ()
            )
            outcome = faults.transfer_outcome()
            if outcome == "ok":
                merged = dict(counters or {})
                if attempt:
                    merged["transfer_retries"] = attempt
                return self.submit(duration, label, after=after, kind=kind,
                                   counters=merged, extra=extra)
            end = self.submit(
                duration, f"{label}!{outcome}", after=after,
                kind=f"{kind}-fault",
                counters={"transfer_faults": 1, "retry_seconds": duration},
                extra=extra,
            )
            if attempt >= faults.plan.max_retries:
                raise TransferFaultError(
                    f"{kind} {label!r} failed {attempt + 1} attempt(s) "
                    f"(last outcome: {outcome})"
                )
            delay = faults.plan.backoff_seconds(attempt)
            if delay > 0:
                end = self.submit(delay, f"{label}~backoff", after=end,
                                  kind="backoff",
                                  counters={"retry_seconds": delay})
            after = end
            attempt += 1

    def submit_kernel(self, duration: float, label: str = "",
                      after: float = 0.0, *,
                      counters: Optional[Mapping[str, int]] = None,
                      faults: Optional[FaultInjector] = None) -> float:
        """A kernel launch with injected slowdown/abort handling.

        Without an injector this is ``submit(duration, kind="kernel")``
        exactly.  An injected *abort* burns ``kernel_abort_fraction`` of
        the launch (kind ``kernel-abort``, counted in ``kernel_aborts`` /
        ``retry_seconds``), backs off, and re-launches — bounded by
        ``plan.max_retries``, then
        :class:`~repro.gpusim.faults.KernelFaultError`.  An injected
        *slowdown* stretches the launch by ``kernel_slowdown_factor``
        (clock throttling); the event notes the factor but the work
        completes normally.
        """
        if faults is None or not faults.plan.affects_kernels:
            return self.submit(duration, label, after=after, kind="kernel",
                               counters=counters)
        attempt = 0
        while True:
            outcome, factor = faults.kernel_outcome()
            if outcome == "abort":
                part = duration * factor
                end = self.submit(
                    part, f"{label}!abort", after=after, kind="kernel-abort",
                    counters={"kernel_aborts": 1, "retry_seconds": part},
                )
                if attempt >= faults.plan.max_retries:
                    raise KernelFaultError(
                        f"kernel {label!r} aborted {attempt + 1} time(s)"
                    )
                delay = faults.plan.backoff_seconds(attempt)
                if delay > 0:
                    end = self.submit(delay, f"{label}~backoff", after=end,
                                      kind="backoff",
                                      counters={"retry_seconds": delay})
                after = end
                attempt += 1
                continue
            extra: Tuple[Tuple[str, float], ...] = (
                (("slowdown", factor),) if outcome == "slow" else ()
            )
            return self.submit(duration * (factor if outcome == "slow" else 1.0),
                               label, after=after, kind="kernel",
                               counters=counters, extra=extra)

    def sync(self) -> float:
        """Block the caller until this lane drains; returns the new time."""
        return self.clock.advance_to(self.busy_until)

    @property
    def busy_seconds(self) -> float:
        """Total seconds of work this lane has executed (event-log fold)."""
        return self.log.busy_seconds(self.key)

    @property
    def n_ops(self) -> int:
        stats = self.log.lane_stats.get(self.key)
        return stats.n_ops if stats is not None else 0

    def idle_seconds(self, horizon: float | None = None) -> float:
        """Idle time of this lane within ``[0, horizon]`` (default: now)."""
        h = self.clock.now if horizon is None else horizon
        return self.log.idle_seconds(self.key, h)
