"""Lanes: overlap-aware scheduling of simulated work.

CUDA overlap comes from streams: the compute engine, the copy engine, and the
host CPU can each be busy simultaneously, and synchronization points decide
who waits for whom.  A :class:`Lane` models one such engine as a
"busy-until" horizon.  Work submitted to a lane starts at the latest of
(current virtual time, the lane's horizon, an explicit dependency time) and
occupies the lane for its duration; synchronizing advances the clock.

This is exactly enough to reproduce the paper's Fig. 5: the Subway baseline
submits GenDataMap → Gather → Transfer → Compute with a sync after each
(sequential), while Ascetic submits Static-Region compute on the GPU lane and
Gather+Transfer on the CPU/copy lanes with no sync in between, so the
timeline overlaps and the total is the max, not the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.clock import VirtualClock

__all__ = ["Lane"]


@dataclass
class Lane:
    """One serially-ordered execution engine (GPU SMs, copy engine, CPU)."""

    name: str
    clock: VirtualClock
    busy_until: float = 0.0
    busy_seconds: float = 0.0
    _n_ops: int = field(default=0, repr=False)

    def submit(self, duration: float, label: str = "", after: float = 0.0) -> float:
        """Schedule ``duration`` seconds of work; return its completion time.

        ``after`` is an explicit dependency: the work cannot start before
        that virtual time (use the completion time of work on another lane).
        The clock itself does not move — call :meth:`Lane.sync` (or
        ``clock.advance_to``) at the point the controlling code actually
        waits.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(self.clock.now, self.busy_until, after)
        end = start + duration
        self.busy_until = end
        self.busy_seconds += duration
        self._n_ops += 1
        if duration > 0:
            self.clock.log(self.name, label, start, end)
        return end

    def sync(self) -> float:
        """Block the caller until this lane drains; returns the new time."""
        return self.clock.advance_to(self.busy_until)

    @property
    def n_ops(self) -> int:
        return self._n_ops

    def idle_seconds(self, horizon: float | None = None) -> float:
        """Idle time of this lane within ``[0, horizon]`` (default: now)."""
        h = self.clock.now if horizon is None else horizon
        return max(h - self.busy_seconds, 0.0)
