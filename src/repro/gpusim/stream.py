"""Lanes: overlap-aware scheduling of simulated work.

CUDA overlap comes from streams: the compute engine, the copy engine, and the
host CPU can each be busy simultaneously, and synchronization points decide
who waits for whom.  A :class:`Lane` models one such engine as a
"busy-until" horizon.  Work submitted to a lane starts at the latest of
(current virtual time, the lane's horizon, an explicit dependency time) and
occupies the lane for its duration; synchronizing advances the clock.

This is exactly enough to reproduce the paper's Fig. 5: the Subway baseline
submits GenDataMap → Gather → Transfer → Compute with a sync after each
(sequential), while Ascetic submits Static-Region compute on the GPU lane and
Gather+Transfer on the CPU/copy lanes with no sync in between, so the
timeline overlaps and the total is the max, not the sum.

Every submit is also the single accounting point: when the lane is wired to
an :class:`~repro.gpusim.events.EventLog` it emits exactly one
:class:`~repro.gpusim.events.SimEvent` per op, carrying the op's counter
contribution and the phase/iteration context active at emission time.
``Metrics``, spans, and idle accounting are all folds over those events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.gpusim.clock import VirtualClock
from repro.gpusim.events import EventLog, SimEvent

__all__ = ["Lane"]


@dataclass
class Lane:
    """One serially-ordered execution engine (GPU SMs, copy engine, CPU)."""

    name: str
    clock: VirtualClock
    log: EventLog = None  # type: ignore[assignment]
    busy_until: float = 0.0

    def __post_init__(self) -> None:
        # Standalone lanes get a private lean log; a SimulatedGPU wires all
        # its lanes to the shared per-run log instead.
        if self.log is None:
            self.log = EventLog(record=False)

    def submit(self, duration: float, label: str = "", after: float = 0.0,
               *, kind: str = "op",
               counters: Optional[Mapping[str, int]] = None) -> float:
        """Schedule ``duration`` seconds of work; return its completion time.

        ``after`` is an explicit dependency: the work cannot start before
        that virtual time (use the completion time of work on another lane).
        The clock itself does not move — call :meth:`Lane.sync` (or
        ``clock.advance_to``) at the point the controlling code actually
        waits.

        ``counters`` is the op's contribution to the run metrics (e.g.
        ``{"bytes_h2d": n, "h2d_transfers": 1}``); it rides on the emitted
        event and is folded by the :class:`~repro.gpusim.events.EventLog`.
        Empty ops — zero duration and no counters — are short-circuited
        uniformly: no span, no event, no lane occupancy.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        if duration == 0 and not counters:
            return max(self.clock.now, self.busy_until, after)
        start = max(self.clock.now, self.busy_until, after)
        end = start + duration
        self.busy_until = end
        if duration > 0:
            self.clock.log(self.name, label, start, end)
        self.log.emit(SimEvent(
            lane=self.name, kind=kind, label=label, start=start, end=end,
            phase=self.log.current_phase,
            iteration=self.log.current_iteration,
            **dict(counters or {}),
        ))
        return end

    def sync(self) -> float:
        """Block the caller until this lane drains; returns the new time."""
        return self.clock.advance_to(self.busy_until)

    @property
    def busy_seconds(self) -> float:
        """Total seconds of work this lane has executed (event-log fold)."""
        return self.log.busy_seconds(self.name)

    @property
    def n_ops(self) -> int:
        stats = self.log.lane_stats.get(self.name)
        return stats.n_ops if stats is not None else 0

    def idle_seconds(self, horizon: float | None = None) -> float:
        """Idle time of this lane within ``[0, horizon]`` (default: now)."""
        h = self.clock.now if horizon is None else horizon
        return self.log.idle_seconds(self.name, h)
