"""Device-memory allocator.

Models the finite GDDR5 capacity the whole paper is about.  Engines allocate
named regions (vertex state, partition buffer, Static Region, On-demand
Region, UVM-resident pool); exceeding capacity raises
:class:`GPUOutOfMemory`, exactly the constraint that forces out-of-memory
processing in the first place.

The allocator is a byte-accounting allocator, not an address-space model:
placement/fragmentation is irrelevant to every policy in the paper (all
regions are long-lived arenas), so only sizes are tracked.

Chaos mode wires a :class:`~repro.gpusim.faults.FaultInjector` into the
allocator: an allocation whose name appears in the plan's
``alloc_failures`` list fails transiently (``injected=True`` on the raised
:class:`GPUOutOfMemory`) even though capacity was sufficient, forcing the
engine recovery ladders (retry → shrink → degrade) to run.  Either way the
exception carries a structured payload — requested/available/capacity bytes
plus a live-allocation snapshot — so recovery code can decide how much to
shrink instead of parsing a message string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Allocation", "DeviceMemory", "GPUOutOfMemory"]


class GPUOutOfMemory(RuntimeError):
    """Requested allocation exceeds remaining device memory.

    Carries a structured payload so engine recovery code can size its
    response: ``name``/``requested``/``available``/``capacity`` in bytes,
    ``live`` — a ``{name: nbytes}`` snapshot of live allocations at raise
    time — and ``injected``, True when the failure came from a chaos-mode
    :class:`~repro.gpusim.faults.FaultPlan` rather than real capacity
    pressure (injected failures are transient: a plain retry may succeed).
    """

    def __init__(self, message: str, *, name: Optional[str] = None,
                 requested: Optional[int] = None,
                 available: Optional[int] = None,
                 capacity: Optional[int] = None,
                 live: Optional[Dict[str, int]] = None,
                 injected: bool = False) -> None:
        super().__init__(message)
        self.name = name
        self.requested = requested
        self.available = available
        self.capacity = capacity
        self.live = dict(live) if live is not None else None
        self.injected = injected


@dataclass
class Allocation:
    """A live, named slice of device memory."""

    name: str
    nbytes: int
    freed: bool = False


class DeviceMemory:
    """Byte-accounting allocator over a fixed capacity.

    ``faults``/``events``/``clock`` are optional chaos-mode wiring: when a
    fault injector is attached, allocations it targets raise a transient
    :class:`GPUOutOfMemory` (and, when an event log is attached, drop an
    ``alloc-fault`` marker at the current virtual time).
    """

    def __init__(self, capacity_bytes: int, faults=None, events=None,
                 clock=None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self._allocs: Dict[str, Allocation] = {}
        self._used = 0
        self.faults = faults
        self.events = events
        self.clock = clock

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    def _oom(self, message: str, name: str, requested: int,
             injected: bool = False) -> GPUOutOfMemory:
        return GPUOutOfMemory(
            message, name=name, requested=requested,
            available=self.available, capacity=self.capacity,
            live=self.live_allocations(), injected=injected,
        )

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``.  Names must be unique while live."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._allocs:
            raise ValueError(f"allocation {name!r} already exists")
        # Injected transient failures: only for real (non-zero) requests, so
        # degraded zero-byte placeholders always succeed and ladders
        # terminate.
        if nbytes > 0 and self.faults is not None \
                and self.faults.alloc_should_fail(name):
            if self.events is not None:
                now = self.clock.now if self.clock is not None else 0.0
                self.events.marker("alloc-fault", name, now,
                                   extra=(("requested", nbytes),))
            raise self._oom(
                f"alloc {name!r} of {nbytes:,} B failed (injected fault)",
                name, nbytes, injected=True,
            )
        if nbytes > self.available:
            raise self._oom(
                f"alloc {name!r} of {nbytes:,} B exceeds available "
                f"{self.available:,} B (capacity {self.capacity:,} B)",
                name, nbytes,
            )
        a = Allocation(name=name, nbytes=nbytes)
        self._allocs[name] = a
        self._used += nbytes
        return a

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation (double-free raises)."""
        if alloc.freed or self._allocs.get(alloc.name) is not alloc:
            raise ValueError(f"allocation {alloc.name!r} is not live")
        alloc.freed = True
        del self._allocs[alloc.name]
        self._used -= alloc.nbytes

    def resize(self, alloc: Allocation, nbytes: int) -> None:
        """Grow or shrink a live allocation in place (Ascetic's Eq. 3 repartition)."""
        nbytes = int(nbytes)
        if alloc.freed or self._allocs.get(alloc.name) is not alloc:
            raise ValueError(f"allocation {alloc.name!r} is not live")
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        delta = nbytes - alloc.nbytes
        if delta > self.available:
            raise self._oom(
                f"resize {alloc.name!r} to {nbytes:,} B exceeds available "
                f"{self.available:,} B (capacity {self.capacity:,} B)",
                alloc.name, nbytes,
            )
        alloc.nbytes = nbytes
        self._used += delta

    def release_all(self) -> None:
        """Free every live allocation (a device dropping its whole layout).

        The fleet recovery path uses this when a survivor abandons its old
        shard's placement to re-stage a larger re-tiled shard — equivalent
        to freeing each allocation individually, just without the caller
        having to hold the handles.
        """
        for a in list(self._allocs.values()):
            self.free(a)

    def live_allocations(self) -> Dict[str, int]:
        """Snapshot of live allocation sizes (for tests and reports)."""
        return {name: a.nbytes for name, a in self._allocs.items()}
