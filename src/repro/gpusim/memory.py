"""Device-memory allocator.

Models the finite GDDR5 capacity the whole paper is about.  Engines allocate
named regions (vertex state, partition buffer, Static Region, On-demand
Region, UVM-resident pool); exceeding capacity raises
:class:`GPUOutOfMemory`, exactly the constraint that forces out-of-memory
processing in the first place.

The allocator is a byte-accounting allocator, not an address-space model:
placement/fragmentation is irrelevant to every policy in the paper (all
regions are long-lived arenas), so only sizes are tracked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Allocation", "DeviceMemory", "GPUOutOfMemory"]


class GPUOutOfMemory(RuntimeError):
    """Requested allocation exceeds remaining device memory."""


@dataclass
class Allocation:
    """A live, named slice of device memory."""

    name: str
    nbytes: int
    freed: bool = False


class DeviceMemory:
    """Byte-accounting allocator over a fixed capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self._allocs: Dict[str, Allocation] = {}
        self._used = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``.  Names must be unique while live."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._allocs:
            raise ValueError(f"allocation {name!r} already exists")
        if nbytes > self.available:
            raise GPUOutOfMemory(
                f"alloc {name!r} of {nbytes:,} B exceeds available "
                f"{self.available:,} B (capacity {self.capacity:,} B)"
            )
        a = Allocation(name=name, nbytes=nbytes)
        self._allocs[name] = a
        self._used += nbytes
        return a

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation (double-free raises)."""
        if alloc.freed or self._allocs.get(alloc.name) is not alloc:
            raise ValueError(f"allocation {alloc.name!r} is not live")
        alloc.freed = True
        del self._allocs[alloc.name]
        self._used -= alloc.nbytes

    def resize(self, alloc: Allocation, nbytes: int) -> None:
        """Grow or shrink a live allocation in place (Ascetic's Eq. 3 repartition)."""
        nbytes = int(nbytes)
        if alloc.freed or self._allocs.get(alloc.name) is not alloc:
            raise ValueError(f"allocation {alloc.name!r} is not live")
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        delta = nbytes - alloc.nbytes
        if delta > self.available:
            raise GPUOutOfMemory(
                f"resize {alloc.name!r} to {nbytes:,} B exceeds available memory"
            )
        alloc.nbytes = nbytes
        self._used += delta

    def live_allocations(self) -> Dict[str, int]:
        """Snapshot of live allocation sizes (for tests and reports)."""
        return {name: a.nbytes for name, a in self._allocs.items()}
