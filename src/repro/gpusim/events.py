"""The event-sourced timing/accounting core.

Every number the reproduction reports — bytes over PCIe (Tables 2/5),
per-phase component times (Fig. 10), GPU idle share (§2.2's 68 %), UVM
fault counts (§4.4) — used to be produced by three disconnected bookkeeping
paths: hand-maintained :class:`~repro.gpusim.metrics.Metrics` counters,
optional :class:`~repro.gpusim.clock.VirtualClock` spans, and per-lane
``busy_seconds`` aggregates.  This module replaces them with a single
source of truth:

* :class:`SimEvent` — one typed record per simulated activity (lane, op
  kind, label, start/end, engine phase, iteration, counter payload);
* :class:`EventLog` — the per-run log every
  :meth:`~repro.gpusim.stream.Lane.submit` emits into.  In **lean** mode
  (the default) nothing is retained: each event is folded into a
  :class:`~repro.gpusim.metrics.Metrics` bundle and per-lane
  :class:`LaneStats` on emit, keeping benchmark overhead flat.  In
  **recorded** mode the full event list is kept for trace export
  (:mod:`repro.analysis.traces`), idle-gap attribution, and validation.

``Metrics``, ``phase_seconds``, span traces, and idle accounting are all
*pure folds* over the log (:func:`fold_metrics`, :func:`fold_spans`,
:func:`fold_phase_seconds`, :func:`fold_lane_stats`, :func:`idle_breakdown`)
— the legacy ``Metrics`` fields survive as the fold's derived view, so
everything downstream (analysis, persistence, the result cache) keeps
working.  :func:`validate_log` asserts the invariants that make the fold
trustworthy: lanes never self-overlap, spans are monotone per lane, and the
re-folded metrics equal the incrementally maintained counters bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.gpusim.clock import Span
from repro.gpusim.metrics import Metrics

__all__ = [
    "SimEvent",
    "EventLog",
    "EventLogError",
    "LaneStats",
    "IdleBreakdown",
    "COUNTER_FIELDS",
    "FAULT_KINDS",
    "DEVICE_FAULT_KINDS",
    "REQUEST_KINDS",
    "lane_key",
    "qualified_lane",
    "fold_metrics",
    "fold_spans",
    "fold_phase_seconds",
    "fold_lane_stats",
    "fold_device_metrics",
    "fold_device_faults",
    "idle_breakdown",
    "validate_log",
]

#: SimEvent fields that fold one-to-one onto :class:`Metrics` counters.
COUNTER_FIELDS: Tuple[str, ...] = (
    "bytes_h2d",
    "bytes_d2h",
    "h2d_transfers",
    "d2h_transfers",
    "bytes_direct",
    "direct_accesses",
    "kernel_launches",
    "edges_processed",
    "page_faults",
    "fault_batches",
    "pages_migrated",
    "pages_evicted",
    "transfer_faults",
    "transfer_retries",
    "kernel_aborts",
    "retry_seconds",
)

_COUNTER_SET = frozenset(COUNTER_FIELDS)

#: Event kinds emitted by chaos-mode fault injection and recovery.  Lane
#: time under these kinds is *wasted* work: :func:`idle_breakdown` reports
#: it as the ``retry`` bucket, and the Chrome-trace export categorizes
#: them separately so faults stand out in a Perfetto timeline.
FAULT_KINDS = frozenset({
    "h2d-fault", "d2h-fault", "direct-fault", "backoff", "kernel-abort",
    "device-stall",
})

#: Marker kinds narrating whole-device faults and the recovery around them
#: (fleet chaos mode): health transitions (``device-down`` / ``device-up``),
#: peer-link degradation windows, failed dispatches on a dead device, and
#: the sharded engine's recovery steps (``reshard`` + ``ckpt-restore``).
#: All are instant, lane-less events; :func:`fold_device_faults` counts
#: them per device and the trace export renders them in each device's
#: Chrome-trace process.
DEVICE_FAULT_KINDS = frozenset({
    "device-down", "device-up", "peer-degrade", "device-fail",
    "reshard", "ckpt-restore",
})

#: Request-lifecycle marker kinds emitted by the serving layer
#: (:mod:`repro.serve`): instant, lane-less events on the serve clock from
#: which the SLO report is folded (:mod:`repro.serve.slo`).  ``warm-hit`` /
#: ``warm-miss`` record whether a dispatch found a warm Static Region in
#: the engine pool; an engine's own run log additionally carries a
#: ``warm-hit`` marker with resident/refill chunk counts.
REQUEST_KINDS = frozenset({
    "request-arrive", "request-admit", "request-shed",
    "request-start", "request-complete", "warm-hit", "warm-miss",
    "dispatch",
})


@dataclass(frozen=True)
class SimEvent:
    """One simulated activity, with everything needed to explain it.

    ``lane`` names the engine the activity occupied (``gpu`` / ``copy`` /
    ``cpu``); an empty lane marks an *instant* bookkeeping event (UVM
    faults, pins, prefetches) that occupies no lane time.  The counter
    fields are this event's *contribution* to the run's
    :class:`~repro.gpusim.metrics.Metrics` — the fold is a plain sum, so
    an event carries exactly the deltas the legacy call site added.
    ``extra`` holds descriptive key/value pairs (trace-export args) that
    do not fold into any counter.

    ``device`` identifies the simulated device the activity belongs to
    when several :class:`~repro.gpusim.device.SimulatedGPU` instances
    share one log (a :class:`~repro.gpusim.fabric.Fabric`).  ``None`` —
    the single-device default — serializes to nothing, so single-device
    logs and digests are unchanged.
    """

    lane: str
    kind: str
    label: str
    start: float
    end: float
    phase: Optional[str] = None
    iteration: Optional[int] = None
    device: Optional[int] = None
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    bytes_direct: int = 0
    direct_accesses: int = 0
    kernel_launches: int = 0
    edges_processed: int = 0
    page_faults: int = 0
    fault_batches: int = 0
    pages_migrated: int = 0
    pages_evicted: int = 0
    transfer_faults: int = 0
    transfer_retries: int = 0
    kernel_aborts: int = 0
    retry_seconds: float = 0.0
    extra: Tuple[Tuple[str, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        """Whether this is a zero-width bookkeeping marker (no lane time)."""
        return not self.lane

    # ------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON-able form: default-valued fields are omitted."""
        out: Dict[str, Any] = {
            "lane": self.lane,
            "kind": self.kind,
            "label": self.label,
            "start": self.start,
            "end": self.end,
        }
        if self.phase is not None:
            out["phase"] = self.phase
        if self.iteration is not None:
            out["iteration"] = self.iteration
        if self.device is not None:
            out["device"] = self.device
        for name in COUNTER_FIELDS:
            value = getattr(self, name)
            if value:
                out[name] = value
        if self.extra:
            out["extra"] = [[k, v] for k, v in self.extra]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimEvent":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        extra = kwargs.pop("extra", None)
        if extra:
            kwargs["extra"] = tuple((str(k), v) for k, v in extra)
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(f"unknown SimEvent fields: {sorted(unknown)}")
        return cls(**kwargs)


def lane_key(event: SimEvent) -> str:
    """The lane-identity key an event's lane time is accounted under.

    Single-device events (``device is None``) keep the bare lane name —
    every existing fold, stat key, and digest is unchanged.  Events from a
    multi-device fabric are qualified as ``"<lane>@<device>"`` so each
    device's lanes stay serially ordered and separately accountable even
    though all devices share one :class:`EventLog`.
    """
    if event.device is None:
        return event.lane
    return f"{event.lane}@{event.device}"


def qualified_lane(lane: str, device: Optional[int]) -> str:
    """The :func:`lane_key` for a bare lane name on a given device."""
    return lane if device is None else f"{lane}@{device}"


@dataclass
class LaneStats:
    """Lean per-lane aggregate maintained by the fold (no retained events)."""

    busy_seconds: float = 0.0
    n_ops: int = 0
    first_start: float = math.inf
    last_end: float = 0.0


@dataclass(frozen=True)
class IdleBreakdown:
    """Where a lane's idle time went, within ``[0, horizon]``.

    Splits the old undifferentiated ``horizon - busy_seconds`` subtraction
    into *lead* (before the lane's first op — startup, not a stall),
    *stall* (gaps between ops — the §2.2 "GPU waits for the CPU gather"
    signal), and *tail* (after the lane's last op).

    ``retry`` is chaos-mode's wasted-work bucket: lane time occupied by
    fault-recovery events (failed attempts, backoff delays — the
    :data:`FAULT_KINDS`).  It is a slice *of* ``busy``, not of ``idle``:
    the lane was occupied, just not usefully.
    """

    lead: float
    stall: float
    tail: float
    busy: float
    horizon: float
    retry: float = 0.0

    @property
    def idle(self) -> float:
        return self.lead + self.stall + self.tail

    @property
    def idle_fraction(self) -> float:
        return self.idle / self.horizon if self.horizon > 0 else 0.0


class EventLogError(ValueError):
    """A consistency invariant of an :class:`EventLog` does not hold."""


class EventLog:
    """The per-run event stream plus its incrementally maintained folds.

    Parameters
    ----------
    record:
        Retain the full event list.  Off (lean mode) by default: emits
        fold straight into the counters and lane stats and the event
        object is dropped, so benchmarks pay only the fold.

    The log also carries the *emission context* — the engine phase and
    iteration installed by :meth:`~repro.gpusim.device.SimulatedGPU.phase`
    / :meth:`~repro.gpusim.device.SimulatedGPU.iteration` — which
    :meth:`~repro.gpusim.stream.Lane.submit` stamps onto every event it
    emits, replacing the old per-call ``phase=`` string threading.
    """

    __slots__ = ("record", "events", "metrics", "lane_stats",
                 "current_phase", "current_iteration")

    def __init__(self, record: bool = False) -> None:
        self.record = record
        self.events: List[SimEvent] = []
        #: The legacy counter bundle, now a derived view: a running fold
        #: of every emitted event.
        self.metrics = Metrics()
        self.lane_stats: Dict[str, LaneStats] = {}
        self.current_phase: Optional[str] = None
        self.current_iteration: Optional[int] = None

    # ------------------------------------------------------------ emission
    def emit(self, event: SimEvent) -> SimEvent:
        """Fold ``event`` into the counters (and retain it when recording)."""
        _apply(self.metrics, event)
        if event.lane:
            key = lane_key(event)
            stats = self.lane_stats.get(key)
            if stats is None:
                stats = self.lane_stats[key] = LaneStats()
            stats.busy_seconds += event.end - event.start
            stats.n_ops += 1
            if event.start < stats.first_start:
                stats.first_start = event.start
            if event.end > stats.last_end:
                stats.last_end = event.end
        if self.record:
            self.events.append(event)
        return event

    def emit_op(self, lane: str, kind: str, label: str, start: float,
                end: float, counters: Optional[Mapping[str, Any]] = None,
                extra: Tuple[Tuple[str, float], ...] = (),
                device: Optional[int] = None) -> None:
        """Fold one lane op without materializing a :class:`SimEvent`.

        The scalar fast path behind :meth:`~repro.gpusim.stream.Lane.submit`:
        identical fold semantics to :meth:`emit` — same counter additions,
        same phase attribution, same lane stats, stamped with the current
        phase/iteration context — but the frozen dataclass (16 counter
        fields, a ``__init__`` per op) is only constructed when the log is
        recording, where the retained event has to exist anyway.
        """
        if self.record:
            self.emit(SimEvent(
                lane=lane, kind=kind, label=label, start=start, end=end,
                phase=self.current_phase, iteration=self.current_iteration,
                device=device, extra=extra, **dict(counters or {}),
            ))
            return
        metrics = self.metrics
        if counters:
            for name, value in counters.items():
                if name not in _COUNTER_SET:
                    raise TypeError(f"unknown counter field {name!r}")
                if value:
                    setattr(metrics, name, getattr(metrics, name) + value)
        if self.current_phase is not None and end > start:
            metrics.add_phase(self.current_phase, end - start)
        if lane:
            key = lane if device is None else f"{lane}@{device}"
            stats = self.lane_stats.get(key)
            if stats is None:
                stats = self.lane_stats[key] = LaneStats()
            stats.busy_seconds += end - start
            stats.n_ops += 1
            if start < stats.first_start:
                stats.first_start = start
            if end > stats.last_end:
                stats.last_end = end

    def emit_batch(self, lane: str, kind: str, label: str,
                   starts, ends,
                   counters: Optional[Mapping[str, Any]] = None,
                   device: Optional[int] = None) -> None:
        """Fold a column of same-lane, same-context ops in one call.

        ``starts``/``ends`` are equal-length arrays, one op per row in
        emission order; ``counters`` maps counter names to per-op integer
        columns of the same length.  In lean mode the integer counters fold
        through exact array sums while the float accumulators — per-phase
        seconds, lane busy time, ``retry_seconds`` — are added row by row,
        so the resulting :class:`Metrics` equal a row-by-row :meth:`emit`
        sequence bit for bit (float addition is not associative; a
        ``np.sum`` shortcut would drift in the last ulp).  In recorded mode
        the rows materialize as individual events, so the retained trace is
        the same as per-op emission.

        Rows are folded as given: callers must pre-filter empty ops
        (zero duration, no counters) exactly as :meth:`Lane.submit`
        short-circuits them.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        n = starts.size
        if ends.size != n:
            raise ValueError("starts/ends length mismatch")
        cols = {}
        if counters:
            for name, col in counters.items():
                if name not in _COUNTER_SET:
                    raise TypeError(f"unknown counter field {name!r}")
                col = np.asarray(col)
                if col.shape != (n,):
                    raise ValueError(f"counter column {name!r} shape mismatch")
                cols[name] = col
        if n == 0:
            return
        if self.record:
            phase, it = self.current_phase, self.current_iteration
            for i in range(n):
                row = {name: col[i].item() for name, col in cols.items()
                       if col[i]}
                self.emit(SimEvent(
                    lane=lane, kind=kind, label=label,
                    start=float(starts[i]), end=float(ends[i]),
                    phase=phase, iteration=it, device=device, **row,
                ))
            return
        metrics = self.metrics
        for name, col in cols.items():
            if name == "retry_seconds":
                for v in col.tolist():
                    if v:
                        metrics.retry_seconds += v
            else:
                total = int(col.sum())
                if total:
                    setattr(metrics, name, getattr(metrics, name) + total)
        durations = (ends - starts).tolist()
        if self.current_phase is not None:
            phase = self.current_phase
            for d in durations:
                if d > 0:
                    metrics.add_phase(phase, d)
        if lane:
            key = lane if device is None else f"{lane}@{device}"
            stats = self.lane_stats.get(key)
            if stats is None:
                stats = self.lane_stats[key] = LaneStats()
            busy = stats.busy_seconds
            for d in durations:
                busy += d
            stats.busy_seconds = busy
            stats.n_ops += n
            first = float(starts.min())
            last = float(ends.max())
            if first < stats.first_start:
                stats.first_start = first
            if last > stats.last_end:
                stats.last_end = last

    def marker(self, kind: str, label: str, t: float,
               counters: Optional[Mapping[str, int]] = None,
               extra: Tuple[Tuple[str, float], ...] = (),
               device: Optional[int] = None) -> SimEvent:
        """Emit an instant (zero-width, lane-less) bookkeeping event.

        ``device`` attributes the marker to one device of a fabric log
        (it renders in that device's Chrome-trace process); the default
        ``None`` keeps single-device logs byte-identical.
        """
        return self.emit(SimEvent(
            lane="", kind=kind, label=label, start=t, end=t,
            phase=self.current_phase, iteration=self.current_iteration,
            device=device, extra=extra, **dict(counters or {}),
        ))

    # -------------------------------------------------------------- views
    @property
    def n_events(self) -> int:
        """Retained event count (0 in lean mode)."""
        return len(self.events)

    def busy_seconds(self, lane: str) -> float:
        stats = self.lane_stats.get(lane)
        return stats.busy_seconds if stats is not None else 0.0

    def idle_seconds(self, lane: str, horizon: float) -> float:
        """Idle time of ``lane`` within ``[0, horizon]`` (lean-mode fold)."""
        return max(horizon - self.busy_seconds(lane), 0.0)

    def spans(self) -> List[Span]:
        """The lane timeline as legacy spans (requires recorded mode)."""
        self._require_recorded("spans()")
        return fold_spans(self.events)

    def _require_recorded(self, what: str) -> None:
        if not self.record:
            raise EventLogError(
                f"{what} needs a recorded EventLog; this log runs in lean "
                "mode (construct the engine/GPU with record_events=True)"
            )


# ------------------------------------------------------------------- folds
def _apply(metrics: Metrics, event: SimEvent) -> None:
    """Fold one event into a counter bundle (the single accounting path)."""
    if event.bytes_h2d:
        metrics.bytes_h2d += event.bytes_h2d
    if event.bytes_d2h:
        metrics.bytes_d2h += event.bytes_d2h
    if event.h2d_transfers:
        metrics.h2d_transfers += event.h2d_transfers
    if event.d2h_transfers:
        metrics.d2h_transfers += event.d2h_transfers
    if event.bytes_direct:
        metrics.bytes_direct += event.bytes_direct
    if event.direct_accesses:
        metrics.direct_accesses += event.direct_accesses
    if event.kernel_launches:
        metrics.kernel_launches += event.kernel_launches
    if event.edges_processed:
        metrics.edges_processed += event.edges_processed
    if event.page_faults:
        metrics.page_faults += event.page_faults
    if event.fault_batches:
        metrics.fault_batches += event.fault_batches
    if event.pages_migrated:
        metrics.pages_migrated += event.pages_migrated
    if event.pages_evicted:
        metrics.pages_evicted += event.pages_evicted
    if event.transfer_faults:
        metrics.transfer_faults += event.transfer_faults
    if event.transfer_retries:
        metrics.transfer_retries += event.transfer_retries
    if event.kernel_aborts:
        metrics.kernel_aborts += event.kernel_aborts
    if event.retry_seconds:
        metrics.retry_seconds += event.retry_seconds
    if event.phase is not None and event.end > event.start:
        metrics.add_phase(event.phase, event.end - event.start)


def fold_metrics(events: Iterable[SimEvent]) -> Metrics:
    """Replay a list of events into a fresh counter bundle.

    Addition order matches emission order, so on a recorded log this
    reproduces ``log.metrics`` bit-identically — the property
    :func:`validate_log` asserts.
    """
    metrics = Metrics()
    for event in events:
        _apply(metrics, event)
    return metrics


def fold_spans(events: Iterable[SimEvent]) -> List[Span]:
    """The legacy span timeline: one span per lane-occupying event."""
    return [
        Span(lane=lane_key(e), label=e.label, start=e.start, end=e.end)
        for e in events
        if e.lane and e.end > e.start
    ]


def fold_phase_seconds(events: Iterable[SimEvent]) -> Dict[str, float]:
    """Per-phase accumulated seconds (Fig. 10's Tsr/Tfilling/... bars)."""
    return dict(fold_metrics(events).phase_seconds)


def fold_lane_stats(events: Iterable[SimEvent]) -> Dict[str, LaneStats]:
    """Per-lane busy/op aggregates, identical to the lean-mode fold."""
    stats: Dict[str, LaneStats] = {}
    for e in events:
        if not e.lane:
            continue
        key = lane_key(e)
        st = stats.get(key)
        if st is None:
            st = stats[key] = LaneStats()
        st.busy_seconds += e.end - e.start
        st.n_ops += 1
        if e.start < st.first_start:
            st.first_start = e.start
        if e.end > st.last_end:
            st.last_end = e.end
    return stats


def fold_device_metrics(events: Iterable[SimEvent]) -> Dict[Optional[int], Metrics]:
    """Per-device counter bundles from a shared (fabric) event log.

    Events carrying no ``device`` fold under the ``None`` key, so a
    single-device log comes back as ``{None: fold_metrics(events)}``.
    """
    out: Dict[Optional[int], Metrics] = {}
    for e in events:
        metrics = out.get(e.device)
        if metrics is None:
            metrics = out[e.device] = Metrics()
        _apply(metrics, e)
    return out


def fold_device_faults(
    events: Iterable[SimEvent],
) -> Dict[Optional[int], Dict[str, int]]:
    """Per-device fault/recovery counts from a recorded log.

    Counts every :data:`FAULT_KINDS` / :data:`DEVICE_FAULT_KINDS` event
    under its device (``None`` for device-less events), keyed
    ``fault_<kind>`` to match the ``fault_*`` naming of
    ``RunResult.extra``.  A fault-free log folds to ``{}``, so asserting
    byte-identical single-device behaviour stays a one-liner.
    """
    out: Dict[Optional[int], Dict[str, int]] = {}
    for e in events:
        if e.kind not in FAULT_KINDS and e.kind not in DEVICE_FAULT_KINDS:
            continue
        bucket = out.setdefault(e.device, {})
        key = "fault_" + e.kind.replace("-", "_")
        bucket[key] = bucket.get(key, 0) + 1
    return out


def idle_breakdown(
    log: "EventLog | Iterable[SimEvent]", lane: str, horizon: float
) -> IdleBreakdown:
    """Attribute a lane's idle time to lead / stalls / tail.

    The old ``horizon - busy_seconds`` subtraction could not tell a lane
    that simply *started late* (e.g. the GPU waiting for the one-time
    vertex-state upload) from one stalling mid-run (§2.2's sequential
    pipeline).  Works on a recorded :class:`EventLog` or a raw event list.
    """
    if isinstance(log, EventLog):
        log._require_recorded("idle_breakdown()")
        events = log.events
    else:
        events = list(log)
    ops = sorted(
        ((e.start, e.end) for e in events
         if e.lane and lane_key(e) == lane and e.end > e.start),
    )
    retry = sum(
        min(e.end, horizon) - min(e.start, horizon)
        for e in events
        if e.lane and lane_key(e) == lane and e.end > e.start
        and e.kind in FAULT_KINDS
    )
    if horizon < 0:
        raise ValueError(f"negative horizon {horizon}")
    if not ops:
        return IdleBreakdown(lead=horizon, stall=0.0, tail=0.0,
                             busy=0.0, horizon=horizon)
    lead = min(ops[0][0], horizon)
    busy = 0.0
    stall = 0.0
    prev_end = ops[0][0]
    for start, end in ops:
        if start > prev_end:
            stall += min(start, horizon) - min(prev_end, horizon)
        busy += min(end, horizon) - min(start, horizon)
        prev_end = max(prev_end, end)
    tail = max(horizon - prev_end, 0.0)
    return IdleBreakdown(lead=lead, stall=stall, tail=tail,
                         busy=busy, horizon=horizon, retry=retry)


# -------------------------------------------------------------- validation
def validate_log(
    log: EventLog,
    metrics: Optional[Metrics] = None,
    horizon: Optional[float] = None,
) -> Metrics:
    """Assert the event log's consistency invariants; returns the re-fold.

    Checks, raising :class:`EventLogError` on the first violation:

    * every event is well-formed (``start <= end``, non-negative times);
    * per lane, events are monotone and **never self-overlap** (a lane is
      one serially-ordered engine);
    * instant events occupy no lane;
    * re-folding the retained events reproduces the incrementally
      maintained ``log.metrics`` **bit-identically** (counters *and*
      ``phase_seconds``), and likewise the per-lane stats;
    * when ``metrics`` is given (e.g. a ``RunResult.metrics``), it equals
      the fold too;
    * when ``horizon`` is given, no event ends after it.
    """
    log._require_recorded("validate_log()")
    last_end: Dict[str, float] = {}
    for i, e in enumerate(log.events):
        where = f"event #{i} ({e.kind} {e.label!r})"
        if e.start < 0 or e.end < e.start:
            raise EventLogError(f"{where}: bad interval [{e.start}, {e.end}]")
        if horizon is not None and e.end > horizon:
            raise EventLogError(
                f"{where}: ends at {e.end} beyond horizon {horizon}"
            )
        if not e.lane:
            if e.end != e.start:
                raise EventLogError(f"{where}: lane-less event has width")
            continue
        key = lane_key(e)
        prev = last_end.get(key)
        if prev is not None and e.start < prev:
            raise EventLogError(
                f"{where}: lane {key!r} self-overlaps "
                f"(starts at {e.start} before previous end {prev})"
            )
        last_end[key] = e.end

    folded = fold_metrics(log.events)
    _require_metrics_equal(folded, log.metrics, "incrementally folded metrics")
    if metrics is not None and metrics is not log.metrics:
        _require_metrics_equal(folded, metrics, "reported metrics")

    refolded_stats = fold_lane_stats(log.events)
    if set(refolded_stats) != set(log.lane_stats):
        raise EventLogError(
            f"lane set mismatch: fold has {sorted(refolded_stats)}, "
            f"log has {sorted(log.lane_stats)}"
        )
    for lane, st in refolded_stats.items():
        have = log.lane_stats[lane]
        if (st.busy_seconds != have.busy_seconds or st.n_ops != have.n_ops
                or st.first_start != have.first_start
                or st.last_end != have.last_end):
            raise EventLogError(f"lane {lane!r}: folded stats diverge")
    return folded


def _require_metrics_equal(folded: Metrics, other: Metrics, what: str) -> None:
    for name in COUNTER_FIELDS:
        a, b = getattr(folded, name), getattr(other, name)
        if a != b:
            raise EventLogError(
                f"{what} diverge on {name}: fold={a} counters={b}"
            )
    if dict(folded.phase_seconds) != dict(other.phase_seconds):
        raise EventLogError(
            f"{what} diverge on phase_seconds: "
            f"fold={dict(folded.phase_seconds)} counters={dict(other.phase_seconds)}"
        )
