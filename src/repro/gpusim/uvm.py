"""Unified Virtual Memory model.

NVIDIA UVM (§2.1, §4.4) migrates pages to the GPU on demand and evicts with
an LRU policy when device memory oversubscribes.  The paper attributes UVM's
poor showing to three effects, all modelled here:

1. page-granularity migration (a page holds many inactive edges, so sparse
   access patterns amplify traffic) — the engine maps touched edges to pages
   and whole pages move;
2. LRU defeated by reuse distances longer than device memory — the resident
   set is a true LRU over pages;
3. page-fault handling overhead — faults are charged per fault *batch*
   (the driver services faults in groups), on top of migration bandwidth.

``advise_pin`` models ``cudaMemAdvise(SetPreferredLocation, device)``:
pinned pages are prefetched once and never evicted, the optimization the
paper applies to its UVM baseline (§4.1).

When wired to an :class:`~repro.gpusim.events.EventLog` (and the run's
clock), the pager *emits* fault/migration/eviction events instead of
leaving callers to poke counters: each :meth:`touch` produces one instant
``uvm-fault`` marker carrying the fault/migration/eviction deltas, and
``prefetch``/``advise_pin`` leave ``uvm-prefetch``/``uvm-pin`` markers.
The run metrics are folded from these like every other event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.gpusim.clock import VirtualClock
from repro.gpusim.events import EventLog

__all__ = ["UVMMemory", "UVMAccess"]


@dataclass(frozen=True)
class UVMAccess:
    """Outcome of touching a set of pages in one kernel."""

    n_touched: int
    n_faults: int
    n_evicted: int
    bytes_migrated: int


class UVMMemory:
    """LRU-managed page residency over a managed allocation.

    Parameters
    ----------
    managed_bytes:
        Size of the managed (oversubscribed) allocation — the edge array.
    capacity_bytes:
        Device memory available for its pages.
    page_size:
        Migration granularity (default 64 KB; UVM uses 64 KB–2 MB, §2).
    events / clock:
        When given, pager activity is emitted into the event log as
        instant markers stamped with the clock's current virtual time
        (fault/migration/eviction counters ride on the ``uvm-fault``
        marker).  Without them the pager is purely mechanical.
    """

    def __init__(self, managed_bytes: int, capacity_bytes: int,
                 page_size: int = 64 * 1024,
                 events: Optional[EventLog] = None,
                 clock: Optional[VirtualClock] = None):
        if managed_bytes < 0 or capacity_bytes < 0 or page_size <= 0:
            raise ValueError("invalid UVM geometry")
        self._events = events
        self._clock = clock
        self.page_size = int(page_size)
        self.n_pages = -(-int(managed_bytes) // self.page_size) if managed_bytes else 0
        self.capacity_pages = int(capacity_bytes) // self.page_size
        self._resident = np.zeros(self.n_pages, dtype=bool)
        self._pinned = np.zeros(self.n_pages, dtype=bool)
        # LRU rank: virtual tick of last touch; never-touched = -1.
        self._last_touch = np.full(self.n_pages, -1, dtype=np.int64)
        self._tick = 0
        self._n_resident = 0

    # ------------------------------------------------------------ properties
    @property
    def resident_pages(self) -> int:
        return self._n_resident

    @property
    def resident_bytes(self) -> int:
        return self._n_resident * self.page_size

    @property
    def pinned_pages(self) -> int:
        """Number of pages pinned via :meth:`advise_pin` (never evicted)."""
        return int(np.count_nonzero(self._pinned))

    def is_resident(self, pages: np.ndarray) -> np.ndarray:
        return self._resident[pages]

    def pages_of_byte_range(self, lo: int, hi: int) -> np.ndarray:
        """Page ids covering the byte range ``[lo, hi)``."""
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        return np.arange(lo // self.page_size, -(-hi // self.page_size), dtype=np.int64)

    def _emit(self, kind: str, label: str,
              counters: Optional[Mapping[str, int]] = None,
              extra: Tuple[Tuple[str, float], ...] = ()) -> None:
        """Leave an instant marker in the event log (no lane time)."""
        if self._events is None or not (counters or extra):
            return
        t = self._clock.now if self._clock is not None else 0.0
        self._events.marker(kind, label, t, counters=counters, extra=extra)

    # -------------------------------------------------------------- actions
    def advise_pin(self, pages: np.ndarray) -> int:
        """Pin pages to the device (cudaMemAdvise); returns bytes prefetched.

        Pinning more pages than capacity raises — the driver would fail the
        advice the same way.
        """
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        if pages.size and (pages.min() < 0 or pages.max() >= self.n_pages):
            raise IndexError("page id out of range")
        new = pages[~self._resident[pages]]
        pinned_after = int(np.count_nonzero(self._pinned)) + int(
            np.count_nonzero(~self._pinned[pages])
        )
        if pinned_after > self.capacity_pages:
            raise ValueError("cannot pin more pages than device capacity")
        if self._n_resident + new.size > self.capacity_pages:
            self._evict(self._n_resident + new.size - self.capacity_pages)
        self._resident[new] = True
        self._n_resident += new.size
        self._pinned[pages] = True
        self._tick += 1
        self._last_touch[pages] = self._tick
        self._emit("uvm-pin", "memadvise",
                   extra=(("pages_pinned", float(pages.size)),
                          ("bytes_prefetched", float(new.size * self.page_size))))
        return int(new.size) * self.page_size

    def touch(self, pages: np.ndarray) -> UVMAccess:
        """Access a set of pages from a kernel; fault in what is missing.

        ``pages`` may contain duplicates; residency/faulting is per unique
        page.  Returns fault/migration counts for the cost model.
        """
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        if pages.size == 0:
            return UVMAccess(0, 0, 0, 0)
        if pages.min() < 0 or pages.max() >= self.n_pages:
            raise IndexError("page id out of range")
        unpinned_touched = pages[~self._pinned[pages]]
        free_after_pins = self.capacity_pages - int(np.count_nonzero(self._pinned))
        if unpinned_touched.size > free_after_pins:
            # The scan's working set exceeds what LRU can hold: the classic
            # cyclic-scan-vs-LRU pathology (§2, Fig. 1) — every unpinned
            # page is evicted before its reuse, so every unpinned touched
            # page faults, every iteration.  Only the scan's tail survives.
            missing = unpinned_touched
            n_faults = int(missing.size)
            old_unpinned = self._resident & ~self._pinned
            n_evicted = int(np.count_nonzero(old_unpinned)) + n_faults - free_after_pins
            self._resident[old_unpinned] = False
            survivors = missing[missing.size - free_after_pins :]
            self._resident[survivors] = True
            self._n_resident = int(np.count_nonzero(self._resident))
            self._tick += 1
            self._last_touch[pages] = self._tick
            return self._record_access(UVMAccess(
                n_touched=int(pages.size),
                n_faults=n_faults,
                n_evicted=n_evicted,
                bytes_migrated=n_faults * self.page_size,
            ))
        missing = pages[~self._resident[pages]]
        n_faults = int(missing.size)
        n_evicted = 0
        if missing.size:
            overflow = self._n_resident + missing.size - self.capacity_pages
            if overflow > 0:
                n_evicted = self._evict(overflow)
            self._resident[missing] = True
            self._n_resident += missing.size
        self._tick += 1
        self._last_touch[pages] = self._tick
        return self._record_access(UVMAccess(
            n_touched=int(pages.size),
            n_faults=n_faults,
            n_evicted=n_evicted,
            bytes_migrated=n_faults * self.page_size,
        ))

    def _record_access(self, access: UVMAccess) -> UVMAccess:
        """Emit one ``uvm-fault`` marker carrying this access's deltas."""
        counters = {}
        if access.n_faults:
            counters["page_faults"] = access.n_faults
            counters["pages_migrated"] = access.n_faults
        if access.n_evicted:
            counters["pages_evicted"] = access.n_evicted
        self._emit("uvm-fault", "touch", counters=counters)
        return access

    def prefetch(self, pages: np.ndarray) -> int:
        """Migrate pages ahead of demand (the driver's sequential prefetcher).

        Unlike :meth:`touch`, prefetched pages incur no fault semantics —
        they ride along with ongoing migration.  Pages that would not fit
        (after evicting what LRU allows) are skipped rather than thrashed:
        the real prefetcher also backs off under pressure.  Returns bytes
        migrated.
        """
        pages = np.unique(np.asarray(pages, dtype=np.int64))
        if pages.size == 0:
            return 0
        if pages.min() < 0 or pages.max() >= self.n_pages:
            raise IndexError("page id out of range")
        missing = pages[~self._resident[pages]]
        if missing.size == 0:
            return 0
        overflow = self._n_resident + missing.size - self.capacity_pages
        if overflow > 0:
            evictable = int(np.count_nonzero(self._resident & ~self._pinned))
            k = min(overflow, evictable)
            if k > 0:
                self._evict(k)
            still_over = self._n_resident + missing.size - self.capacity_pages
            if still_over > 0:
                missing = missing[: missing.size - still_over]
        if missing.size == 0:
            return 0
        self._resident[missing] = True
        self._n_resident += missing.size
        self._tick += 1
        self._last_touch[missing] = self._tick
        self._emit("uvm-prefetch", "prefetch",
                   extra=(("pages", float(missing.size)),
                          ("bytes", float(missing.size * self.page_size))))
        return int(missing.size) * self.page_size

    def shrink_capacity(self, capacity_bytes: int) -> int:
        """Shrink the resident-pool capacity (chaos-mode capacity squeeze).

        Evicts LRU pages until the resident set fits the new capacity and
        records the evictions in the event log (one ``uvm-shrink`` marker
        carrying ``pages_evicted``).  Shrinking below the pinned set raises
        — pinned pages cannot be evicted, so the squeeze must be bounded by
        the caller.  Returns the number of pages evicted.
        """
        new_pages = int(capacity_bytes) // self.page_size
        if new_pages < 0:
            raise ValueError("capacity must be non-negative")
        pinned = self.pinned_pages
        if new_pages < pinned:
            raise ValueError(
                f"cannot shrink UVM pool to {new_pages} pages below "
                f"{pinned} pinned pages"
            )
        overflow = self._n_resident - new_pages
        evicted = self._evict(overflow) if overflow > 0 else 0
        self.capacity_pages = new_pages
        if evicted:
            self._emit("uvm-shrink", "squeeze",
                       counters={"pages_evicted": evicted},
                       extra=(("capacity_pages", float(new_pages)),))
        return evicted

    def _evict(self, k: int) -> int:
        """Evict the ``k`` least-recently-used unpinned resident pages."""
        candidates = self._resident & ~self._pinned
        idx = np.nonzero(candidates)[0]
        if idx.size < k:
            raise RuntimeError(
                f"UVM thrash deadlock: need to evict {k} pages but only "
                f"{idx.size} are unpinned"
            )
        order = np.argpartition(self._last_touch[idx], k - 1)[:k]
        victims = idx[order]
        self._resident[victims] = False
        self._n_resident -= victims.size
        return int(victims.size)
