"""Host-side cost model.

Subway-style engines (and Ascetic's On-demand Engine) have the CPU gather
the active edges into a compact pinned buffer before the PCIe copy (§2.2
step (b)).  That gather is a multi-threaded strided read of main memory;
its throughput — not PCIe — is often the bottleneck, which is why the paper's
Overlapping savings matter (§4.3 reports a CC/FK gather of 3.417 s, 40 % of
total time).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostGather"]


@dataclass(frozen=True)
class HostGather:
    """Analytic cost of the CPU filling a pinned staging buffer.

    Parameters
    ----------
    bandwidth:
        Effective bytes/second of the multi-threaded gather.  Ten Xeon
        Silver cores streaming CSR ranges sustain most of one memory
        channel's bandwidth (the paper's §4.3 CC/FK gather time of ~3.4 s
        over ~30 GB of gathered data pins this near 8 GB/s).
    setup:
        Fixed seconds per gather round (thread wake-up, request list walk).
    """

    bandwidth: float = 8.0e9
    setup: float = 20.0e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.setup < 0:
            raise ValueError("invalid host gather parameters")

    def gather_seconds(self, nbytes: int) -> float:
        """Seconds to assemble ``nbytes`` of edge data into the staging buffer."""
        if nbytes < 0:
            raise ValueError("negative gather size")
        if nbytes == 0:
            return 0.0
        return self.setup + nbytes / self.bandwidth
