"""Ascetic (ICPP '21) reproduction.

This package reproduces *"Ascetic: Enhancing Cross-Iterations Data Efficiency
in Out-of-Memory Graph Processing on GPUs"* (Tang et al., ICPP 2021) as a pure
Python library.  The GPU, its memory system, the PCIe link, and NVIDIA UVM are
modelled by the deterministic simulator in :mod:`repro.gpusim`; graph
algorithms are executed for real on scaled datasets and validated against
networkx/scipy.

Layout
------
``repro.graph``
    CSR graphs, generators (RMAT, web-graph), named scaled datasets,
    partitioning — the data substrate.
``repro.gpusim``
    The simulated GPU platform: virtual clock, device memory allocator, PCIe
    link, streams with compute/copy overlap, UVM demand paging, cost model.
``repro.algorithms``
    Push-based vertex-centric BFS / SSSP / CC / PageRank plus reference
    validation.
``repro.engines``
    The baselines the paper compares against: PT (partition-based), UVM,
    and Subway.
``repro.core``
    The paper's contribution: the Ascetic engine — Static Region,
    On-demand Region, overlap scheduler, adaptive ratio, chunk replacement.
``repro.analysis``
    Trace/statistics tooling that regenerates the paper's tables and figures.
``repro.harness``
    Experiment configuration, sweeps and table formatting used by
    ``benchmarks/``.
``repro.runner``
    Batch execution: :class:`~repro.runner.spec.RunSpec` cells fanned out
    across worker processes with a persistent result cache and per-cell
    fault isolation (the CLI's ``repro grid``).
``repro.serve``
    Deterministic multi-tenant serving: seeded request traces, bounded
    admission, graph-affinity scheduling over a warm engine pool,
    multi-source batching, SLO folds (the CLI's ``repro serve``).

Engines are looked up by name through :mod:`repro.engines.registry`;
third-party engines registered there show up in the harness, the CLI and
the grid runner automatically.
"""

from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, load_dataset
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.faults import FaultPlan, standard_plan
from repro.engines.base import (
    AccessPath,
    Engine,
    IterationRecord,
    RunResult,
    TransferPolicy,
)
from repro.engines.partition_based import PartitionEngine
from repro.engines.uvm_engine import UVMEngine
from repro.engines.subway import SubwayEngine
from repro.engines import registry
from repro.engines.registry import EngineInfo
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.hybrid import HybridEngine
from repro.runner import GridReport, ResultCache, RunSpec, run_grid
from repro import serve

__version__ = "1.1.0"

__all__ = [
    # data substrate
    "CSRGraph",
    "load_dataset",
    "DATASETS",
    # simulated platform
    "GPUSpec",
    "SimulatedGPU",
    # engine surface
    "Engine",
    "EngineInfo",
    "IterationRecord",
    "RunResult",
    "AccessPath",
    "TransferPolicy",
    "PartitionEngine",
    "UVMEngine",
    "SubwayEngine",
    "AsceticEngine",
    "AsceticConfig",
    "HybridEngine",
    "registry",
    # chaos mode
    "FaultPlan",
    "standard_plan",
    # batch execution
    "RunSpec",
    "ResultCache",
    "GridReport",
    "run_grid",
    # serving layer
    "serve",
    "__version__",
]
