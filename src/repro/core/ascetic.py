"""The Ascetic engine facade.

Wires the pieces of :mod:`repro.core` into the common
:class:`~repro.engines.base.Engine` interface: sizes the two regions with
Eq. 2, prefills the Static Region, and delegates each iteration to the
Manager's overlapped schedule.  All the paper's ablation switches are on
:class:`AsceticConfig` — Fig. 8 (overlap off), Fig. 10 (forced ratio sweep),
§5 (fill policy, replacement on/off).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import List, Optional

from repro.algorithms.base import ProgramState, VertexProgram
from repro.core.manager import IterationOutcome, run_iteration
from repro.core.ratio import region_bytes, static_ratio
from repro.core.replacement import HotnessTable
from repro.core.static_region import DEFAULT_CHUNK_BYTES, StaticRegion
from repro.engines.base import Engine, RegionPolicy, RunResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec, SimulatedGPU

__all__ = ["AsceticConfig", "AsceticEngine"]


@dataclass(frozen=True)
class AsceticConfig:
    """Tunables of the Ascetic engine (defaults follow the paper, §4.1).

    Parameters
    ----------
    k:
        Expected active-edge fraction per iteration, Eq. 2's K (paper
        default 10 %).
    chunk_bytes:
        Static Region chunk size (§3.4: 16 KB).
    fill:
        How the Static Region gets its content.  ``front`` (default) /
        ``rear`` / ``random`` prefill the region eagerly during setup with
        the §5 policies (the paper measures < 5 % runtime difference
        between them); the prefill transfer is charged to the clock and
        recorded separately in ``extra["static_prefill_bytes"]`` because
        the paper's transfer numbers (Table 5's BFS/GS at 0.02×, Fig. 7's
        note) report *processing* transfers without the prestore.
        ``lazy`` instead keeps on-demand data as it arrives until the
        region is full — no prefill traffic at all.
    fill_seed:
        RNG seed for ``fill="random"``.
    fragment_bytes:
        Replacement swaps contiguous *fragments* of chunks (Fig. 6), sized
        here in paper-scale bytes; chunk-scattered swaps would destroy
        vertex-level coverage.
    overlap:
        Overlap static compute with the on-demand chain (§3.2).  Disabling
        isolates Fig. 8's *Static savings*.
    replacement:
        Run the §3.4 chunk-replacement server.
    replacement_policy:
        ``"auto"`` picks per algorithm as §3.4 describes — cumulative
        counters for monotone programs (BFS/SSSP/CC read each edge region a
        bounded number of times), last-iteration counters for PR;
        or force ``"cumulative"`` / ``"last"``.
    stale_threshold:
        Counter threshold for staleness.
    adaptive:
        Apply the §3.3 Eq. 3 repartition check each iteration.
    forced_ratio:
        Override Eq. 2 with a fixed static-region share (Fig. 10 sweep).
    static_floor:
        Lower clip for Eq. 2 when ``K·D ≥ M``.
    """

    k: float = 0.10
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    fill: str = "front"
    fill_seed: int = 0
    fragment_bytes: int = 1024 * 1024
    overlap: bool = True
    replacement: bool = True
    replacement_policy: str = "auto"
    stale_threshold: int = 1
    adaptive: bool = True
    forced_ratio: Optional[float] = None
    static_floor: float = 0.0

    def with_(self, **kwargs) -> "AsceticConfig":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Plain JSON-able field mapping (cache keys, run specs)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AsceticConfig":
        """Rebuild a config written by :meth:`to_dict`.

        Unknown keys raise so a stale cache entry cannot silently drop a
        tunable that this version no longer has.
        """
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown AsceticConfig fields: {sorted(extra)}")
        return cls(**data)

    def policy_for(self, program: VertexProgram) -> str:
        if self.replacement_policy != "auto":
            return self.replacement_policy
        return "last" if program.name == "PR" else "cumulative"


class AsceticEngine(Engine):
    """The paper's engine: Static Region + On-demand Region + overlap.

    Sizing follows Eq. 2 (or ``config.forced_ratio``), the per-iteration
    schedule is :func:`repro.core.manager.run_iteration`, and every §4/§5
    ablation switch lives on :class:`AsceticConfig`.
    """

    name = "Ascetic"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        config: AsceticConfig | None = None,
        record_spans: bool = False,
        max_iterations: int | None = None,
        data_scale: float = 1.0,
        record_events: bool = False,
        fault_plan=None,
        seed: int = 0,
    ) -> None:
        super().__init__(spec, record_spans, max_iterations, data_scale,
                         record_events, fault_plan, seed)
        self.config = config or AsceticConfig()
        #: Region handed over from the previous request by
        #: :meth:`reset_for_request` (None = next run fills cold).
        self._warm_region: Optional[StaticRegion] = None

    def reset_for_request(self, keep_static: bool = True) -> None:
        """Arm the warm-start path for the next :meth:`run`.

        With ``keep_static`` (the default here — it is the engine's whole
        point), the Static Region object of the finished run is retained:
        the next ``run`` on the *same* graph object skips the fill phase
        entirely and only tops up chunks lost to capacity pressure,
        modelling a region that stayed device-resident between requests.
        The next run validates compatibility itself
        (:meth:`~repro.core.static_region.StaticRegion.compatible_with`)
        and silently falls back to a cold fill when it does not hold.
        """
        super().reset_for_request(keep_static)
        region = getattr(self, "_region", None)
        self._warm_region = region if (keep_static and region is not None) else None

    # ----------------------------------------------------------- resilience
    def _alloc_static_region(self, gpu: SimulatedGPU, want: int,
                             chunk_bytes: int):
        """Allocate the Static Region with graceful degradation.

        The ladder: an *injected* (transient) failure gets one plain retry
        at the same size; any further failure halves the request
        (chunk-aligned, additionally capped by the allocator's reported
        ``available`` for real capacity pressure) — reusing the Eq. 3
        shrink direction — until it either fits or reaches zero bytes,
        Subway-style pure on-demand streaming.  The zero-byte request
        always succeeds, so the ladder terminates and real exhaustion can
        only propagate for the empty-region case that cannot be satisfied
        at all.
        """
        from repro.gpusim.memory import GPUOutOfMemory

        nbytes = (want // chunk_bytes) * chunk_bytes
        retried = False
        while True:
            if 0 < nbytes < chunk_bytes:
                nbytes = 0
            try:
                return gpu.memory.alloc("static_region", nbytes)
            except GPUOutOfMemory as exc:
                if exc.injected and not retried:
                    retried = True
                    continue
                if nbytes == 0:
                    raise
                limit = nbytes // 2
                if not exc.injected and exc.available is not None:
                    limit = min(limit, exc.available)
                nbytes = (limit // chunk_bytes) * chunk_bytes

    def _release_memory(self, gpu: SimulatedGPU, graph: CSRGraph,
                        need: int) -> int:
        """Squeeze response: shrink static first (Eq. 3 direction), then
        the on-demand region down to a one-chunk floor."""
        freed = 0
        chunk = self._region.chunk_bytes
        if need > freed and self._static_alloc.nbytes > 0:
            give = min(self._static_alloc.nbytes, need - freed)
            give_chunks = -(-give // chunk)
            new_static = max(self._static_alloc.nbytes - give_chunks * chunk, 0)
            self._region.shrink_to(new_static)
            real = self._region.capacity_chunks * chunk
            if real < self._static_alloc.nbytes:
                freed += self._static_alloc.nbytes - real
                gpu.memory.resize(self._static_alloc, real)
                gpu.events.marker(
                    "static-shrink", "squeeze", gpu.clock.now,
                    extra=(("static_bytes", float(real)),))
        if freed < need and self._ondemand_alloc.nbytes > chunk:
            give = min(self._ondemand_alloc.nbytes - chunk, need - freed)
            gpu.memory.resize(self._ondemand_alloc,
                              self._ondemand_alloc.nbytes - give)
            freed += give
            gpu.events.marker(
                "ondemand-shrink", "squeeze", gpu.clock.now,
                extra=(("ondemand_bytes", float(self._ondemand_alloc.nbytes)),))
        return freed

    # ----------------------------------------------------------- lifecycle
    def _prepare(self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram) -> None:
        cfg = self.config
        self._alloc_retry(gpu, "vertex_state", self._vertex_state_bytes(graph))
        gpu.h2d(self._vertex_state_bytes(graph), label="vertex-state")
        available = gpu.memory.available
        d = graph.edge_array_bytes
        ratio = (
            cfg.forced_ratio
            if cfg.forced_ratio is not None
            else static_ratio(cfg.k, d, available, floor=cfg.static_floor)
        )
        # Chunk geometry scales with the data so the chunk *count* (and the
        # hotness table the replacement server manages) matches paper scale.
        chunk_bytes = self.scaled_bytes(cfg.chunk_bytes)
        self._fragment_chunks = max(
            self.scaled_bytes(cfg.fragment_bytes) // chunk_bytes, 1
        )
        static_bytes, _ = region_bytes(available, ratio, align=chunk_bytes)
        # Warm-start (serving): a region handed over by reset_for_request is
        # reused if its chunk table still describes this graph — the
        # cross-request analogue of the paper's cross-iteration reuse.  The
        # residency survives; capacity is reconciled to this run's Eq. 2
        # target (shrink_to drops overflow residency, growth keeps it).
        warm = (self._warm_region is not None
                and self._warm_region.compatible_with(graph, chunk_bytes))
        invalidated = 0
        if warm:
            self._region = self._warm_region
            invalidated += self._region.shrink_to(static_bytes)
        else:
            self._region = StaticRegion(
                graph,
                capacity_bytes=static_bytes,
                chunk_bytes=chunk_bytes,
                fill=cfg.fill,
                seed=cfg.fill_seed,
                fragment_chunks=self._fragment_chunks,
            )
        self._warm_region = None
        real_static = self._region.capacity_chunks * chunk_bytes
        self._static_alloc = self._alloc_static_region(gpu, real_static,
                                                       chunk_bytes)
        if self._static_alloc.nbytes < real_static:
            # Degraded: the ladder granted less than Eq. 2 asked for; shrink
            # the region to match (zero bytes = pure on-demand streaming)
            # and hand the difference to the on-demand region.  On a warm
            # start the dropped chunks are invalidated warmth.
            invalidated += self._region.shrink_to(self._static_alloc.nbytes)
            ratio = self._static_alloc.nbytes / available if available else 0.0
            gpu.events.marker(
                "static-degrade", "alloc-ladder", gpu.clock.now,
                extra=(("wanted", float(real_static)),
                       ("granted", float(self._static_alloc.nbytes))))
        self._ondemand_alloc = self._alloc_retry(
            gpu, "ondemand_region", available - self._static_alloc.nbytes)
        # The hotness table restarts per request: replacement policy depends
        # on the program, and stale counters from another algorithm's access
        # pattern would mislead the §3.4 server.
        self._hotness = HotnessTable(
            self._region.n_chunks,
            policy=cfg.policy_for(program),
            stale_threshold=cfg.stale_threshold,
        )
        #: Ascetic's policy through the shared API: chunks resident in the
        #: Static Region compute in place, the rest are CPU-gathered (§3.3).
        self.transfer_policy = RegionPolicy(self._region)
        self._warm_hit = warm
        self._warm_invalidated = invalidated
        if warm:
            # Fill-skip: resident chunks stayed on the device between
            # requests, so only chunks lost to capacity pressure (squeezes,
            # degraded allocation) are re-transferred.
            self._warm_bytes = self._region.resident_bytes
            refill_chunks = 0
            if cfg.fill != "lazy" and self._region.free_chunks > 0:
                refill_chunks = self._region.top_up()
            self._refill_bytes = refill_chunks * chunk_bytes
            self._prefill_bytes = self._refill_bytes
            if self._refill_bytes:
                gpu.cpu_gather(self._refill_bytes, label="refill-gather")
                with gpu.phase("Tprefill"):
                    gpu.h2d(self._refill_bytes, label="static-refill")
            gpu.events.marker(
                "warm-hit", "static-region", gpu.clock.now,
                extra=(("resident_chunks", float(self._region.resident_chunks)),
                       ("skipped_bytes", float(self._warm_bytes)),
                       ("refill_bytes", float(self._refill_bytes)),
                       ("invalidated_chunks", float(invalidated))))
        else:
            self._warm_bytes = 0
            self._refill_bytes = 0
            # Eager prefill of the Static Region (counted in Table 5,
            # excluded from Fig. 7 via the separate extra below).  Lazy fill
            # moves nothing here — the region fills from on-demand traffic.
            self._prefill_bytes = self._region.resident_bytes
            if self._prefill_bytes:
                gpu.cpu_gather(self._prefill_bytes, label="prefill-gather")
                with gpu.phase("Tprefill"):
                    gpu.h2d(self._prefill_bytes, label="static-prefill")
        self._ratio = ratio
        self._outcomes: List[IterationOutcome] = []

    def _iteration(
        self, gpu: SimulatedGPU, graph: CSRGraph, program: VertexProgram, state: ProgramState
    ) -> None:
        cfg = self.config
        self._outcomes.append(
            run_iteration(
                gpu,
                graph,
                program,
                state,
                region=self._region,
                hotness=self._hotness,
                static_alloc=self._static_alloc,
                ondemand_alloc=self._ondemand_alloc,
                overlap=cfg.overlap,
                replacement=cfg.replacement,
                adaptive=cfg.adaptive,
                lazy_fill=cfg.fill == "lazy",
                fragment_chunks=self._fragment_chunks,
                policy=self.transfer_policy,
                engine_label=self.name,
            )
        )

    def _report_extra(self, result: RunResult, gpu: SimulatedGPU, graph: CSRGraph) -> None:
        # Byte quantities are reported at paper scale, like the metrics.
        up = 1.0 / self.data_scale
        result.extra["static_ratio"] = float(self._ratio)
        result.extra["static_prefill_bytes"] = self._prefill_bytes * up
        # Warm-start accounting (the serving layer's hit/refill counters):
        # on a warm hit static_prefill_bytes above is only the refill.
        result.extra["warm_start"] = 1.0 if self._warm_hit else 0.0
        result.extra["static_warm_bytes"] = self._warm_bytes * up
        result.extra["static_refill_bytes"] = self._refill_bytes * up
        result.extra["warm_invalidated_chunks"] = float(self._warm_invalidated)
        result.extra["static_region_bytes"] = self._static_alloc.nbytes * up
        result.extra["ondemand_region_bytes"] = self._ondemand_alloc.nbytes * up
        result.extra["swap_bytes"] = sum(o.swap_bytes for o in self._outcomes) * up
        result.extra["repartitions"] = float(sum(o.repartitioned for o in self._outcomes))
        result.extra["static_edges"] = float(sum(o.static_edges for o in self._outcomes))
        result.extra["ondemand_edges"] = float(sum(o.ondemand_edges for o in self._outcomes))
