"""GPU memory partitioning — §3.3, Equations 1–3.

With ``K`` the fraction of edges active per iteration, ``D`` the dataset
size and ``M`` the GPU memory, the on-demand load per iteration is
``(D − M_static) · K`` on average; requiring it to fit beside the static
region (Eq. 1) and maximizing the static share gives Eq. 2:

    R = (1 − K · D / M) / (1 − K)

The paper defaults ``K = 10 %`` (Table 1: most algorithms are around or
below that, PR excepted) and clips R into [0, 1]: when the dataset fits
outright, everything is static; when ``K · D ≥ M``, no ratio satisfies
Eq. 1 and the on-demand data must be processed in rounds anyway, so R
falls back to a configurable floor rather than 0 (a tiny static region
still saves its own transfers — §4.3's BFS observation).

Adaptive re-partitioning (Eq. 3): after the data map is generated, if the
measured on-demand volume overflows its region while the static region is
under-utilized (``V_static / M_static < 0.5 · V / D``), the static region
shrinks by ``M_static · V / D``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["static_ratio", "region_bytes", "RepartitionDecision", "check_repartition"]


def static_ratio(k: float, dataset_bytes: int, memory_bytes: int,
                 floor: float = 0.0) -> float:
    """Eq. 2, clipped to ``[floor, 1]``.

    Parameters mirror the paper: ``k`` = expected active-edge fraction per
    iteration, ``dataset_bytes`` = D, ``memory_bytes`` = M (the memory
    available for the two regions).
    """
    if not 0.0 <= k < 1.0:
        raise ValueError("K must be in [0, 1)")
    if dataset_bytes < 0 or memory_bytes <= 0:
        raise ValueError("sizes must be positive")
    if not 0.0 <= floor <= 1.0:
        raise ValueError("floor must be in [0, 1]")
    if dataset_bytes <= memory_bytes:
        # Whole dataset fits: Eq. 1 is slack; keep it all static.
        return 1.0
    r = (1.0 - k * dataset_bytes / memory_bytes) / (1.0 - k)
    return min(max(r, floor), 1.0)


def region_bytes(memory_bytes: int, ratio: float, align: int = 1) -> tuple[int, int]:
    """Split ``memory_bytes`` into (static, on-demand), static aligned down.

    ``align`` is the chunk size — the static region holds whole chunks.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    if align <= 0:
        raise ValueError("align must be positive")
    static = int(memory_bytes * ratio) // align * align
    return static, memory_bytes - static


@dataclass(frozen=True)
class RepartitionDecision:
    """Outcome of the §3.3 adaptive check."""

    repartition: bool
    shrink_bytes: int = 0


def check_repartition(
    v_ondemand: int,
    ondemand_capacity: int,
    v_static: int,
    static_capacity: int,
    v_total: int,
    dataset_bytes: int,
) -> RepartitionDecision:
    """The §3.3 trigger, verbatim.

    Repartition iff the on-demand volume overflows its region *and*
    ``V_static / M_static < 0.5 · V / D`` (static under-utilized while
    overall demand is high); then shrink the static region by
    ``M_static · V / D`` (Eq. 3).
    """
    if min(v_ondemand, v_static, v_total) < 0 or dataset_bytes <= 0:
        raise ValueError("volumes must be non-negative, dataset positive")
    if static_capacity <= 0 or ondemand_capacity < 0:
        return RepartitionDecision(False)
    if v_ondemand <= ondemand_capacity:
        return RepartitionDecision(False)
    if v_static / static_capacity >= 0.5 * v_total / dataset_bytes:
        return RepartitionDecision(False)
    shrink = int(static_capacity * v_total / dataset_bytes)
    shrink = min(shrink, static_capacity)
    return RepartitionDecision(True, shrink_bytes=shrink)
