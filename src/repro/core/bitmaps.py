"""Bitmap algebra of Fig. 4.

Ascetic tracks three vertex bitmaps on the GPU:

* **ActiveBitmap** — vertices active this iteration (from the frontier);
* **StaticBitmap** — vertices whose *entire* edge list is resident in the
  Static Region;
* derived **StaticMap** = Active ∧ Static (process from the Static Region)
  and **OndemandMap** = Active ⊕ StaticMap (fetch through the On-demand
  Engine — for boolean masks with StaticMap ⊆ Active this XOR equals
  Active ∧ ¬Static, which is how the paper words it).

Masks are NumPy boolean arrays; these helpers exist so the identity is
stated (and property-tested) in exactly one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["and_map", "ondemand_map", "split_active"]


def and_map(active: np.ndarray, static: np.ndarray) -> np.ndarray:
    """StaticMap = ActiveBitmap AND StaticBitmap (Fig. 4 step ➊)."""
    if active.shape != static.shape:
        raise ValueError("bitmap shapes differ")
    return active & static


def ondemand_map(active: np.ndarray, static_map: np.ndarray) -> np.ndarray:
    """OndemandMap = ActiveBitmap XOR StaticMap (Fig. 4 step ➊).

    ``static_map`` must be a subset of ``active`` (it is, by construction);
    the XOR then leaves exactly the active vertices that missed the Static
    Region.
    """
    if active.shape != static_map.shape:
        raise ValueError("bitmap shapes differ")
    if np.any(static_map & ~active):
        raise ValueError("StaticMap must be a subset of ActiveBitmap")
    return active ^ static_map


def split_active(active: np.ndarray, static: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (StaticMap, OndemandMap) for one iteration."""
    smap = and_map(active, static)
    return smap, ondemand_map(active, smap)
