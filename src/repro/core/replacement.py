"""Data replacement in the Static Region (§3.4, Fig. 6).

Each 16 KB chunk carries an access counter, folded in once per iteration
(a chunk counts as *accessed* in an iteration if any active vertex's edge
range touched it).  Per §3.4 the staleness semantics are
algorithm-dependent:

* ``"cumulative"`` (BFS-like, monotone frontiers): a chunk accessed in more
  than ``stale_threshold`` past iterations has been consumed — monotone
  algorithms never return to it;
* ``"last"`` (PageRank-like, recurring frontiers): a chunk *not* accessed in
  the previous iteration is cold.

Swaps happen at **fragment** granularity — contiguous runs of chunks, the
"fragments" of Fig. 6.  Chunk-scattered swaps would be useless: the vertex-
level StaticBitmap requires a vertex's *whole* edge range resident, so
loading isolated hot chunks buys no coverage, while evicting isolated
chunks destroys the coverage of every vertex whose range they intersect.

The server only gets the PCIe time left while the GPU processes the
On-demand Region; the paper measures that window at ~28 % of iteration
time, enough for only ~2 % of the data (§5) — which is why replacement
barely moves the needle (the ablation benchmark reproduces that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HotnessTable", "SwapPlan"]


@dataclass(frozen=True)
class SwapPlan:
    """Chunks to evict from / load into the Static Region this iteration."""

    evict: np.ndarray
    load: np.ndarray

    @property
    def n_swaps(self) -> int:
        return int(self.load.size)


class HotnessTable:
    """Per-chunk access counters driving §3.4 replacement.

    ``cumulative[c]`` counts iterations in which chunk ``c`` was touched;
    ``last[c]`` is 1 iff it was touched in the most recent iteration.
    """

    def __init__(self, n_chunks: int, policy: str = "last", stale_threshold: int = 1):
        if policy not in ("last", "cumulative"):
            raise ValueError("policy must be 'last' or 'cumulative'")
        if stale_threshold < 0:
            raise ValueError("threshold must be non-negative")
        if policy == "last" and stale_threshold > 1:
            # ``last`` is binary (0/1), so any threshold above 1 marks every
            # chunk — including ones touched in the previous iteration —
            # stale, and the server churns the whole region pointlessly.
            raise ValueError(
                "stale_threshold must be 0 or 1 under the 'last' policy "
                "(last[c] is binary; a higher threshold marks every chunk stale)"
            )
        self.n_chunks = int(n_chunks)
        self.policy = policy
        self.stale_threshold = stale_threshold
        self.cumulative = np.zeros(self.n_chunks, dtype=np.int64)
        self.last = np.zeros(self.n_chunks, dtype=np.int64)

    def update(self, touch_counts: np.ndarray) -> None:
        """Fold one iteration's per-chunk access counts in (binarized)."""
        if touch_counts.shape != (self.n_chunks,):
            raise ValueError("touch_counts shape mismatch")
        touched = (touch_counts > 0).astype(np.int64)
        self.cumulative += touched
        self.last = touched

    def staleness(self) -> np.ndarray:
        """Boolean: chunks considered stale under the configured policy."""
        if self.policy == "cumulative":
            # Consumed: touched in more than `threshold` iterations ever.
            return self.cumulative > self.stale_threshold
        # Cold: not touched in the last iteration (threshold-adjusted).
        return self.last < self.stale_threshold

    def hotness(self) -> np.ndarray:
        """Ranking score for swap-in candidates (hotter = better)."""
        return self.last if self.policy == "last" else -self.cumulative

    def plan_swaps(
        self, resident: np.ndarray, budget_chunks: int, fragment_chunks: int = 64
    ) -> SwapPlan:
        """Pick a balanced fragment-aligned swap of ≤ ``budget_chunks`` chunks.

        A fragment qualifies for eviction when it is fully resident and
        majority-stale, for loading when fully absent and majority-fresh.
        The plan pairs the coldest eviction fragments with the hottest load
        fragments, one for one, so the region stays exactly as full.
        """
        empty = np.empty(0, dtype=np.int64)
        if budget_chunks <= 0 or self.n_chunks == 0 or fragment_chunks <= 0:
            return SwapPlan(empty, empty)
        if resident.shape != (self.n_chunks,):
            raise ValueError("resident mask shape mismatch")
        f = int(fragment_chunks)
        n_frags = -(-self.n_chunks // f)
        pad = n_frags * f - self.n_chunks

        def frag_sum(x: np.ndarray) -> np.ndarray:
            return np.pad(x, (0, pad)).reshape(n_frags, f).sum(axis=1)

        res_cnt = frag_sum(resident.astype(np.int64))
        stale_cnt = frag_sum(self.staleness().astype(np.int64))
        hot = frag_sum(self.hotness())
        sizes = np.full(n_frags, f, dtype=np.int64)
        if pad:
            sizes[-1] = f - pad
        evict_ok = (res_cnt == sizes) & (stale_cnt * 2 > sizes)
        load_ok = (res_cnt == 0) & (stale_cnt * 2 <= sizes)
        evict_frags = np.nonzero(evict_ok)[0]
        load_frags = np.nonzero(load_ok)[0]
        if evict_frags.size == 0 or load_frags.size == 0:
            return SwapPlan(empty, empty)
        k = min(budget_chunks // f, evict_frags.size, load_frags.size)
        if k <= 0:
            return SwapPlan(empty, empty)
        evict_frags = evict_frags[np.argsort(hot[evict_frags], kind="stable")[:k]]
        load_frags = load_frags[np.argsort(-hot[load_frags], kind="stable")[:k]]
        evict = _expand_fragments(evict_frags, f, self.n_chunks)
        load = _expand_fragments(load_frags, f, self.n_chunks)
        # Keep the plan balanced chunk-for-chunk (tail fragment is shorter).
        k_chunks = min(evict.size, load.size)
        return SwapPlan(evict=evict[:k_chunks], load=load[:k_chunks])


def _expand_fragments(frags: np.ndarray, f: int, n_chunks: int) -> np.ndarray:
    """Chunk ids of the given fragments, clipped to the chunk space."""
    ids = (frags[:, None] * f + np.arange(f)[None, :]).ravel()
    return ids[ids < n_chunks]
