"""Data replacement in the Static Region (§3.4, Fig. 6).

Each 16 KB chunk carries an access counter, folded in once per iteration
(a chunk counts as *accessed* in an iteration if any active vertex's edge
range touched it).  Per §3.4 the staleness semantics are
algorithm-dependent:

* ``"cumulative"`` (BFS-like, monotone frontiers): a chunk accessed in more
  than ``stale_threshold`` past iterations has been consumed — monotone
  algorithms never return to it;
* ``"last"`` (PageRank-like, recurring frontiers): a chunk *not* accessed in
  the previous iteration is cold.

Swaps happen at **fragment** granularity — contiguous runs of chunks, the
"fragments" of Fig. 6.  Chunk-scattered swaps would be useless: the vertex-
level StaticBitmap requires a vertex's *whole* edge range resident, so
loading isolated hot chunks buys no coverage, while evicting isolated
chunks destroys the coverage of every vertex whose range they intersect.

The server only gets the PCIe time left while the GPU processes the
On-demand Region; the paper measures that window at ~28 % of iteration
time, enough for only ~2 % of the data (§5) — which is why replacement
barely moves the needle (the ablation benchmark reproduces that).

Representation note: the counters can be fed either densely
(:meth:`HotnessTable.update`, one array of per-chunk counts) or as merged
touched-chunk intervals (:meth:`HotnessTable.update_runs`, what the
Manager's lean path produces).  Interval updates are queued and only
*materialized* into the dense ``cumulative`` / ``last`` arrays when
something actually reads them — :meth:`plan_swaps` usually answers from
fragment-level aggregates and early-exits long before that, so a run whose
region never qualifies for a swap touches no chunk-length array at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["HotnessTable", "SwapPlan"]


@dataclass(frozen=True)
class SwapPlan:
    """Chunks to evict from / load into the Static Region this iteration."""

    evict: np.ndarray
    load: np.ndarray

    @property
    def n_swaps(self) -> int:
        return int(self.load.size)


class HotnessTable:
    """Per-chunk access counters driving §3.4 replacement.

    ``cumulative[c]`` counts iterations in which chunk ``c`` was touched;
    ``last[c]`` is 1 iff it was touched in the most recent iteration.
    Both are materialized lazily from any queued interval updates (see the
    module docstring); read them through the properties.
    """

    def __init__(self, n_chunks: int, policy: str = "last", stale_threshold: int = 1):
        if policy not in ("last", "cumulative"):
            raise ValueError("policy must be 'last' or 'cumulative'")
        if stale_threshold < 0:
            raise ValueError("threshold must be non-negative")
        if policy == "last" and stale_threshold > 1:
            # ``last`` is binary (0/1), so any threshold above 1 marks every
            # chunk — including ones touched in the previous iteration —
            # stale, and the server churns the whole region pointlessly.
            raise ValueError(
                "stale_threshold must be 0 or 1 under the 'last' policy "
                "(last[c] is binary; a higher threshold marks every chunk stale)"
            )
        self.n_chunks = int(n_chunks)
        self.policy = policy
        self.stale_threshold = stale_threshold
        self._cumulative = np.zeros(self.n_chunks, dtype=np.int64)
        self._last = np.zeros(self.n_chunks, dtype=np.int64)
        #: Interval updates (one per iteration, oldest first) not yet folded
        #: into the dense arrays.
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        #: Fragment geometry cache: f -> (boundaries, sizes).
        self._frag_geom: dict = {}

    # --------------------------------------------------------------- state
    @property
    def cumulative(self) -> np.ndarray:
        self._materialize()
        return self._cumulative

    @property
    def last(self) -> np.ndarray:
        self._materialize()
        return self._last

    def _materialize(self) -> None:
        """Fold queued interval updates into the dense arrays."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        # ``cumulative`` gains each update's 0/1 touched indicator.  Within
        # one update the merged runs are disjoint, so stacking all updates'
        # ±1 boundary marks and prefix-summing once adds exactly the sum of
        # the indicators.
        diff = np.zeros(self.n_chunks + 1, dtype=np.int64)
        for starts, ends in pending:
            np.add.at(diff, starts, 1)
            np.add.at(diff, ends, -1)
        self._cumulative += np.cumsum(diff[:-1])
        # ``last`` reflects only the newest update.
        last_s, last_e = pending[-1]
        last = np.zeros(self.n_chunks, dtype=np.int64)
        for s, e in zip(last_s.tolist(), last_e.tolist()):
            last[s:e] = 1
        self._last = last

    # ------------------------------------------------------------- updates
    def update(self, touch_counts: np.ndarray) -> None:
        """Fold one iteration's per-chunk access counts in (binarized)."""
        if touch_counts.shape != (self.n_chunks,):
            raise ValueError("touch_counts shape mismatch")
        self._materialize()
        touched = touch_counts > 0
        self._cumulative += touched
        self._last = touched.astype(np.int64)

    def update_runs(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Fold one iteration in from merged touched-chunk intervals.

        ``(starts, ends)`` are half-open, disjoint, increasing — exactly
        what :meth:`StaticRegion.touched_chunk_runs` returns.  Equivalent to
        :meth:`update` on the dense indicator of the union of the
        intervals, but queued: no chunk-length array is written until a
        reader forces materialization.
        """
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if starts.shape != ends.shape:
            raise ValueError("starts/ends shape mismatch")
        if starts.size:
            if starts[0] < 0 or ends[-1] > self.n_chunks:
                raise ValueError("interval outside the chunk space")
            if np.any(ends <= starts) or np.any(starts[1:] <= ends[:-1]):
                raise ValueError("intervals must be disjoint and increasing")
        self._pending.append((starts, ends))

    # -------------------------------------------------------------- scores
    def staleness(self) -> np.ndarray:
        """Boolean: chunks considered stale under the configured policy."""
        if self.policy == "cumulative":
            # Consumed: touched in more than `threshold` iterations ever.
            return self.cumulative > self.stale_threshold
        # Cold: not touched in the last iteration (threshold-adjusted).
        return self.last < self.stale_threshold

    def hotness(self) -> np.ndarray:
        """Ranking score for swap-in candidates (hotter = better)."""
        return self.last if self.policy == "last" else -self.cumulative

    # ---------------------------------------------------------------- plan
    def _fragment_geometry(self, f: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(boundaries, sizes)`` of the fragment partition for reduceat."""
        geom = self._frag_geom.get(f)
        if geom is None:
            boundaries = np.arange(0, self.n_chunks, f, dtype=np.int64)
            sizes = np.full(boundaries.size, f, dtype=np.int64)
            tail = self.n_chunks - int(boundaries[-1]) if boundaries.size else 0
            if boundaries.size and tail != f:
                sizes[-1] = tail
            geom = self._frag_geom[f] = (boundaries, sizes)
        return geom

    def fragment_resident_counts(self, resident: np.ndarray, f: int) -> np.ndarray:
        """Per-fragment resident-chunk counts (callers may cache this)."""
        boundaries, _ = self._fragment_geometry(f)
        return np.add.reduceat(resident, boundaries, dtype=np.int64)

    def plan_swaps(
        self, resident: np.ndarray, budget_chunks: int, fragment_chunks: int = 64,
        resident_counts: Optional[np.ndarray] = None,
    ) -> SwapPlan:
        """Pick a balanced fragment-aligned swap of ≤ ``budget_chunks`` chunks.

        A fragment qualifies for eviction when it is fully resident and
        majority-stale, for loading when fully absent and majority-fresh.
        The plan pairs the coldest eviction fragments with the hottest load
        fragments, one for one, so the region stays exactly as full.

        ``resident_counts`` optionally passes precomputed per-fragment
        resident counts (see :meth:`fragment_resident_counts`) — residency
        changes far more rarely than the per-iteration planning cadence, so
        the Manager caches them on the region.  Staleness aggregates are
        only computed once both a fully-resident and a fully-absent
        candidate fragment exist; a region pinned fully resident (or fully
        absent) plans in O(fragments) with no chunk-length pass.
        """
        empty = np.empty(0, dtype=np.int64)
        if budget_chunks <= 0 or self.n_chunks == 0 or fragment_chunks <= 0:
            return SwapPlan(empty, empty)
        if resident.shape != (self.n_chunks,):
            raise ValueError("resident mask shape mismatch")
        f = int(fragment_chunks)
        boundaries, sizes = self._fragment_geometry(f)
        if resident_counts is None:
            resident_counts = self.fragment_resident_counts(resident, f)
        full = resident_counts == sizes
        absent = resident_counts == 0
        if not full.any() or not absent.any():
            return SwapPlan(empty, empty)
        stale_cnt = np.add.reduceat(self.staleness(), boundaries,
                                    dtype=np.int64)
        evict_ok = full & (stale_cnt * 2 > sizes)
        load_ok = absent & (stale_cnt * 2 <= sizes)
        evict_frags = np.nonzero(evict_ok)[0]
        load_frags = np.nonzero(load_ok)[0]
        if evict_frags.size == 0 or load_frags.size == 0:
            return SwapPlan(empty, empty)
        k = min(budget_chunks // f, evict_frags.size, load_frags.size)
        if k <= 0:
            return SwapPlan(empty, empty)
        hot = np.add.reduceat(self.hotness(), boundaries, dtype=np.int64)
        evict_frags = evict_frags[np.argsort(hot[evict_frags], kind="stable")[:k]]
        load_frags = load_frags[np.argsort(-hot[load_frags], kind="stable")[:k]]
        evict = _expand_fragments(evict_frags, f, self.n_chunks)
        load = _expand_fragments(load_frags, f, self.n_chunks)
        # Keep the plan balanced chunk-for-chunk (tail fragment is shorter).
        k_chunks = min(evict.size, load.size)
        return SwapPlan(evict=evict[:k_chunks], load=load[:k_chunks])


def _expand_fragments(frags: np.ndarray, f: int, n_chunks: int) -> np.ndarray:
    """Chunk ids of the given fragments, clipped to the chunk space."""
    ids = (frags[:, None] * f + np.arange(f)[None, :]).ravel()
    return ids[ids < n_chunks]
