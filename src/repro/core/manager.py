"""The GPU-side Manager: one overlapped Ascetic iteration (§3.1–§3.4).

Schedule per iteration (Fig. 4 numbering, Fig. 5 timeline):

1. **GenDataMap** — a GPU scan produces StaticMap and OndemandMap from
   ActiveBitmap ∧/⊕ StaticBitmap.
2. **Adaptive repartition** (§3.3) — if the measured on-demand volume
   overflows its region while the static region is cold, shrink the static
   region by Eq. 3, return the chunks' memory to the on-demand region, and
   regenerate the map.
3. **Static computing** — the GPU processes StaticNodes' edges straight out
   of the Static Region (phase ``Tsr``); *simultaneously* the On-demand
   Engine gathers the OndemandNodes' edges on the CPU (``Tfilling``) and
   streams them over PCIe (``Ttransfer``).
4. **On-demand computing** — the GPU lane picks up each transferred round
   (``Tondemand``); rounds pipeline (round r+1 gathers while round r
   computes).
5. **Static update** (§3.4) — while the GPU chews on the on-demand data the
   copy engine is idle, so the replacement server swaps stale chunks into
   the Static Region, bounded by that idle window (``Tswap``).

``overlap=False`` degrades step 3/4 to the strictly sequential baseline
schedule (Fig. 5 top) — that switch is exactly how the paper isolates
*Static savings* from *Overlapping savings* in Fig. 8.

Execution has two representations with identical accounting:

* **Recorded mode** (``record_events=True``) keeps the original op-by-op
  path so retained traces, span logs, and ``validate_log`` stay
  byte-identical.
* **Lean mode** answers the per-iteration chunk queries from merged
  interval runs (:meth:`StaticRegion.touched_chunk_runs`) instead of dense
  chunk-length arrays, queues the hotness update as intervals, and folds
  the round loop through :meth:`EventLog.emit_batch` — every time stamp,
  counter, and phase second comes out bit-identical to the recorded
  schedule, which the lean≡recorded property tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import AccessPath, RegionPolicy, emit_access_plan
from repro.core.bitmaps import split_active
from repro.core.ondemand import plan_ondemand, round_shares
from repro.core.ratio import check_repartition
from repro.core.replacement import HotnessTable
from repro.core.static_region import StaticRegion
from repro.graph.csr import CSRGraph
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.memory import Allocation

__all__ = ["IterationOutcome", "run_iteration"]


@dataclass
class IterationOutcome:
    """Accounting detail of one Ascetic iteration (consumed by analysis)."""

    static_edges: int = 0
    ondemand_edges: int = 0
    ondemand_bytes: int = 0
    swap_bytes: int = 0
    repartitioned: bool = False
    n_rounds: int = 0
    promoted_chunks: int = 0


def run_iteration(
    gpu: SimulatedGPU,
    graph: CSRGraph,
    program: VertexProgram,
    state: ProgramState,
    region: StaticRegion,
    hotness: HotnessTable,
    static_alloc: Allocation,
    ondemand_alloc: Allocation,
    overlap: bool = True,
    replacement: bool = True,
    adaptive: bool = True,
    lazy_fill: bool = False,
    fragment_chunks: int = 64,
    policy=None,
    engine_label: str = "Ascetic",
) -> IterationOutcome:
    """Schedule one iteration; returns its accounting."""
    out = IterationOutcome()
    n = graph.n_vertices
    bpe = graph.bytes_per_edge
    # The interval fast path replaces dense chunk-length sweeps when nothing
    # retains per-chunk output: the log folds (no per-event retention) and
    # the policy is Ascetic's own region-residency policy, whose summary
    # marker is reconstructible from interval counts alone.  Any other
    # policy may read the dense touch counts, so it keeps them.
    lean = not gpu.events.record and (
        policy is None
        or (type(policy) is RegionPolicy and policy.region is region)
    )

    # ➊ Generate the data maps (two bitmap passes + compaction scan).
    with gpu.phase("Tmap"):
        t_map = gpu.vertex_scan(n, passes=2, label="gen-datamap")
    static_bitmap = region.vertex_static_bitmap()
    smap, odmap = split_active(state.active, static_bitmap)
    plan = plan_ondemand(graph, odmap, _stream_cap(ondemand_alloc, region))
    # StaticMap and OndemandMap partition the active mask, so the static
    # edge count is the (memoized, already-paid-for) total minus the plan's
    # on-demand count — no second walk over the mask.
    total_edges = state.active_edges(graph)
    static_edges = total_edges - plan.n_edges

    # ➋ Adaptive repartitioning (§3.3, Eq. 3).  During a lazy warm-up the
    # region is empty by construction, which would read as "under-utilized"
    # and shrink it to nothing — the check only makes sense once filled.
    if adaptive and not (lazy_fill and region.free_chunks > 0):
        v_static = static_edges * bpe
        v_total = v_static + plan.edge_bytes
        decision = check_repartition(
            v_ondemand=plan.total_bytes,
            ondemand_capacity=ondemand_alloc.nbytes,
            v_static=v_static,
            static_capacity=max(static_alloc.nbytes, 1),
            v_total=v_total,
            dataset_bytes=max(graph.edge_array_bytes, 1),
        )
        if decision.repartition and decision.shrink_bytes > 0:
            new_static = max(static_alloc.nbytes - decision.shrink_bytes, 0)
            region.shrink_to(new_static)
            freed = static_alloc.nbytes - region.capacity_chunks * region.chunk_bytes
            gpu.memory.resize(static_alloc, region.capacity_chunks * region.chunk_bytes)
            gpu.memory.resize(ondemand_alloc, ondemand_alloc.nbytes + freed)
            out.repartitioned = True
            # Bitmaps changed: regenerate the data map (§3.3).
            with gpu.phase("Tmap"):
                t_map = gpu.vertex_scan(n, passes=2, label="regen-datamap")
            static_bitmap = region.vertex_static_bitmap()
            smap, odmap = split_active(state.active, static_bitmap)
            plan = plan_ondemand(graph, odmap, _stream_cap(ondemand_alloc, region))
            static_edges = total_edges - plan.n_edges

    out.static_edges = static_edges
    out.ondemand_edges = plan.n_edges
    out.ondemand_bytes = plan.total_bytes
    out.n_rounds = plan.n_rounds

    # Per-chunk decisions through the shared TransferPolicy API: the
    # movement scheduled below follows them.  The touch information is
    # computed once here and reused for the hotness update in step ➍½ (the
    # active mask does not change mid-iteration, so the values are
    # identical).  The lean path carries it as merged chunk intervals; the
    # dense counts exist only where a consumer can see them.
    if lean:
        touch = None
        run_s, run_e = region.touched_chunk_runs(state.active)
        if policy is not None:
            n_touched = int((run_e - run_s).sum())
            if n_touched:
                # RegionPolicy's plan over the touched ids is RESIDENT for
                # resident chunks and the fallback path for the rest, so
                # the summary marker needs only the two counts — same
                # event, same extra tuple as emit_access_plan's bincount.
                n_res = region.resident_count_in_runs(run_s, run_e)
                counts = [0, 0, 0, 0]
                counts[int(AccessPath.RESIDENT)] = n_res
                counts[int(policy.fallback)] += n_touched - n_res
                summary = tuple(
                    (path.name.lower(), float(counts[path]))
                    for path in AccessPath if counts[path]
                )
                gpu.events.marker("access-path", f"{engine_label}:chunk",
                                  gpu.clock.now, extra=summary)
    else:
        touch = region.chunk_touch_counts(state.active)
        if policy is not None:
            touched_ids = np.nonzero(touch)[0]
            if touched_ids.size:
                paths = policy.plan(state.iteration, touched_ids,
                                    touch[touched_ids], hotness)
                emit_access_plan(gpu, engine_label, "chunk", touched_ids, paths)

    # ➌ Static computing — overlapped (or not) with the on-demand chain.
    if overlap:
        with gpu.phase("Tsr"):
            gpu.edge_kernel(
                static_edges, label="static-compute", atomics=program.atomics,
                after=t_map,
            )
        # The request/offset list download is PCIe traffic like the round
        # transfers it gates — unattributed it would vanish from the Fig. 8
        # breakdown (the null-phase regression test pins this).
        with gpu.phase("Ttransfer"):
            prev = gpu.d2h(plan.request_bytes, label="od-requests",
                           after=t_map)
        if plan.n_rounds > ROUND_LOOP_LIMIT:
            _stream_aggregate(gpu, plan, program, after=prev, sequential=False)
        elif (plan.n_rounds and not gpu.events.record and gpu.faults is None
              and not gpu.clock.record):
            _stream_rounds_batched(gpu, plan, program, after=prev)
        else:
            for rnd in plan.iter_rounds():
                with gpu.phase("Tfilling"):
                    t_gather = gpu.cpu_gather(rnd.nbytes, label="od-gather",
                                              after=prev)
                with gpu.phase("Ttransfer"):
                    t_xfer = gpu.h2d(rnd.nbytes, label="od-transfer",
                                     after=t_gather)
                with gpu.phase("Tondemand"):
                    gpu.edge_kernel(rnd.n_edges, label="od-compute",
                                    atomics=program.atomics, after=t_xfer)
                prev = t_gather  # next gather may start while this round flies
    else:
        with gpu.phase("Tsr"):
            t_static = gpu.edge_kernel(static_edges, label="static-compute",
                                       atomics=program.atomics, after=t_map)
        gpu.sync(t_static)
        with gpu.phase("Ttransfer"):
            t_req = gpu.d2h(plan.request_bytes, label="od-requests")
        gpu.sync(t_req)
        if plan.n_rounds > ROUND_LOOP_LIMIT:
            _stream_aggregate(gpu, plan, program, after=gpu.clock.now, sequential=True)
        else:
            for rnd in plan.iter_rounds():
                with gpu.phase("Tfilling"):
                    t = gpu.cpu_gather(rnd.nbytes, label="od-gather")
                gpu.sync(t)
                with gpu.phase("Ttransfer"):
                    t = gpu.h2d(rnd.nbytes, label="od-transfer")
                gpu.sync(t)
                with gpu.phase("Tondemand"):
                    t = gpu.edge_kernel(rnd.n_edges, label="od-compute",
                                        atomics=program.atomics)
                gpu.sync(t)

    # ➍½ Lazy fill: on-demand data that just landed on the device is kept
    # in the Static Region while there is room (a device-side copy, free of
    # PCIe traffic).  Once the region is full, §3.4 replacement takes over.
    if lean:
        hotness.update_runs(run_s, run_e)
    else:
        hotness.update(touch)
    if lazy_fill and region.free_chunks > 0:
        promoted = region.promote_vertices(odmap)
        out.promoted_chunks = promoted
    # ➎ Static update during the on-demand compute window (§3.4).
    elif replacement:
        budget_chunks = _swap_budget_chunks(gpu, region)
        swap = hotness.plan_swaps(
            region.resident, budget_chunks, fragment_chunks,
            resident_counts=region.fragment_resident_counts(fragment_chunks),
        )
        if swap.n_swaps:
            moved = region.swap(swap.evict, swap.load)
            out.swap_bytes = moved
            # Both halves of the replacement server's work belong to Tswap
            # (§3.4): the CPU staging of the incoming chunks and the H2D
            # copy it gates.  The copy must wait for the gather — without
            # the dependency the copy engine would start the swap
            # mid-gather, understating Tswap and overstating the overlap
            # the Fig. 8 breakdown isolates.
            with gpu.phase("Tswap"):
                t_gather = gpu.cpu_gather(moved, label="swap-gather")
                gpu.h2d(moved, label="static-swap", after=t_gather)

    gpu.sync()
    return out


def _swap_budget_chunks(gpu: SimulatedGPU, region: StaticRegion) -> int:
    """Chunks whose swap H2D provably fits the §3.4 idle window.

    The window is the copy engine's idle time under the GPU's current
    horizon.  Budgeting it at raw link bandwidth ignores what the
    ``static-swap`` H2D is actually charged — one per-transfer latency plus
    the *burst-rounded* payload — so a raw-bandwidth budget can plan swaps
    that overrun the window they were supposed to hide inside.  Instead
    divide by the full charged cost of one chunk: ``k`` chunks in one
    transfer then cost ``latency + payload_bytes(k·chunk)/bw ≤
    k · transfer_seconds(chunk)``, so any budgeted swap completes inside
    the window (the property the budget-window regression test pins).
    """
    window = max(gpu.gpu.busy_until - gpu.copy.busy_until, 0.0)
    if window <= 0.0:
        return 0
    # The window buys paper-scale seconds; chunks are scaled bytes, so
    # price the chunk at its *charged* size.
    charged_chunk = int(round(region.chunk_bytes * gpu.charge_scale))
    per_chunk = gpu.spec.pcie.transfer_seconds(charged_chunk)
    if per_chunk <= 0.0:
        return 0
    return int(window / per_chunk)


#: Above this round count a per-round Python loop is pointless; the chain is
#: charged in aggregate (identical totals, pipeline fill approximated by one
#: round's offset per stage).
ROUND_LOOP_LIMIT = 64


def _stream_rounds_batched(gpu: SimulatedGPU, plan, program: VertexProgram,
                           after: float) -> None:
    """The overlapped round loop, scheduled in arrays (lean mode only).

    Bit-identical to the op-by-op loop: the closed-form round split
    (:func:`round_shares`) reproduces ``iter_rounds`` round for round, the
    max/add recurrence below applies the same float operations in the same
    order as the per-op ``Lane.submit`` chain, and the three
    :meth:`EventLog.emit_batch` folds add the same durations per phase and
    lane in the same order.  Only callable when nothing observes per-op
    granularity: lean event log, no span recording, no fault injection.
    """
    spec = gpu.spec
    n = plan.n_rounds
    hi_b, nb_hi, lo_b, _ = round_shares(plan.total_bytes, n)
    hi_e, ne_hi, lo_e, _ = round_shares(plan.n_edges, n)

    # At most two distinct volumes per stage → compute the charged costs
    # once per class and broadcast.
    cb_hi, cb_lo = gpu._scale(hi_b), gpu._scale(lo_b)
    pay_hi, pay_lo = spec.pcie.payload_bytes(cb_hi), spec.pcie.payload_bytes(cb_lo)
    dg_hi, dg_lo = spec.gather.gather_seconds(cb_hi), spec.gather.gather_seconds(cb_lo)
    dx_hi = (spec.pcie.latency if pay_hi else 0.0) + pay_hi / spec.pcie.bandwidth
    dx_lo = (spec.pcie.latency if pay_lo else 0.0) + pay_lo / spec.pcie.bandwidth
    ce_hi, ce_lo = gpu._scale(hi_e), gpu._scale(lo_e)
    dk_hi = spec.kernel.edge_kernel_seconds(ce_hi, atomics=program.atomics)
    dk_lo = spec.kernel.edge_kernel_seconds(ce_lo, atomics=program.atomics)

    # Pipeline recurrence, exactly Lane.submit's start rule per stage:
    # start = max(now, lane busy-until, dependency).  A zero-cost gather
    # (charged size rounds to nothing) emits no event and leaves its lane
    # untouched, like submit's empty-op short-circuit; transfers and
    # kernels always carry counters, so they always emit.
    now = gpu.clock.now
    cpu_b = gpu.cpu.busy_until
    copy_b = gpu.copy.busy_until
    gpu_b = gpu.gpu.busy_until
    g_rows, x_rows, k_rows = [], [], []
    prev = after
    for r in range(n):
        d_g = dg_hi if r < nb_hi else dg_lo
        if d_g > 0.0:
            gs = max(now, cpu_b, prev)
            ge = gs + d_g
            cpu_b = ge
            g_rows.append((gs, ge))
        else:
            ge = max(now, cpu_b, prev)
        xs = max(now, copy_b, ge)
        xe = xs + (dx_hi if r < nb_hi else dx_lo)
        copy_b = xe
        x_rows.append((xs, xe))
        if (hi_e if r < ne_hi else lo_e) > 0:
            ks = max(now, gpu_b, xe)
            ke = ks + (dk_hi if r < ne_hi else dk_lo)
            gpu_b = ke
            k_rows.append((ks, ke, ce_hi if r < ne_hi else ce_lo))
        prev = ge  # next gather may start while this round flies

    gpu.cpu.busy_until = cpu_b
    gpu.copy.busy_until = copy_b
    gpu.gpu.busy_until = gpu_b

    log = gpu.events
    dev = gpu.device_id
    if g_rows:
        g = np.asarray(g_rows)
        with gpu.phase("Tfilling"):
            log.emit_batch("cpu", "gather", "od-gather", g[:, 0], g[:, 1],
                           device=dev)
    x = np.asarray(x_rows)
    payload = np.empty(n, dtype=np.int64)
    payload[:nb_hi] = pay_hi
    payload[nb_hi:] = pay_lo
    with gpu.phase("Ttransfer"):
        log.emit_batch(
            "copy", "h2d", "od-transfer", x[:, 0], x[:, 1],
            counters={"bytes_h2d": payload,
                      "h2d_transfers": np.ones(n, dtype=np.int64)},
            device=dev,
        )
    if k_rows:
        k = np.asarray(k_rows)
        with gpu.phase("Tondemand"):
            log.emit_batch(
                "gpu", "kernel", "od-compute", k[:, 0], k[:, 1],
                counters={"kernel_launches": np.ones(len(k_rows), dtype=np.int64),
                          "edges_processed": k[:, 2].astype(np.int64)},
                device=dev,
            )


def _stream_aggregate(gpu: SimulatedGPU, plan, program: VertexProgram,
                      after: float, sequential: bool) -> None:
    """Charge a many-round gather→transfer→compute chain in O(1) submits.

    Each stage's total equals the sum over rounds (per-round fixed costs
    included, which is the whole penalty of a degenerate on-demand region);
    stage k starts one round after stage k-1, approximating the pipeline
    (or strictly after it, when ``sequential``).  The per-round volumes
    come from the closed-form split, so the charged bytes/edges and the
    burst-rounded PCIe payload are the *exact* sums the per-round loop
    would produce — crossing ROUND_LOOP_LIMIT moves no counter and only
    perturbs durations at float-associativity level (the 64→65 boundary
    parity test pins both).
    """
    spec = gpu.spec
    n = plan.n_rounds
    hi_b, nb_hi, lo_b, nb_lo = round_shares(plan.total_bytes, n)
    hi_e, ne_hi, lo_e, ne_lo = round_shares(plan.n_edges, n)
    cb_hi, cb_lo = gpu._scale(hi_b), gpu._scale(lo_b)
    ce_hi, ce_lo = gpu._scale(hi_e), gpu._scale(lo_e)
    charged_bytes = nb_hi * cb_hi + nb_lo * cb_lo
    charged_edges = ne_hi * ce_hi + ne_lo * ce_lo
    payload = (nb_hi * spec.pcie.payload_bytes(cb_hi)
               + nb_lo * spec.pcie.payload_bytes(cb_lo))
    # Rounds whose edge share is zero launch no kernel in the loop path.
    n_kernels = n if lo_e > 0 else ne_hi
    gather_dur = n * spec.gather.setup + charged_bytes / spec.gather.bandwidth
    xfer_dur = n * spec.pcie.latency + payload / spec.pcie.bandwidth
    kern_dur = (
        n_kernels * spec.kernel.launch_overhead
        + (spec.kernel.atomic_penalty if program.atomics else 1.0)
        * charged_edges / spec.kernel.edge_throughput
    )
    with gpu.phase("Tfilling"):
        t_g = gpu.cpu.submit(gather_dur, "od-gather*", after=after,
                             kind="gather")
    with gpu.phase("Ttransfer"):
        # Split as fixed + variable so chaos-mode retry/degradation applies;
        # summed unchanged this equals xfer_dur bit for bit.
        t_x = gpu.copy.submit_transfer(
            n * spec.pcie.latency, payload / spec.pcie.bandwidth,
            "od-transfer*",
            after=t_g if sequential else (t_g - gather_dur + gather_dur / n),
            kind="h2d",
            counters={"bytes_h2d": payload, "h2d_transfers": n},
            faults=gpu.faults,
        )
    if n_kernels:
        with gpu.phase("Tondemand"):
            gpu.gpu.submit_kernel(
                kern_dur, "od-compute*",
                after=t_x if sequential else (t_x - xfer_dur + xfer_dur / n),
                counters={"kernel_launches": n_kernels,
                          "edges_processed": charged_edges},
                faults=gpu.faults,
            )


def _stream_cap(ondemand_alloc: Allocation, region: StaticRegion) -> int:
    """Effective round size: the on-demand region, floored at one chunk.

    A degenerate (≈0-byte) on-demand region still streams chunk by chunk —
    the pathological regime the right edge of Fig. 10 exposes.
    """
    return max(ondemand_alloc.nbytes, region.chunk_bytes)
