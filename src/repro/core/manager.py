"""The GPU-side Manager: one overlapped Ascetic iteration (§3.1–§3.4).

Schedule per iteration (Fig. 4 numbering, Fig. 5 timeline):

1. **GenDataMap** — a GPU scan produces StaticMap and OndemandMap from
   ActiveBitmap ∧/⊕ StaticBitmap.
2. **Adaptive repartition** (§3.3) — if the measured on-demand volume
   overflows its region while the static region is cold, shrink the static
   region by Eq. 3, return the chunks' memory to the on-demand region, and
   regenerate the map.
3. **Static computing** — the GPU processes StaticNodes' edges straight out
   of the Static Region (phase ``Tsr``); *simultaneously* the On-demand
   Engine gathers the OndemandNodes' edges on the CPU (``Tfilling``) and
   streams them over PCIe (``Ttransfer``).
4. **On-demand computing** — the GPU lane picks up each transferred round
   (``Tondemand``); rounds pipeline (round r+1 gathers while round r
   computes).
5. **Static update** (§3.4) — while the GPU chews on the on-demand data the
   copy engine is idle, so the replacement server swaps stale chunks into
   the Static Region, bounded by that idle window (``Tswap``).

``overlap=False`` degrades step 3/4 to the strictly sequential baseline
schedule (Fig. 5 top) — that switch is exactly how the paper isolates
*Static savings* from *Overlapping savings* in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.engines.base import emit_access_plan
from repro.core.bitmaps import split_active
from repro.core.ondemand import plan_ondemand
from repro.core.ratio import check_repartition
from repro.core.replacement import HotnessTable
from repro.core.static_region import StaticRegion
from repro.graph.csr import CSRGraph
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.memory import Allocation

__all__ = ["IterationOutcome", "run_iteration"]


@dataclass
class IterationOutcome:
    """Accounting detail of one Ascetic iteration (consumed by analysis)."""

    static_edges: int = 0
    ondemand_edges: int = 0
    ondemand_bytes: int = 0
    swap_bytes: int = 0
    repartitioned: bool = False
    n_rounds: int = 0
    promoted_chunks: int = 0


def run_iteration(
    gpu: SimulatedGPU,
    graph: CSRGraph,
    program: VertexProgram,
    state: ProgramState,
    region: StaticRegion,
    hotness: HotnessTable,
    static_alloc: Allocation,
    ondemand_alloc: Allocation,
    overlap: bool = True,
    replacement: bool = True,
    adaptive: bool = True,
    lazy_fill: bool = False,
    fragment_chunks: int = 64,
    policy=None,
    engine_label: str = "Ascetic",
) -> IterationOutcome:
    """Schedule one iteration; returns its accounting."""
    out = IterationOutcome()
    n = graph.n_vertices
    bpe = graph.bytes_per_edge

    # ➊ Generate the data maps (two bitmap passes + compaction scan).
    with gpu.phase("Tmap"):
        t_map = gpu.vertex_scan(n, passes=2, label="gen-datamap")
    static_bitmap = region.vertex_static_bitmap()
    smap, odmap = split_active(state.active, static_bitmap)
    plan = plan_ondemand(graph, odmap, _stream_cap(ondemand_alloc, region))
    # StaticMap and OndemandMap partition the active mask, so the static
    # edge count is the (memoized, already-paid-for) total minus the plan's
    # on-demand count — no second walk over the mask.
    total_edges = state.active_edges(graph)
    static_edges = total_edges - plan.n_edges

    # ➋ Adaptive repartitioning (§3.3, Eq. 3).  During a lazy warm-up the
    # region is empty by construction, which would read as "under-utilized"
    # and shrink it to nothing — the check only makes sense once filled.
    if adaptive and not (lazy_fill and region.free_chunks > 0):
        v_static = static_edges * bpe
        v_total = v_static + plan.edge_bytes
        decision = check_repartition(
            v_ondemand=plan.total_bytes,
            ondemand_capacity=ondemand_alloc.nbytes,
            v_static=v_static,
            static_capacity=max(static_alloc.nbytes, 1),
            v_total=v_total,
            dataset_bytes=max(graph.edge_array_bytes, 1),
        )
        if decision.repartition and decision.shrink_bytes > 0:
            new_static = max(static_alloc.nbytes - decision.shrink_bytes, 0)
            region.shrink_to(new_static)
            freed = static_alloc.nbytes - region.capacity_chunks * region.chunk_bytes
            gpu.memory.resize(static_alloc, region.capacity_chunks * region.chunk_bytes)
            gpu.memory.resize(ondemand_alloc, ondemand_alloc.nbytes + freed)
            out.repartitioned = True
            # Bitmaps changed: regenerate the data map (§3.3).
            with gpu.phase("Tmap"):
                t_map = gpu.vertex_scan(n, passes=2, label="regen-datamap")
            static_bitmap = region.vertex_static_bitmap()
            smap, odmap = split_active(state.active, static_bitmap)
            plan = plan_ondemand(graph, odmap, _stream_cap(ondemand_alloc, region))
            static_edges = total_edges - plan.n_edges

    out.static_edges = static_edges
    out.ondemand_edges = plan.n_edges
    out.ondemand_bytes = plan.total_bytes
    out.n_rounds = plan.n_rounds

    # Per-chunk decisions through the shared TransferPolicy API: the
    # movement scheduled below follows them.  Touch counts are computed
    # once here and reused for the hotness update in step ➍½ (the active
    # mask does not change mid-iteration, so the values are identical).
    touch = region.chunk_touch_counts(state.active)
    if policy is not None:
        touched_ids = np.nonzero(touch)[0]
        if touched_ids.size:
            paths = policy.plan(state.iteration, touched_ids,
                                touch[touched_ids], hotness)
            emit_access_plan(gpu, engine_label, "chunk", touched_ids, paths)

    # ➌ Static computing — overlapped (or not) with the on-demand chain.
    if overlap:
        with gpu.phase("Tsr"):
            gpu.edge_kernel(
                static_edges, label="static-compute", atomics=program.atomics,
                after=t_map,
            )
        prev = gpu.d2h(plan.request_bytes, label="od-requests", after=t_map)
        if plan.n_rounds > ROUND_LOOP_LIMIT:
            _stream_aggregate(gpu, plan, program, after=prev, sequential=False)
        else:
            for rnd in plan.iter_rounds():
                with gpu.phase("Tfilling"):
                    t_gather = gpu.cpu_gather(rnd.nbytes, label="od-gather",
                                              after=prev)
                with gpu.phase("Ttransfer"):
                    t_xfer = gpu.h2d(rnd.nbytes, label="od-transfer",
                                     after=t_gather)
                with gpu.phase("Tondemand"):
                    gpu.edge_kernel(rnd.n_edges, label="od-compute",
                                    atomics=program.atomics, after=t_xfer)
                prev = t_gather  # next gather may start while this round flies
    else:
        with gpu.phase("Tsr"):
            t_static = gpu.edge_kernel(static_edges, label="static-compute",
                                       atomics=program.atomics, after=t_map)
        gpu.sync(t_static)
        gpu.sync(gpu.d2h(plan.request_bytes, label="od-requests"))
        if plan.n_rounds > ROUND_LOOP_LIMIT:
            _stream_aggregate(gpu, plan, program, after=gpu.clock.now, sequential=True)
        else:
            for rnd in plan.iter_rounds():
                with gpu.phase("Tfilling"):
                    t = gpu.cpu_gather(rnd.nbytes, label="od-gather")
                gpu.sync(t)
                with gpu.phase("Ttransfer"):
                    t = gpu.h2d(rnd.nbytes, label="od-transfer")
                gpu.sync(t)
                with gpu.phase("Tondemand"):
                    t = gpu.edge_kernel(rnd.n_edges, label="od-compute",
                                        atomics=program.atomics)
                gpu.sync(t)

    # ➍½ Lazy fill: on-demand data that just landed on the device is kept
    # in the Static Region while there is room (a device-side copy, free of
    # PCIe traffic).  Once the region is full, §3.4 replacement takes over.
    hotness.update(touch)
    if lazy_fill and region.free_chunks > 0:
        promoted = region.promote_vertices(odmap)
        out.promoted_chunks = promoted
    # ➎ Static update during the on-demand compute window (§3.4).
    elif replacement:
        window = max(gpu.gpu.busy_until - gpu.copy.busy_until, 0.0)
        usable = max(window - gpu.spec.pcie.latency, 0.0)
        # The window buys paper-scale bytes; chunks are scaled bytes, so
        # divide by the chunk's *charged* size.
        charged_chunk = region.chunk_bytes * gpu.charge_scale
        budget_chunks = int(usable * gpu.spec.pcie.bandwidth / charged_chunk)
        swap = hotness.plan_swaps(region.resident, budget_chunks, fragment_chunks)
        if swap.n_swaps:
            moved = region.swap(swap.evict, swap.load)
            out.swap_bytes = moved
            # The H2D copy must wait for the CPU to finish staging the
            # incoming chunks — without the gate the copy engine would start
            # the swap mid-gather, understating Tswap and overstating the
            # §3.4 overlap the Fig. 8 breakdown isolates.
            t_gather = gpu.cpu_gather(moved, label="swap-gather")
            with gpu.phase("Tswap"):
                gpu.h2d(moved, label="static-swap", after=t_gather)

    gpu.sync()
    return out


#: Above this round count a per-round Python loop is pointless; the chain is
#: charged in aggregate (identical totals, pipeline fill approximated by one
#: round's offset per stage).
ROUND_LOOP_LIMIT = 64


def _stream_aggregate(gpu: SimulatedGPU, plan, program: VertexProgram,
                      after: float, sequential: bool) -> None:
    """Charge a many-round gather→transfer→compute chain in O(1) submits.

    Each stage's total equals the sum over rounds (per-round fixed costs
    included, which is the whole penalty of a degenerate on-demand region);
    stage k starts one round after stage k-1, approximating the pipeline
    (or strictly after it, when ``sequential``).
    """
    spec = gpu.spec
    n = plan.n_rounds
    charged_bytes = int(plan.total_bytes * gpu.charge_scale)
    charged_edges = int(plan.n_edges * gpu.charge_scale)
    gather_dur = n * spec.gather.setup + charged_bytes / spec.gather.bandwidth
    payload = spec.pcie.payload_bytes(-(-charged_bytes // n)) * n if n else 0
    xfer_dur = n * spec.pcie.latency + payload / spec.pcie.bandwidth
    kern_dur = (
        n * spec.kernel.launch_overhead
        + (spec.kernel.atomic_penalty if program.atomics else 1.0)
        * charged_edges / spec.kernel.edge_throughput
    )
    with gpu.phase("Tfilling"):
        t_g = gpu.cpu.submit(gather_dur, "od-gather*", after=after,
                             kind="gather")
    with gpu.phase("Ttransfer"):
        # Split as fixed + variable so chaos-mode retry/degradation applies;
        # summed unchanged this equals xfer_dur bit for bit.
        t_x = gpu.copy.submit_transfer(
            n * spec.pcie.latency, payload / spec.pcie.bandwidth,
            "od-transfer*",
            after=t_g if sequential else (t_g - gather_dur + gather_dur / n),
            kind="h2d",
            counters={"bytes_h2d": payload, "h2d_transfers": n},
            faults=gpu.faults,
        )
    with gpu.phase("Tondemand"):
        gpu.gpu.submit_kernel(
            kern_dur, "od-compute*",
            after=t_x if sequential else (t_x - xfer_dur + xfer_dur / n),
            counters={"kernel_launches": n, "edges_processed": charged_edges},
            faults=gpu.faults,
        )


def _stream_cap(ondemand_alloc: Allocation, region: StaticRegion) -> int:
    """Effective round size: the on-demand region, floored at one chunk.

    A degenerate (≈0-byte) on-demand region still streams chunk by chunk —
    the pathological regime the right edge of Fig. 10 exposes.
    """
    return max(ondemand_alloc.nbytes, region.chunk_bytes)
