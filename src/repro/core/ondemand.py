"""On-demand Engine planning (CPU side, §3.1).

Given the OndemandMap (active vertices not covered by the Static Region),
the On-demand Engine walks the vertex metadata (degrees/offsets), gathers
the requested edges from the host CSR, and streams them to the On-demand
Region — "similar to the scheme used in Subway" (§3.1).  When the gathered
volume exceeds the region, it is processed in rounds (§3.3's motivation for
not letting the region get too small).

This module computes the *plan* — volumes and round schedule; the manager
charges its costs to the simulated lanes.  Rounds are represented lazily:
a pathologically small region (the right edge of Fig. 10's sweep) implies
millions of rounds, which the manager charges in aggregate instead of
looping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.algorithms.frontier import active_edge_count
from repro.graph.csr import CSRGraph

__all__ = ["OnDemandRound", "OnDemandPlan", "plan_ondemand", "round_shares",
           "OFFSET_BYTES_PER_VERTEX"]

#: Bytes per on-demand vertex for the request/offset structures that ride
#: along with the edges (mirrors Subway's SubVertex arrays).
OFFSET_BYTES_PER_VERTEX = 8


@dataclass(frozen=True)
class OnDemandRound:
    """One gather → transfer → compute round."""

    n_edges: int
    nbytes: int


@dataclass(frozen=True)
class OnDemandPlan:
    """The full on-demand schedule for one iteration."""

    n_vertices: int
    n_edges: int
    edge_bytes: int
    request_bytes: int
    n_rounds: int

    @property
    def total_bytes(self) -> int:
        return self.edge_bytes + self.request_bytes

    def iter_rounds(self) -> Iterator[OnDemandRound]:
        """Yield the rounds, volumes split as evenly as integer math allows."""
        edges_left, bytes_left = self.n_edges, self.total_bytes
        for r in range(self.n_rounds):
            share_bytes = -(-bytes_left // (self.n_rounds - r))
            share_edges = -(-edges_left // (self.n_rounds - r))
            yield OnDemandRound(n_edges=share_edges, nbytes=share_bytes)
            bytes_left -= share_bytes
            edges_left -= share_edges

    def round_sizes(self) -> tuple[int, int, int, int]:
        """The byte split of :meth:`iter_rounds` in closed form.

        Returns ``(hi, n_hi, lo, n_lo)``: the first ``n_hi`` rounds carry
        ``hi`` bytes, the remaining ``n_lo`` carry ``lo``.  Lets the
        manager charge a many-round chain from the exact per-round volumes
        without iterating (the parity the 64→65-round boundary test pins).
        """
        return round_shares(self.total_bytes, self.n_rounds)


def round_shares(total: int, n_rounds: int) -> tuple[int, int, int, int]:
    """Closed form of the iterative ``ceil(left / rounds_left)`` split.

    Splitting ``total`` over ``n_rounds`` by repeatedly taking
    ``ceil(remaining / rounds_remaining)`` gives exactly ``total % n``
    rounds of ``ceil(total/n)`` followed by the rest at ``total // n``
    (each ceil take keeps the remainder's residue class; once the residue
    hits zero the division is exact).  Returned as ``(hi, n_hi, lo,
    n_lo)`` with the ``hi`` rounds first, matching
    :meth:`OnDemandPlan.iter_rounds` round for round.
    """
    if n_rounds <= 0:
        return 0, 0, 0, 0
    lo, rem = divmod(total, n_rounds)
    hi = lo + 1 if rem else lo
    return hi, rem, lo, n_rounds - rem


def plan_ondemand(
    graph: CSRGraph, ondemand_mask: np.ndarray, region_bytes: int
) -> OnDemandPlan:
    """Build the round schedule for this iteration's on-demand vertices."""
    n_vertices = int(np.count_nonzero(ondemand_mask))
    n_edges = active_edge_count(graph, ondemand_mask)
    edge_bytes = n_edges * graph.bytes_per_edge
    request_bytes = n_vertices * OFFSET_BYTES_PER_VERTEX
    total = edge_bytes + request_bytes
    if total > 0:
        cap = max(int(region_bytes), 1)
        n_rounds = max(-(-total // cap), 1)
    else:
        n_rounds = 0
    return OnDemandPlan(
        n_vertices=n_vertices,
        n_edges=n_edges,
        edge_bytes=edge_bytes,
        request_bytes=request_bytes,
        n_rounds=n_rounds,
    )
