"""Ascetic — the paper's contribution (§3).

GPU memory is partitioned into a **Static Region** (a fixed, chunk-granular
slice of the edge array that persists across iterations) and an **On-demand
Region** (per-iteration active edges not covered by the static slice,
gathered Subway-style by the CPU-side On-demand Engine).  The GPU-side
Manager computes on static-resident edges *while* the CPU gathers and
transfers the on-demand slice (§3.2, Fig. 5), the split ratio follows
Eq. 2 with adaptive re-partitioning per Eq. 3 (§3.3), and a hotness-table
server refreshes stale chunks during the on-demand compute window (§3.4).

Module map:

* :mod:`repro.core.bitmaps` — ActiveBitmap/StaticBitmap algebra (Fig. 4);
* :mod:`repro.core.ratio` — Eq. 1–3;
* :mod:`repro.core.static_region` — chunk table + fill policies;
* :mod:`repro.core.replacement` — hotness table and swap planning (§3.4);
* :mod:`repro.core.ondemand` — CPU-side gather planning;
* :mod:`repro.core.manager` — the overlapped per-iteration schedule (§3.2);
* :mod:`repro.core.ascetic` — the engine facade.
"""

from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.core.bitmaps import and_map, ondemand_map
from repro.core.ratio import static_ratio, region_bytes, RepartitionDecision, check_repartition
from repro.core.static_region import StaticRegion
from repro.core.replacement import HotnessTable, SwapPlan
from repro.core.ondemand import OnDemandPlan, plan_ondemand

__all__ = [
    "AsceticConfig",
    "AsceticEngine",
    "and_map",
    "ondemand_map",
    "static_ratio",
    "region_bytes",
    "RepartitionDecision",
    "check_repartition",
    "StaticRegion",
    "HotnessTable",
    "SwapPlan",
    "OnDemandPlan",
    "plan_ondemand",
]
