"""The Static Region's chunk table (§3.1, §3.4).

The edge array is divided into fixed 16 KB chunks ("amenable to the PCI-e
burst transfer mechanism", §3.4); the Static Region holds some subset of
them on the device across iterations.  This class tracks residency, derives
the vertex-granularity **StaticBitmap** (a vertex is static iff *all*
chunks its edge range touches are resident — a partially-covered vertex is
fetched through the On-demand Engine in full, matching the paper's
vertex-level maps), and applies swap plans from the replacement server.

Fill policies (§5): the initial content can be the ``front`` portion, the
``rear`` portion, or ``random`` chunks — the paper measures < 5 % difference
between them, which ``benchmarks/bench_ablations.py`` reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["StaticRegion", "DEFAULT_CHUNK_BYTES", "range_mark"]

#: §3.4: 16 KB chunks.
DEFAULT_CHUNK_BYTES = 16 * 1024


def range_mark(lo: np.ndarray, hi_next: np.ndarray, n_bins: int) -> np.ndarray:
    """Difference array for the range-mark trick: +1 at ``lo``, -1 at
    ``hi_next``; ``cumsum(diff[:-1])`` then counts covering ranges per bin.

    Two execution strategies with identical results, picked by regime:
    with at least one index per bin, ``np.bincount`` wins — it streams the
    indices without ``np.add.at``'s per-element dispatch; for sparse marks
    over many bins, the two full-width arrays bincount allocates and
    subtracts cost more than scattering into one preallocated array.  The
    crossover sits near indices ≈ bins on this container's NumPy
    (``repro bench static_region/chunk_touch_counts`` tracks the dense
    case; the scaled Ascetic engine exercises the sparse one).
    """
    if lo.size >= n_bins:
        diff = np.bincount(lo, minlength=n_bins + 1)
        np.subtract(diff, np.bincount(hi_next, minlength=n_bins + 1), out=diff)
        return diff
    diff = np.zeros(n_bins + 1, dtype=np.int64)
    np.add.at(diff, lo, 1)
    np.add.at(diff, hi_next, -1)
    return diff


class StaticRegion:
    """Chunk-granular residency of the edge array on the device."""

    def __init__(
        self,
        graph: CSRGraph,
        capacity_bytes: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        fill: str = "front",
        seed: int = 0,
        fragment_chunks: int = 64,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if fragment_chunks <= 0:
            raise ValueError("fragment size must be positive")
        self.graph = graph
        self.chunk_bytes = int(chunk_bytes)
        self.fragment_chunks = int(fragment_chunks)
        # The per-vertex chunk-span geometry is shared per (graph, chunk
        # size) pair — the hotness table and the Hybrid policy reason about
        # the same map, and the serving layer reuses one graph across many
        # requests.
        cmap = graph.chunk_map(self.chunk_bytes)
        self.chunk_map = cmap
        self.n_chunks = cmap.n_chunks
        self.capacity_chunks = min(int(capacity_bytes) // self.chunk_bytes, self.n_chunks)
        self.resident = np.zeros(self.n_chunks, dtype=bool)
        self._vertex_bitmap: np.ndarray | None = None
        # Merged maximal runs of resident chunks — the representation the
        # per-iteration queries are answered from (see resident_runs).
        self._resident_runs: tuple | None = None
        # (fragment_chunks, per-fragment resident counts) for plan_swaps.
        self._frag_res: tuple | None = None
        self._fill(fill, seed)
        self._has_edges = cmap.has_edges
        self._c_lo = cmap.c_lo
        self._c_hi = cmap.c_hi
        # Scratch buffer reused by the per-iteration paths (bitmap/coverage
        # prefix sums); contents are never live across calls.
        self._cum_scratch = np.empty(self.n_chunks + 1, dtype=np.int64)

    def _fill(self, fill: str, seed: int) -> None:
        if fill not in ("lazy", "front", "rear", "random"):
            raise ValueError(f"unknown fill policy {fill!r} (lazy/front/rear/random)")
        k = self.capacity_chunks
        if fill == "lazy":
            # Start empty; chunks are promoted from on-demand traffic as it
            # arrives (no dedicated prefill transfer at all).
            return
        if k == 0:
            return
        if fill == "front":
            self.resident[:k] = True
        elif fill == "rear":
            self.resident[self.n_chunks - k :] = True
        else:  # random
            # Random at *fragment* granularity (Fig. 6): scattering single
            # chunks would leave almost no vertex fully covered, while
            # random contiguous runs spread coverage evenly over the edge
            # array — the property §5's conjecture relies on.
            # Draw fragments until the capacity is covered, then trim the
            # overshoot: flooring the fragment count would strand up to
            # ``fragment_chunks - 1`` chunks of capacity (and the tail
            # fragment may be short), making the §5 fill-policy ablation
            # compare regions of different effective size.
            rng = np.random.default_rng(seed)
            f = self.fragment_chunks
            n_frags = -(-self.n_chunks // f)
            got = 0
            for fr in rng.permutation(n_frags):
                lo, hi = fr * f, min((fr + 1) * f, self.n_chunks)
                self.resident[lo:hi] = True
                got += hi - lo
                if got >= k:
                    break
            over = got - k
            if over > 0:
                ids = np.nonzero(self.resident)[0]
                self.resident[ids[-over:]] = False

    # ------------------------------------------------------------ accessors
    @property
    def resident_chunks(self) -> int:
        return int(np.count_nonzero(self.resident))

    @property
    def resident_bytes(self) -> int:
        return self.resident_chunks * self.chunk_bytes

    def vertex_static_bitmap(self) -> np.ndarray:
        """StaticBitmap: vertices whose whole edge range is resident.

        Degree-0 vertices are static by convention (they need no edge data).
        Cached; invalidated by :meth:`swap` and :meth:`shrink_to`.

        A vertex is covered exactly when its chunk span lies inside one
        maximal run of resident chunks, so the test is a searchsorted over
        the (cached) run boundaries — no chunk-length prefix sum, whose
        sequential cumsum dominated this method's cost at realistic chunk
        counts.
        """
        if self._vertex_bitmap is None:
            if self.n_chunks == 0:
                self._vertex_bitmap = np.ones(self.graph.n_vertices, dtype=bool)
            else:
                starts, ends, _ = self.resident_runs()
                if starts.size == 0:
                    self._vertex_bitmap = ~self._has_edges
                else:
                    idx = np.searchsorted(starts, self._c_lo, side="right") - 1
                    idxc = np.maximum(idx, 0)
                    covered = (idx >= 0) & (self._c_hi < ends[idxc])
                    self._vertex_bitmap = covered | ~self._has_edges
        return self._vertex_bitmap

    def _invalidate(self) -> None:
        """Drop caches derived from residency (bitmap, runs, frag counts)."""
        self._vertex_bitmap = None
        self._resident_runs = None
        self._frag_res = None

    def fragment_resident_counts(self, fragment_chunks: int) -> np.ndarray:
        """Per-fragment resident-chunk counts (cached until residency moves).

        The replacement planner's candidate filter needs these every
        iteration, but residency changes only on an actual swap / promote /
        shrink — so the reduceat is paid once per mutation, not per
        iteration.
        """
        f = int(fragment_chunks)
        cached = self._frag_res
        if cached is not None and cached[0] == f:
            return cached[1]
        if self.n_chunks == 0:
            counts = np.zeros(0, dtype=np.int64)
        else:
            bounds = np.arange(0, self.n_chunks, f, dtype=np.int64)
            counts = np.add.reduceat(self.resident, bounds, dtype=np.int64)
        self._frag_res = (f, counts)
        return counts

    def resident_runs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Maximal runs of resident chunks: ``(starts, ends, prefix)``.

        ``[starts[i], ends[i])`` are the half-open resident intervals in
        increasing order; ``prefix`` is the exclusive prefix sum of their
        lengths (``prefix[i]`` = resident chunks before run ``i``), sized
        ``len(starts) + 1``.  Cached; every residency mutation invalidates.
        """
        if self._resident_runs is None:
            r = self.resident
            if r.size == 0:
                empty = np.empty(0, dtype=np.int64)
                self._resident_runs = (empty, empty,
                                       np.zeros(1, dtype=np.int64))
            else:
                d = np.diff(r.view(np.int8))
                starts = np.nonzero(d == 1)[0] + 1
                ends = np.nonzero(d == -1)[0] + 1
                if r[0]:
                    starts = np.concatenate(([0], starts))
                if r[-1]:
                    ends = np.concatenate((ends, [r.size]))
                prefix = np.zeros(starts.size + 1, dtype=np.int64)
                np.cumsum(ends - starts, out=prefix[1:])
                self._resident_runs = (starts, ends, prefix)
        return self._resident_runs

    def touched_chunk_runs(self, active: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Merged chunk intervals the active vertices' edge ranges touch.

        The sparse counterpart of :meth:`chunk_touch_counts`: returns
        half-open ``(starts, ends)`` with overlapping/adjacent per-vertex
        spans merged, so ``O(active vertices)`` work replaces the dense
        chunk-length sweep.  A chunk is in some run exactly when its dense
        touch count is nonzero (per-vertex chunk spans are nondecreasing in
        vertex id, which is what makes the single-pass merge valid).
        """
        empty = np.empty(0, dtype=np.int64)
        if self.n_chunks == 0:
            return empty, empty
        vs = np.nonzero(active & self._has_edges)[0]
        if vs.size == 0:
            return empty, empty
        s = self._c_lo[vs]
        e = self._c_hi[vs] + 1
        brk = np.nonzero(s[1:] > e[:-1])[0] + 1
        run_s = s[np.concatenate(([0], brk))]
        run_e = e[np.concatenate((brk - 1, [e.size - 1]))]
        return run_s, run_e

    def resident_count_in_runs(self, run_s: np.ndarray, run_e: np.ndarray) -> int:
        """Number of resident chunks inside the given half-open intervals.

        Interval-list intersection against :meth:`resident_runs` —
        ``O((runs + resident runs) log resident runs)``, independent of the
        chunk count.
        """
        if run_s.size == 0:
            return 0
        starts, ends, prefix = self.resident_runs()
        if starts.size == 0:
            return 0

        def rank(x: np.ndarray) -> np.ndarray:
            """Resident chunks with id < x, for each x."""
            i = np.searchsorted(starts, x, side="right") - 1
            ic = np.maximum(i, 0)
            partial = np.minimum(x - starts[ic], ends[ic] - starts[ic])
            return np.where(i >= 0, prefix[ic] + partial, 0)

        return int((rank(run_e) - rank(run_s)).sum())

    def _resident_prefix(self) -> np.ndarray:
        """Inclusive prefix sum of ``resident`` into the shared scratch.

        ``out[i]`` = number of resident chunks with id < ``i``.  The scratch
        is overwritten by the next per-iteration call — consume immediately.
        """
        cum = self._cum_scratch
        cum[0] = 0
        np.cumsum(self.resident, out=cum[1:])
        return cum

    def chunk_touch_counts(self, active: np.ndarray) -> np.ndarray:
        """Per-chunk access counts from the active vertices' edge ranges.

        Feeds the §3.4 hotness table.  Vectorized with the regime-adaptive
        :func:`range_mark` (see its docstring for the bincount/add.at
        dispatch).
        """
        if self.n_chunks == 0:
            return np.zeros(0, dtype=np.int64)
        vs = np.nonzero(active & self._has_edges)[0]
        if vs.size == 0:
            return np.zeros(self.n_chunks, dtype=np.int64)
        diff = range_mark(self._c_lo[vs], self._c_hi[vs] + 1, self.n_chunks)
        return np.cumsum(diff[:-1])

    @property
    def free_chunks(self) -> int:
        return self.capacity_chunks - self.resident_chunks

    # --------------------------------------------------- residency handoff
    def compatible_with(self, graph: CSRGraph, chunk_bytes: int) -> bool:
        """Whether this region's residency is valid for a new run.

        The chunk table indexes byte offsets of *this* edge array at *this*
        chunk granularity; warm reuse across requests (the serving layer's
        cross-request Static Region reuse) is only sound when both match.
        Identity, not equality: a re-weighted or re-ordered graph changes
        byte offsets even when vertex/edge counts agree.
        """
        return self.graph is graph and self.chunk_bytes == int(chunk_bytes)

    def top_up(self, max_new_chunks: int | None = None) -> int:
        """Refill free capacity with the lowest-id non-resident chunks.

        The warm-start refill: after a capacity squeeze (or a capacity
        grow-back) dropped part of a warm region, only the *missing* chunks
        need transferring — the survivors are the whole point of the
        handoff.  Marks up to ``max_new_chunks`` (default: all free
        capacity) resident and returns the count; the caller charges the
        corresponding gather + H2D.
        """
        budget = self.free_chunks if max_new_chunks is None else min(
            self.free_chunks, int(max_new_chunks)
        )
        if budget <= 0 or self.n_chunks == 0:
            return 0
        missing = np.nonzero(~self.resident)[0]
        take = missing[:budget]
        if take.size == 0:
            return 0
        self.resident[take] = True
        self._invalidate()
        return int(take.size)

    # ------------------------------------------------------------ mutation
    def promote_vertices(self, mask: np.ndarray, max_new_chunks: int | None = None) -> int:
        """Lazy fill: keep on-demand-fetched vertices' chunks in the region.

        Takes vertices from ``mask`` in id order and marks their whole chunk
        spans resident until the region is full (promoting partial vertices
        would buy no coverage).  The data is already on the device — it just
        arrived in the On-demand Region — so promotion is a device-side copy
        and costs no PCIe traffic.  Returns the number of chunks promoted.
        """
        budget = self.free_chunks if max_new_chunks is None else min(
            self.free_chunks, int(max_new_chunks)
        )
        if budget <= 0 or self.n_chunks == 0:
            return 0
        vs = np.nonzero(mask & self._has_edges)[0]
        if vs.size == 0:
            return 0
        c_lo, c_hi = self._c_lo[vs], self._c_hi[vs]
        cum = self._resident_prefix()
        new_per_vertex = (c_hi - c_lo + 1) - (cum[c_hi + 1] - cum[c_lo])
        take = np.cumsum(new_per_vertex) <= budget
        if not take.any():
            return 0
        c_lo, c_hi = c_lo[take], c_hi[take]
        # Same range-mark as chunk_touch_counts, but only coverage (> 0)
        # matters, not the counts themselves.
        diff = range_mark(c_lo, c_hi + 1, self.n_chunks)
        span = np.cumsum(diff[:-1]) > 0
        before = self.resident_chunks
        self.resident |= span
        self._invalidate()
        return self.resident_chunks - before

    def swap(self, evict: np.ndarray, load: np.ndarray) -> int:
        """Apply a replacement plan; returns bytes transferred H2D.

        ``evict`` must be resident, ``load`` non-resident, and the region
        may not overflow its capacity.  Edge data is read-only, so eviction
        costs no writeback.
        """
        evict = np.asarray(evict, dtype=np.int64)
        load = np.asarray(load, dtype=np.int64)
        if evict.size and not self.resident[evict].all():
            raise ValueError("evicting a non-resident chunk")
        if load.size and self.resident[load].any():
            raise ValueError("loading an already-resident chunk")
        if self.resident_chunks - evict.size + load.size > self.capacity_chunks:
            raise ValueError("swap would overflow the static region")
        self.resident[evict] = False
        self.resident[load] = True
        self._invalidate()
        return int(load.size) * self.chunk_bytes

    def shrink_to(self, capacity_bytes: int) -> int:
        """Adaptive repartition (Eq. 3): give chunks back to the on-demand region.

        Drops the coldest-positioned (highest-id) resident chunks first —
        eviction is free (read-only data) — and returns the number of chunks
        released.
        """
        new_cap = max(int(capacity_bytes) // self.chunk_bytes, 0)
        if new_cap >= self.capacity_chunks:
            self.capacity_chunks = new_cap
            return 0
        excess = self.resident_chunks - new_cap
        self.capacity_chunks = new_cap
        if excess <= 0:
            return 0
        resident_ids = np.nonzero(self.resident)[0]
        victims = resident_ids[-excess:]
        self.resident[victims] = False
        self._invalidate()
        return int(victims.size)
