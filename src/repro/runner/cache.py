"""Content-addressed on-disk cache for finished grid cells.

The paper's thesis is that most data survives from one iteration to the
next; the experiment harness has the same structure one level up — most
grid cells survive from one *session* to the next.  This cache closes that
loop: a cell whose :class:`~repro.runner.spec.RunSpec` hashes to an entry
written by an earlier session is *replayed* (bit-identically — see
:func:`repro.harness.persistence.result_to_payload`) instead of recomputed.

Layout: one JSON file per cell, ``<root>/<cache_key>.json``, containing

* the spec (``RunSpec.to_dict``) for human inspection,
* the repro *code version* (a content hash over the package sources),
* the full result payload.

The code version is stored *inside* the entry rather than mixed into the
file name so that a source change shows up as a counted **invalidation**
(the stale entry is detected and overwritten) instead of a silent miss
that slowly leaks orphaned files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.harness.persistence import result_from_payload, result_to_payload
from repro.engines.base import RunResult
from repro.runner.spec import RunSpec

__all__ = ["CacheStats", "ResultCache", "code_version"]

PathLike = Union[str, "os.PathLike[str]"]

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash over the installed ``repro`` package sources.

    Any edit to any module changes it, conservatively invalidating every
    cached cell — correctness over reuse.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode("utf-8"))
            h.update(path.read_bytes())
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one runner session."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
        }

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.invalidations} invalidation(s), {self.stores} store(s)"
        )


@dataclass
class ResultCache:
    """Persistent spec → result store under ``root``.

    ``version`` defaults to :func:`code_version`; tests pin it to exercise
    invalidation without editing sources.
    """

    root: PathLike
    version: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(os.fspath(self.root))
        self.root.mkdir(parents=True, exist_ok=True)
        if self.version is None:
            self.version = code_version()

    def path_for(self, spec: RunSpec) -> Path:
        """On-disk location of ``spec``'s entry (may not exist)."""
        return Path(self.root) / f"{spec.cache_key()}.json"

    def lookup(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` (counted).

        A present-but-stale entry (different code version, unreadable
        file, or payload mismatch) counts as both an invalidation and a
        miss; the caller recomputes and :meth:`store` overwrites it.
        """
        path = self.path_for(spec)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("code_version") != self.version:
                raise _StaleEntry
            result = result_from_payload(entry["result"])
        except (_StaleEntry, KeyError, ValueError, json.JSONDecodeError):
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, spec: RunSpec, result: RunResult) -> Path:
        """Write ``result`` under ``spec``'s key (atomic replace)."""
        path = self.path_for(spec)
        entry = {
            "code_version": self.version,
            "spec": spec.to_dict(),
            "result": result_to_payload(result),
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(entry, fh)
        os.replace(tmp, path)
        self.stats.stores += 1
        return path


class _StaleEntry(Exception):
    """Internal marker: entry present but written by other code."""
