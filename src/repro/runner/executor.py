"""Process-pool grid execution with caching and per-cell fault isolation.

:func:`run_grid` takes a list of :class:`~repro.runner.spec.RunSpec` cells
and executes them with

* **caching** — cells whose spec hashes to a fresh entry in a
  :class:`~repro.runner.cache.ResultCache` are replayed, not recomputed;
* **parallelism** — with ``jobs > 1``, pending cells fan out across worker
  processes (one process per cell, at most ``jobs`` alive at once);
* **fault isolation** — a worker that raises, crashes, or exceeds
  ``timeout`` degrades its cell to ``failed`` after ``retries`` extra
  attempts; the grid always returns a complete :class:`GridReport`.

Determinism: every result — computed in-process, computed in a worker, or
replayed from cache — passes through the lossless payload form of
:mod:`repro.harness.persistence`, so serial and parallel execution yield
bit-identical :class:`~repro.engines.base.RunResult` values and metrics.

``jobs=1`` runs cells inline in this process (no isolation against
hard crashes, though timeouts are still enforced on the main thread);
``jobs>1`` forks workers, so engines registered at runtime — including
test fakes — are visible to the children on platforms with ``fork``.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engines.base import RunResult
from repro.harness.persistence import result_from_payload, result_to_payload
from repro.runner.cache import CacheStats, ResultCache
from repro.runner.spec import RunSpec

__all__ = ["CellOutcome", "GridReport", "run_grid", "grid_specs"]

#: Parent-side grace period added to ``timeout`` before the worker is
#: killed (the worker enforces the timeout itself via ``SIGALRM`` first;
#: the parent deadline is the backstop for workers stuck in C code).
_KILL_GRACE_SECONDS = 5.0


class CellTimeoutError(Exception):
    """A cell exceeded the per-cell time budget."""


@dataclass
class CellOutcome:
    """What happened to one grid cell."""

    spec: RunSpec
    status: str  # "ok" | "cached" | "failed"
    result: Optional[RunResult] = None
    error: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether a result is available (fresh or replayed)."""
        return self.status in ("ok", "cached")


@dataclass
class GridReport:
    """Everything :func:`run_grid` has to say about one invocation."""

    cells: List[CellOutcome]
    cache: Optional[CacheStats]
    jobs: int
    wall_seconds: float

    @property
    def n_ok(self) -> int:
        return sum(1 for c in self.cells if c.status == "ok")

    @property
    def n_cached(self) -> int:
        return sum(1 for c in self.cells if c.status == "cached")

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.cells if c.status == "failed")

    def results(self) -> List[RunResult]:
        """Results of the cells that produced one, in input order."""
        return [c.result for c in self.cells if c.result is not None]

    def result_map(self) -> Dict[Tuple[str, str], Dict[str, RunResult]]:
        """``(dataset, algorithm) → engine → result`` for succeeded cells."""
        out: Dict[Tuple[str, str], Dict[str, RunResult]] = {}
        for c in self.cells:
            if c.result is not None:
                out.setdefault((c.spec.dataset, c.spec.algorithm), {})[
                    c.spec.engine
                ] = c.result
        return out

    def summary(self) -> str:
        """One-line account: cell counts, wall time, cache counters."""
        parts = [
            f"{len(self.cells)} cell(s): {self.n_ok} computed, "
            f"{self.n_cached} cached, {self.n_failed} failed "
            f"in {self.wall_seconds:.1f}s wall ({self.jobs} job(s))"
        ]
        if self.cache is not None:
            parts.append(self.cache.summary())
        return "; ".join(parts)


def grid_specs(
    datasets: Sequence[str],
    algorithms: Sequence[str],
    engines: Sequence[str],
    scale: Optional[float] = None,
    memory_bytes: Optional[int] = None,
    seed: int = 0,
    fault_plan=None,
) -> List[RunSpec]:
    """The cross product as specs, datasets-major (the benchmark order).

    ``seed``/``fault_plan`` stamp every cell with the same chaos-mode
    configuration (a chaos grid); the defaults are the fault-free model.
    """
    return [
        RunSpec(dataset=d, algorithm=a, engine=e, scale=scale,
                memory_bytes=memory_bytes, seed=seed, fault_plan=fault_plan)
        for d, a, e in itertools.product(datasets, algorithms, engines)
    ]


# --------------------------------------------------------------- execution
def _execute_spec(spec: RunSpec, checkpoint_dir: Optional[str] = None) -> RunResult:
    """Build the workload and run the cell (current process)."""
    from repro.harness.experiments import run_cell

    return run_cell(spec, checkpoint_dir=checkpoint_dir)


def _raise_timeout(signum, frame):  # pragma: no cover - trivial
    raise CellTimeoutError("cell exceeded its time budget")


def _can_use_sigalrm() -> bool:
    """Whether an inline timeout is enforceable in this context.

    ``SIGALRM``-based enforcement needs a POSIX interval timer
    (``signal.setitimer``; absent on Windows) and must run on the main
    thread — CPython refuses to install signal handlers anywhere else.
    When it is unavailable (e.g. :func:`run_grid` called from a worker
    thread of a larger application), the inline path runs the cell to
    completion instead of failing; the process-pool path (``jobs > 1``)
    still enforces the timeout parent-side via the worker deadline, so
    callers that need hard timeouts off the main thread should use it.
    """
    return (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


def _run_inline(spec: RunSpec, timeout: Optional[float],
                checkpoint_dir: Optional[str] = None) -> RunResult:
    """Run one cell in this process, enforcing ``timeout`` when possible.

    ``timeout=None`` means *unlimited*: no signal handler or interval
    timer is installed at all (the previous behaviour armed the plumbing
    even when there was nothing to enforce).  A finite timeout is enforced
    via ``SIGALRM`` when :func:`_can_use_sigalrm` allows; otherwise the
    cell simply runs to completion (see that helper for the fallback
    contract).
    """
    if timeout is None or not _can_use_sigalrm():
        return _execute_spec(spec, checkpoint_dir)
    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _execute_spec(spec, checkpoint_dir)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _worker_main(conn, spec_dict: dict, timeout: Optional[float],
                 checkpoint_dir: Optional[str] = None) -> None:
    """Subprocess entry: run one cell, ship the payload (or error) back.

    With ``timeout=None`` no timer is armed; a finite timeout is enforced
    in-process via ``SIGALRM`` where the platform has it (workers are
    fresh main threads, so only the platform check matters), with the
    parent's kill deadline as the backstop either way.
    """
    try:
        if (timeout is not None and hasattr(signal, "SIGALRM")
                and hasattr(signal, "setitimer")):
            signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        spec = RunSpec.from_dict(spec_dict)
        result = _execute_spec(spec, checkpoint_dir)
        message = {"ok": True, "payload": result_to_payload(result)}
    except BaseException as exc:  # isolate *everything*; the parent decides
        message = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    try:
        conn.send(message)
    except Exception:
        pass  # parent already gone; its deadline handling covers us
    finally:
        conn.close()


@dataclass
class _Task:
    spec: RunSpec
    indices: List[int]
    attempts: int = 0
    errors: List[str] = field(default_factory=list)


@dataclass
class _Running:
    task: _Task
    proc: "mp.process.BaseProcess"
    conn: object
    started: float
    deadline: Optional[float]


def _kill(proc) -> None:
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover - terminate nearly always lands
        proc.kill()
        proc.join(timeout=1.0)


def _preload_datasets(tasks: Sequence[_Task]) -> None:
    """Warm the parent's dataset cache so forked workers share pages."""
    from repro.harness.experiments import _cached_dataset

    for key in {(t.spec.dataset, t.spec.scale) for t in tasks}:
        try:
            _cached_dataset(*key)
        except Exception:
            pass  # let the worker fail per-cell instead of killing the grid


def _run_tasks_parallel(
    tasks: List[_Task],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    checkpoint_dir: Optional[str] = None,
) -> Dict[int, CellOutcome]:
    """Fan ``tasks`` out over worker processes; one ``CellOutcome`` each.

    Returns outcomes keyed by each task's first input index.
    """
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    if ctx.get_start_method() == "fork":
        _preload_datasets(tasks)

    queue = deque(tasks)
    running: List[_Running] = []
    outcomes: Dict[int, CellOutcome] = {}

    def finish(task: _Task, outcome: CellOutcome) -> None:
        outcomes[task.indices[0]] = outcome

    def settle(run: _Running, message, crash_error: Optional[str], now: float) -> None:
        task = run.task
        run.conn.close()
        run.proc.join(timeout=1.0)
        elapsed = now - run.started
        if message is not None and message.get("ok"):
            finish(
                task,
                CellOutcome(
                    spec=task.spec,
                    status="ok",
                    result=result_from_payload(message["payload"]),
                    attempts=task.attempts,
                    seconds=elapsed,
                ),
            )
            return
        error = crash_error if message is None else message.get("error", "unknown error")
        task.errors.append(error)
        if task.attempts <= retries:
            queue.append(task)
        else:
            finish(
                task,
                CellOutcome(
                    spec=task.spec,
                    status="failed",
                    error="; ".join(task.errors),
                    attempts=task.attempts,
                    seconds=elapsed,
                ),
            )

    try:
        while queue or running:
            while queue and len(running) < jobs:
                task = queue.popleft()
                task.attempts += 1
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, task.spec.to_dict(), timeout, checkpoint_dir),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                started = time.monotonic()
                deadline = (
                    started + timeout + _KILL_GRACE_SECONDS
                    if timeout is not None
                    else None
                )
                running.append(_Running(task, proc, parent_conn, started, deadline))

            ready = _conn_wait([r.conn for r in running], timeout=0.05)
            now = time.monotonic()
            still: List[_Running] = []
            for run in running:
                message = None
                crash_error = None
                if run.conn in ready or run.conn.poll():
                    try:
                        message = run.conn.recv()
                    except (EOFError, OSError):
                        crash_error = (
                            f"worker crashed (exit code {run.proc.exitcode})"
                        )
                elif not run.proc.is_alive():
                    crash_error = f"worker crashed (exit code {run.proc.exitcode})"
                elif run.deadline is not None and now >= run.deadline:
                    _kill(run.proc)
                    crash_error = (
                        f"CellTimeoutError: exceeded {timeout:g}s "
                        "(worker killed by the parent)"
                    )
                else:
                    still.append(run)
                    continue
                settle(run, message, crash_error, now)
            running = still
    finally:
        for run in running:  # pragma: no cover - only on unexpected unwind
            _kill(run.proc)
    return outcomes


def _run_tasks_serial(
    tasks: List[_Task],
    timeout: Optional[float],
    retries: int,
    checkpoint_dir: Optional[str] = None,
) -> Dict[int, CellOutcome]:
    """Run every task inline, with the same retry/timeout semantics."""
    outcomes: Dict[int, CellOutcome] = {}
    for task in tasks:
        while True:
            task.attempts += 1
            t0 = time.monotonic()
            try:
                raw = _run_inline(task.spec, timeout, checkpoint_dir)
                # Normalize through the lossless payload form so serial
                # results are bitwise identical to worker/cache results.
                result = result_from_payload(result_to_payload(raw))
            except Exception as exc:
                task.errors.append(f"{type(exc).__name__}: {exc}")
                if task.attempts <= retries:
                    continue
                outcomes[task.indices[0]] = CellOutcome(
                    spec=task.spec,
                    status="failed",
                    error="; ".join(task.errors),
                    attempts=task.attempts,
                    seconds=time.monotonic() - t0,
                )
                break
            outcomes[task.indices[0]] = CellOutcome(
                spec=task.spec,
                status="ok",
                result=result,
                attempts=task.attempts,
                seconds=time.monotonic() - t0,
            )
            break
    return outcomes


def run_grid(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: Union[ResultCache, str, "os.PathLike[str]", None] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> GridReport:
    """Execute a batch of grid cells; never raises for a failing cell.

    Parameters
    ----------
    specs:
        The cells to run (duplicates are computed once and shared).
    jobs:
        ``1`` runs inline; ``> 1`` fans out across that many worker
        processes with crash isolation.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, a directory path to
        open one in, or ``None`` to always recompute.
    timeout:
        Per-cell budget in wall seconds.  ``None`` (the default) means
        *unlimited* — no signal handler, interval timer, or parent-side
        kill deadline is installed anywhere.  A finite timeout is
        enforced via ``SIGALRM`` where available (POSIX main thread /
        fresh worker processes) and backstopped by a parent-side kill
        deadline when ``jobs > 1``; see :func:`_can_use_sigalrm` for the
        fallback when neither applies.
    retries:
        Extra attempts after a failed one before the cell is marked
        ``failed``.  ``0`` means exactly one attempt: the first failure
        is final.
    checkpoint_dir:
        Directory for per-iteration checkpoints (``None`` disables
        them).  With a directory, every attempt snapshots after each
        iteration under the spec's cache key, so a retry of a crashed or
        timed-out cell resumes from its last completed iteration instead
        of starting over — in both the serial and process-pool paths.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    t_start = time.monotonic()
    specs = list(specs)
    outcomes: List[Optional[CellOutcome]] = [None] * len(specs)

    # Cache replay + dedup of identical pending cells.
    tasks: Dict[str, _Task] = {}
    for i, spec in enumerate(specs):
        if not isinstance(spec, RunSpec):
            raise TypeError(f"specs[{i}] is {type(spec).__name__}, expected RunSpec")
        key = spec.cache_key()
        if key in tasks:
            tasks[key].indices.append(i)
            continue
        if cache is not None:
            hit = cache.lookup(spec)
            if hit is not None:
                outcomes[i] = CellOutcome(spec=spec, status="cached", result=hit)
                continue
        tasks[key] = _Task(spec=spec, indices=[i])

    pending = list(tasks.values())
    if pending:
        runner = (
            _run_tasks_parallel(pending, min(jobs, len(pending)), timeout,
                                retries, checkpoint_dir)
            if jobs > 1
            else _run_tasks_serial(pending, timeout, retries, checkpoint_dir)
        )
        for task in pending:
            outcome = runner[task.indices[0]]
            if cache is not None and outcome.status == "ok":
                cache.store(task.spec, outcome.result)
            for i in task.indices:
                outcomes[i] = outcome

    assert all(o is not None for o in outcomes)
    return GridReport(
        cells=list(outcomes),
        cache=cache.stats if cache is not None else None,
        jobs=jobs,
        wall_seconds=time.monotonic() - t_start,
    )
