"""Parallel grid runner with a persistent result cache.

The experiment-level analogue of the paper's cross-iteration reuse: grid
cells that were computed in an earlier session are *replayed* from a
content-addressed on-disk cache, and the cells that do need computing fan
out across worker processes with per-cell fault isolation.

* :class:`~repro.runner.spec.RunSpec` — the immutable request object for
  one cell (and its cache key);
* :class:`~repro.runner.cache.ResultCache` — the spec → result store with
  hit/miss/invalidation counters;
* :func:`~repro.runner.executor.run_grid` — the executor;
* :func:`~repro.runner.executor.grid_specs` — cross-product helper.

Exposed on the CLI as ``repro grid`` and through ``--jobs`` on
``repro compare`` / ``repro sweep-ratio``.
"""

from repro.runner.spec import RunSpec
from repro.runner.cache import CacheStats, ResultCache, code_version
from repro.runner.executor import CellOutcome, GridReport, grid_specs, run_grid

__all__ = [
    "RunSpec",
    "CacheStats",
    "ResultCache",
    "code_version",
    "CellOutcome",
    "GridReport",
    "grid_specs",
    "run_grid",
]
