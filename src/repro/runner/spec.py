"""RunSpec — the immutable request object for one experiment cell.

A *cell* is one (dataset, algorithm, engine) point of the paper's grid,
plus everything that determines its outcome: the dataset down-scale, an
optional device-capacity override, and engine-specific options (e.g.
Ascetic's :class:`~repro.core.ascetic.AsceticConfig`).  Because engine runs
are deterministic functions of these inputs, a ``RunSpec`` is also a cache
key: :meth:`RunSpec.cache_key` is a stable content hash that the
:mod:`repro.runner.cache` uses to replay unchanged cells across sessions.

``RunSpec`` is frozen and hashable; option values must themselves be
hashable and serializable (JSON scalars or ``AsceticConfig``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.ascetic import AsceticConfig
from repro.gpusim.fabric import FabricSpec
from repro.gpusim.faults import FaultPlan

__all__ = ["RunSpec"]

#: Option values a spec can carry: JSON scalars plus engine config objects.
OptValue = Union[str, int, float, bool, None, AsceticConfig, FaultPlan,
                 FabricSpec]


def _encode_opt(value: OptValue) -> Any:
    """One engine option → a JSON-able value (configs get a type tag)."""
    if isinstance(value, AsceticConfig):
        return {"__kind__": "AsceticConfig", "fields": value.to_dict()}
    if isinstance(value, FaultPlan):
        return {"__kind__": "FaultPlan", "fields": value.to_dict()}
    if isinstance(value, FabricSpec):
        return {"__kind__": "FabricSpec", "fields": value.to_dict()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"engine option {value!r} is not serializable; use JSON scalars, "
        "AsceticConfig, FaultPlan, or FabricSpec"
    )


def _decode_opt(value: Any) -> OptValue:
    """Inverse of :func:`_encode_opt`."""
    if isinstance(value, dict):
        if value.get("__kind__") == "AsceticConfig":
            return AsceticConfig.from_dict(value["fields"])
        if value.get("__kind__") == "FaultPlan":
            return FaultPlan.from_dict(value["fields"])
        if value.get("__kind__") == "FabricSpec":
            return FabricSpec.from_dict(value["fields"])
        raise ValueError(f"unknown tagged engine option {value!r}")
    return value


@dataclass(frozen=True)
class RunSpec:
    """One grid cell, fully specified.

    Parameters
    ----------
    dataset:
        Table-3 abbreviation (``GS`` / ``FK`` / ``FS`` / ``UK``).
    algorithm:
        Vertex-program name (normalized to upper case).
    engine:
        A name registered in :mod:`repro.engines.registry`.
    scale:
        Dataset down-scale; ``None`` means the benchmark default
        (``repro.harness.experiments.BENCH_SCALE``), resolved eagerly so
        two specs meaning the same run hash identically.
    memory_bytes:
        Optional (scaled) device-capacity override.
    engine_opts:
        Extra keyword options for the engine factory, e.g.
        ``{"config": AsceticConfig(...)}``.  Accepted as a mapping;
        stored as a sorted tuple of pairs so the spec stays hashable.
    seed:
        Run seed feeding the chaos-mode fault injector (inert without a
        ``fault_plan``).  The default ``0`` is omitted from serialization
        so pre-chaos cache keys stay valid.
    fault_plan:
        Optional :class:`~repro.gpusim.faults.FaultPlan` (or its
        ``to_dict`` mapping) injected deterministically into the run.
    """

    dataset: str
    algorithm: str
    engine: str
    scale: Optional[float] = None
    memory_bytes: Optional[int] = None
    engine_opts: Tuple[Tuple[str, OptValue], ...] = field(default=())
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", self.algorithm.upper())
        if self.scale is None:
            from repro.harness.experiments import BENCH_SCALE

            object.__setattr__(self, "scale", BENCH_SCALE)
        object.__setattr__(self, "scale", float(self.scale))
        opts = self.engine_opts
        if isinstance(opts, Mapping):
            opts = tuple(sorted(opts.items()))
        else:
            opts = tuple(sorted((str(k), v) for k, v in opts))
        for _, v in opts:
            _encode_opt(v)  # reject unserializable values eagerly
        object.__setattr__(self, "engine_opts", opts)
        object.__setattr__(self, "seed", int(self.seed))
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            object.__setattr__(self, "fault_plan",
                               FaultPlan.from_dict(self.fault_plan))

    # ------------------------------------------------------------- views
    @property
    def opts(self) -> Dict[str, OptValue]:
        """The engine options as a plain dict."""
        return dict(self.engine_opts)

    def engine_kwargs(self) -> Dict[str, OptValue]:
        """Keyword arguments to pass to the engine factory."""
        return dict(self.engine_opts)

    def label(self) -> str:
        """Short display form: ``dataset/algorithm/engine``."""
        return f"{self.dataset}/{self.algorithm}/{self.engine}"

    # ------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able mapping; inverse of :meth:`from_dict`.

        The chaos fields (``seed``/``fault_plan``) are included only when
        they differ from the fault-free defaults, so every pre-chaos spec
        keeps its exact serialized form — and with it its cache key.
        """
        out: Dict[str, Any] = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "scale": self.scale,
            "memory_bytes": self.memory_bytes,
            "engine_opts": {k: _encode_opt(v) for k, v in self.engine_opts},
        }
        if self.seed != 0:
            out["seed"] = self.seed
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        plan = data.get("fault_plan")
        return cls(
            dataset=data["dataset"],
            algorithm=data["algorithm"],
            engine=data["engine"],
            scale=data.get("scale"),
            memory_bytes=data.get("memory_bytes"),
            engine_opts={
                k: _decode_opt(v) for k, v in (data.get("engine_opts") or {}).items()
            },
            seed=data.get("seed", 0),
            fault_plan=FaultPlan.from_dict(plan) if plan is not None else None,
        )

    def cache_key(self) -> str:
        """Stable content hash of this spec.

        Canonical JSON (sorted keys, exact float repr) hashed with
        SHA-256; the first 24 hex digits name the cache entry on disk.
        The repro *code version* is deliberately not part of the key —
        it is stored inside the cache payload instead, so a version
        mismatch can be counted as an invalidation rather than a
        silent miss (see :class:`repro.runner.cache.ResultCache`).
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]
