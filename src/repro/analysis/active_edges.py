"""Active-edge statistics — the Table 1 measurement.

Table 1 reports the *average percentage of active edges per iteration* for
BFS/SSSP/CC/PR on the friendster and uk datasets — the numbers that justify
both Subway's fine-grained transfers and Ascetic's K = 10 % default (§3.3).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.frontier import active_edge_count
from repro.graph.csr import CSRGraph

__all__ = ["active_edge_fractions", "table1_row"]


def active_edge_fractions(graph: CSRGraph, program: VertexProgram) -> List[float]:
    """Per-iteration active-edge fractions of a host-side reference run."""
    program.validate_graph(graph)
    state = program.init_state(graph)
    fractions: List[float] = []
    m = max(graph.n_edges, 1)
    while state.active.any() and not program.done(state):
        fractions.append(active_edge_count(graph, state.active) / m)
        program.step(graph, state)
    return fractions


def table1_row(graph: CSRGraph, programs: Dict[str, VertexProgram]) -> Dict[str, float]:
    """One Table 1 row: mean active-edge fraction per algorithm.

    ``programs`` maps the column label (BFS/SSSP/CC/PR) to a configured
    program; SSSP entries must be paired with a weighted graph by the
    caller (weights double edge bytes, but Table 1 is a *count* fraction,
    so the same graph works for all four columns).
    """
    row: Dict[str, float] = {}
    for label, prog in programs.items():
        fr = active_edge_fractions(graph, prog)
        row[label] = float(np.mean(fr)) if fr else 0.0
    return row
