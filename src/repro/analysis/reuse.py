"""Reuse-distance analysis — the paper's §1–2 motivation, quantified.

The paper's core observation: graph data *is* reused across iterations,
but the reuse distance (chunks touched between consecutive uses of the
same chunk) is roughly the whole dataset, so any LRU cache smaller than
the dataset thrashes (Fig. 1), while a *pinned* region keeps its hit rate
no matter the distance.  These tools measure that from an access trace:

* :func:`reuse_distances` — classic Mattson stack distances over the
  chunk-access stream;
* :func:`lru_hit_rate_curve` — hit rate as a function of LRU capacity
  (a stack-distance histogram integral), which shows the paper's cliff:
  ≈0 hits until capacity reaches the working set, then everything;
* :func:`pinned_hit_rate` — hit rate of a static pinned region of the
  same capacity, the Ascetic alternative: linear in capacity, no cliff.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["reuse_distances", "reuse_distances_stream", "lru_hit_rate_curve", "pinned_hit_rate"]


def _access_stream(chunk_sets: Sequence[np.ndarray]) -> np.ndarray:
    """Flatten per-iteration touch sets into one access stream.

    Within an iteration, accesses arrive in ascending chunk order (the
    near-sequential scan of Fig. 2).
    """
    if not chunk_sets:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.sort(np.asarray(c, dtype=np.int64)) for c in chunk_sets])


def reuse_distances_stream(stream: np.ndarray) -> np.ndarray:
    """Stack distances of an arbitrary access stream (reference algorithm).

    O(N log N) via a Fenwick tree over last-access positions.  The set-based
    fast path below is cross-validated against this in the test suite.
    """
    stream = np.asarray(stream, dtype=np.int64)
    n = stream.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Fenwick tree marking positions still "live" (most recent access of
    # their chunk).
    tree = np.zeros(n + 1, dtype=np.int64)

    def add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last_pos = {}
    out: List[int] = []
    total_live = 0
    for pos in range(n):
        c = int(stream[pos])
        prev = last_pos.get(c)
        if prev is not None:
            # Distinct chunks touched strictly after prev = live marks in
            # (prev, pos).
            out.append(total_live - prefix(prev))
            add(prev, -1)
            total_live -= 1
        last_pos[c] = pos
        add(pos, 1)
        total_live += 1
    return np.asarray(out, dtype=np.int64)


def reuse_distances(chunk_sets: Sequence[np.ndarray]) -> np.ndarray:
    """Stack distance of every reuse (first touches excluded), vectorized.

    Exploits the per-iteration structure of a trace (each iteration touches
    a *set* of chunks in ascending order, Fig. 2's sequential scan): for a
    chunk ``c`` last touched in iteration ``i`` and touched again in ``j``,
    the distinct chunks in between are

        |touched in (i, j)|                                (whole middle)
        + |{c' > c touched in i but not in the middle}|    (tail of scan i)
        + |{c' < c touched in j but not in the middle or i}| (head of scan j)

    which is a prefix/suffix-sum per (i, j) pair — O(iterations × chunks)
    total instead of a per-access loop.
    """
    sets = [np.unique(np.asarray(c, dtype=np.int64)) for c in chunk_sets]
    sets = [c for c in sets]
    n_iters = len(sets)
    if n_iters == 0:
        return np.empty(0, dtype=np.int64)
    n_chunks = int(max((c[-1] for c in sets if c.size), default=-1)) + 1
    if n_chunks == 0:
        return np.empty(0, dtype=np.int64)
    touched = np.zeros((n_iters, n_chunks), dtype=bool)
    for it, c in enumerate(sets):
        touched[it, c] = True
    # cum[i] = per-chunk count of touches in iterations [0, i].
    cum = np.cumsum(touched, axis=0, dtype=np.int32)

    last = np.full(n_chunks, -1, dtype=np.int64)
    out: List[np.ndarray] = []
    for j, cs in enumerate(sets):
        prev = last[cs]
        reused = prev >= 0
        for i in np.unique(prev[reused]):
            group = cs[reused & (prev == i)]
            if j - 1 >= i + 1:
                mid = (cum[j - 1] - cum[i]) > 0
            else:
                mid = np.zeros(n_chunks, dtype=bool)
            mid_count = int(np.count_nonzero(mid))
            tail_i = touched[i] & ~mid
            # Chunks before c in scan j count whether or not scan i also
            # touched them (their iteration-i access precedes c and falls
            # outside the window; their iteration-j access is inside it).
            head_j = touched[j] & ~mid
            # strictly-greater suffix counts / strictly-less prefix counts
            suffix = np.cumsum(tail_i[::-1])[::-1] - tail_i
            prefix_cnt = np.cumsum(head_j) - head_j
            out.append(mid_count + suffix[group] + prefix_cnt[group])
        last[cs] = j
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out).astype(np.int64)


def lru_hit_rate_curve(
    chunk_sets: Sequence[np.ndarray], capacities: Sequence[int]
) -> List[float]:
    """LRU hit rate at each cache capacity (in chunks), over all accesses.

    A reuse with stack distance d hits iff capacity > d; first touches
    always miss.
    """
    distances = reuse_distances(chunk_sets)
    total_accesses = int(sum(len(np.unique(np.asarray(c))) for c in chunk_sets))
    if total_accesses == 0:
        return [0.0 for _ in capacities]
    d_sorted = np.sort(distances)
    return [
        float(np.searchsorted(d_sorted, cap, side="left")) / total_accesses
        for cap in capacities
    ]


def pinned_hit_rate(chunk_sets: Sequence[np.ndarray], capacity: int) -> float:
    """Hit rate of a static pinned region holding the first ``capacity``
    chunks ever touched — the Static Region alternative to LRU.

    No cliff: hits scale with how much of the access mass the pinned
    chunks carry, independent of reuse distance.
    """
    if capacity <= 0 or not chunk_sets:
        return 0.0
    sets = [np.unique(np.asarray(c, dtype=np.int64)) for c in chunk_sets]
    n_chunks = int(max((c[-1] for c in sets if c.size), default=-1)) + 1
    if n_chunks == 0:
        return 0.0
    touched = np.zeros((len(sets), n_chunks), dtype=bool)
    for it, c in enumerate(sets):
        touched[it, c] = True
    counts = touched.sum(axis=0)
    ever = counts > 0
    total = int(counts.sum())
    if total == 0:
        return 0.0
    # Lazy fill (like Ascetic's): the first `capacity` chunks in first-touch
    # order — (first iteration, ascending id within the scan) — stay pinned;
    # each pinned chunk hits on every touch after its first.
    first_iter = np.argmax(touched, axis=0)
    ids = np.nonzero(ever)[0]
    order = np.lexsort((ids, first_iter[ids]))
    pinned = ids[order][:capacity]
    hits = int((counts[pinned] - 1).sum())
    return hits / total
