"""Access traces (Fig. 2) and Chrome/Perfetto timeline export.

The paper acquires edge-access traces with nvprof while edges live in UVM,
then plots (time, chunk-id) scatter per iteration and per-chunk access
counts.  Here the simulated UVM *is* the memory system, so the
:class:`~repro.engines.uvm_engine.UVMEngine` reports every page touch to an
:class:`AccessTrace`; :class:`TraceSummary` condenses the trace into the
paper's two panels plus the quantities its prose claims:

* *near-sequential scan*: within an iteration the touched chunks sweep the
  id space in order (sequentiality ≈ 1);
* *flat access counts*: every chunk is touched about equally often over the
  run (low coefficient of variation, "no noticeable hot spot");
* *sparse iterations*: only a fraction of chunks per iteration.

The second half of this module exports a recorded
:class:`~repro.gpusim.events.EventLog` as Chrome-trace JSON
(:func:`to_chrome_trace` / :func:`save_chrome_trace`, surfaced as the
``repro trace`` CLI subcommand), loadable in Perfetto (ui.perfetto.dev) or
``chrome://tracing``.  Each lane becomes one timeline row, so the paper's
Fig. 5 overlap story — Subway's sequential staircase versus Ascetic's
concurrently busy gpu/copy/cpu rows — is directly visible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

import numpy as np

from repro.engines.base import RunResult
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec
from repro.gpusim.events import (
    DEVICE_FAULT_KINDS,
    FAULT_KINDS,
    EventLog,
    SimEvent,
)

__all__ = [
    "AccessTrace",
    "TraceSummary",
    "trace_uvm_run",
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
]


@dataclass
class AccessTrace:
    """Recorded (virtual time, chunk ids) events, one record per iteration."""

    times: List[float] = field(default_factory=list)
    chunk_sets: List[np.ndarray] = field(default_factory=list)

    def record(self, t: float, chunk_ids: np.ndarray) -> None:
        self.times.append(float(t))
        self.chunk_sets.append(np.asarray(chunk_ids, dtype=np.int64).copy())

    @property
    def n_iterations(self) -> int:
        return len(self.times)

    def events(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten to parallel (time, chunk) arrays — Fig. 2's scatter."""
        if not self.times:
            return np.empty(0), np.empty(0, dtype=np.int64)
        times = np.concatenate(
            [np.full(c.size, t) for t, c in zip(self.times, self.chunk_sets)]
        )
        chunks = np.concatenate(self.chunk_sets) if self.chunk_sets else np.empty(0, np.int64)
        return times, chunks

    def access_counts(self, n_chunks: int) -> np.ndarray:
        """Per-chunk total access counts — Fig. 2's bottom panels."""
        counts = np.zeros(n_chunks, dtype=np.int64)
        for c in self.chunk_sets:
            counts[c] += 1
        return counts

    def summarize(self, n_chunks: int) -> "TraceSummary":
        per_iter_frac = [c.size / max(n_chunks, 1) for c in self.chunk_sets]
        seqs = []
        for c in self.chunk_sets:
            if c.size >= 2:
                # UVM touches arrive in ascending page order within an
                # iteration batch; sequentiality = fraction of unit-or-small
                # forward steps relative to the chunk spread.
                d = np.diff(np.sort(c))
                seqs.append(float(np.mean(d <= 2)))
        counts = self.access_counts(n_chunks)
        touched = counts[counts > 0]
        cv = float(np.std(touched) / np.mean(touched)) if touched.size else 0.0
        return TraceSummary(
            n_iterations=self.n_iterations,
            n_chunks=n_chunks,
            mean_fraction_per_iteration=float(np.mean(per_iter_frac)) if per_iter_frac else 0.0,
            sequentiality=float(np.mean(seqs)) if seqs else 1.0,
            count_cv=cv,
            touched_fraction=float(np.mean(counts > 0)),
        )


@dataclass(frozen=True)
class TraceSummary:
    """Condensed Fig. 2 claims, assertable by tests and printed by benches."""

    n_iterations: int
    n_chunks: int
    #: Mean fraction of chunks touched per iteration (sparsity claim).
    mean_fraction_per_iteration: float
    #: Fraction of near-unit forward steps in the per-iteration chunk sweep
    #: (≈ 1 means a sequential scan).
    sequentiality: float
    #: Coefficient of variation of per-chunk access counts (≈ 0 means flat,
    #: "no noticeable hot spot").
    count_cv: float
    #: Fraction of chunks ever touched.
    touched_fraction: float


def trace_uvm_run(
    graph: CSRGraph,
    program,
    spec: GPUSpec,
    data_scale: float = 1.0,
) -> tuple[AccessTrace, TraceSummary, "RunResult"]:
    """Run ``program`` under the UVM engine with tracing on (Fig. 2 setup).

    Mirrors the paper's §2 experiment: "we keep all vertices in GPU memory
    and edges in UVM, and acquire the edge-access traces".
    """
    from repro.engines.base import RunResult  # noqa: F401  (doc type)
    from repro.engines.uvm_engine import UVMEngine

    engine = UVMEngine(spec=spec, data_scale=data_scale, pin_fraction=0.0)
    trace = AccessTrace()
    engine.trace = trace
    result = engine.run(graph, program)
    n_chunks = engine._uvm.n_pages
    return trace, trace.summarize(n_chunks), result


# --------------------------------------------------------------------------
# Chrome/Perfetto trace export
# --------------------------------------------------------------------------

#: One Chrome-trace thread row per lane, in schedule order.
LANE_TIDS = {"gpu": 0, "copy": 1, "cpu": 2}
#: Instant (lane-less) markers — UVM faults, pins — get their own row.
MARKER_TID = 3

TraceSource = Union[EventLog, RunResult, Iterable[SimEvent]]


def _source_events(source: TraceSource) -> List[SimEvent]:
    if isinstance(source, RunResult):
        if source.event_log is None:
            raise ValueError(
                "RunResult carries no event log — run the engine with "
                "record_events=True (engine opt / RunSpec engine_opts)"
            )
        return source.event_log.events
    if isinstance(source, EventLog):
        if not source.record:
            raise ValueError(
                "EventLog ran in lean mode; construct with record=True "
                "(engine record_events=True) to export a trace"
            )
        return source.events
    return list(source)


def _event_args(e: SimEvent) -> Dict[str, Any]:
    """The per-slice ``args`` payload shared by both export modes."""
    args: Dict[str, Any] = {"kind": e.kind}
    if e.phase is not None:
        args["phase"] = e.phase
    if e.iteration is not None:
        args["iteration"] = e.iteration
    args.update({k: v for k, v in e.to_dict().items()
                 if k not in ("lane", "kind", "label", "start", "end",
                              "phase", "iteration", "device", "extra")})
    args.update(dict(e.extra))
    return args


def chrome_trace_events(source: TraceSource) -> List[Dict[str, Any]]:
    """Flatten events to the Chrome-trace ``traceEvents`` list.

    Lane-occupying events become complete slices (``ph="X"`` with ``ts`` /
    ``dur`` in microseconds); lane-less markers become instants
    (``ph="i"``).  Metadata records name the process and one thread per
    lane so Perfetto renders labelled rows.

    A single-device log (no event carries a ``device``) exports exactly as
    it always has — one ``repro-sim`` process, pid 0, byte-identical output.
    A fabric log gets one named process per device (``pid`` = device id,
    ``repro-sim:dev<d>``) plus a shared ``repro-fabric`` process for
    device-less markers (the serve layer's request lifecycle), so Perfetto
    renders the fleet as parallel process groups.  Fault and recovery
    events on a fabric log additionally drive a per-device ``faults``
    counter track (``ph="C"``), one running count per fault kind, so chaos
    activity is visible at a glance in each device's process group.
    """
    events = _source_events(source)
    devices = sorted({e.device for e in events if e.device is not None})
    if devices:
        return _multi_device_trace_events(events, devices)
    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "repro-sim"},
    }]
    for lane, tid in sorted(LANE_TIDS.items(), key=lambda kv: kv[1]):
        out.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": lane},
        })
    out.append({
        "name": "thread_name", "ph": "M", "pid": 0, "tid": MARKER_TID,
        "args": {"name": "markers"},
    })
    next_tid = MARKER_TID + 1
    tids = dict(LANE_TIDS)
    for e in events:
        args = _event_args(e)
        if e.is_instant:
            out.append({
                "name": e.label or e.kind, "ph": "i", "s": "t",
                "ts": e.start * 1e6, "pid": 0, "tid": MARKER_TID,
                "cat": e.kind, "args": args,
            })
            continue
        tid = tids.get(e.lane)
        if tid is None:  # an engine invented a lane: give it its own row
            tid = tids[e.lane] = next_tid
            next_tid += 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": e.lane},
            })
        out.append({
            "name": e.label or e.kind, "ph": "X",
            "ts": e.start * 1e6, "dur": e.duration * 1e6,
            "pid": 0, "tid": tid,
            # Fault/retry slices keep their own category even inside a
            # phase, so Perfetto can colour and filter chaos activity.
            "cat": e.kind if e.kind in FAULT_KINDS else (e.phase or e.kind),
            "args": args,
        })
    return out


def _multi_device_trace_events(events: List[SimEvent],
                               devices: List[int]) -> List[Dict[str, Any]]:
    """The fabric export: one Chrome-trace process per device.

    Device ids become pids directly; device-less markers (serve-layer
    request lifecycle, fabric-wide bookkeeping) live in a separate
    ``repro-fabric`` process one pid above the highest device.
    """
    fabric_pid = max(devices) + 1
    out: List[Dict[str, Any]] = []
    tids: Dict[int, Dict[str, int]] = {}
    next_tid: Dict[int, int] = {}
    for d in devices:
        out.append({
            "name": "process_name", "ph": "M", "pid": d, "tid": 0,
            "args": {"name": f"repro-sim:dev{d}"},
        })
        for lane, tid in sorted(LANE_TIDS.items(), key=lambda kv: kv[1]):
            out.append({
                "name": "thread_name", "ph": "M", "pid": d, "tid": tid,
                "args": {"name": lane},
            })
        out.append({
            "name": "thread_name", "ph": "M", "pid": d, "tid": MARKER_TID,
            "args": {"name": "markers"},
        })
        tids[d] = dict(LANE_TIDS)
        next_tid[d] = MARKER_TID + 1
    out.append({
        "name": "process_name", "ph": "M", "pid": fabric_pid, "tid": 0,
        "args": {"name": "repro-fabric"},
    })
    out.append({
        "name": "thread_name", "ph": "M", "pid": fabric_pid,
        "tid": MARKER_TID, "args": {"name": "markers"},
    })
    fault_counts: Dict[int, Dict[str, int]] = {}
    for e in events:
        args = _event_args(e)
        pid = e.device if e.device is not None else fabric_pid
        if e.kind in FAULT_KINDS or e.kind in DEVICE_FAULT_KINDS:
            # Running per-device fault counters, one Chrome counter track
            # per process: fold_device_faults as a timeline.
            counts = fault_counts.setdefault(pid, {})
            key = "fault_" + e.kind.replace("-", "_")
            counts[key] = counts.get(key, 0) + 1
            out.append({
                "name": "faults", "ph": "C", "ts": e.start * 1e6,
                "pid": pid, "args": dict(sorted(counts.items())),
            })
        if e.is_instant:
            out.append({
                "name": e.label or e.kind, "ph": "i", "s": "t",
                "ts": e.start * 1e6, "pid": pid, "tid": MARKER_TID,
                "cat": e.kind, "args": args,
            })
            continue
        lane_tids = tids.setdefault(pid, {})
        tid = lane_tids.get(e.lane)
        if tid is None:
            tid = lane_tids[e.lane] = next_tid.get(pid, MARKER_TID + 1)
            next_tid[pid] = tid + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": e.lane},
            })
        out.append({
            "name": e.label or e.kind, "ph": "X",
            "ts": e.start * 1e6, "dur": e.duration * 1e6,
            "pid": pid, "tid": tid,
            "cat": e.kind if e.kind in FAULT_KINDS else (e.phase or e.kind),
            "args": args,
        })
    return out


def to_chrome_trace(source: TraceSource) -> Dict[str, Any]:
    """The full Chrome-trace JSON object for a recorded run.

    Accepts a :class:`~repro.engines.base.RunResult` (with an attached
    event log), a recorded :class:`~repro.gpusim.events.EventLog`, or a
    raw event iterable.
    """
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(source),
        "displayTimeUnit": "ms",
    }
    if isinstance(source, RunResult):
        doc["otherData"] = {
            "engine": source.engine,
            "algorithm": source.algorithm,
            "graph": source.graph_name,
            "iterations": source.iterations,
            "elapsed_seconds": source.elapsed_seconds,
        }
    return doc


def save_chrome_trace(path: "str | Path", source: TraceSource) -> Path:
    """Write the Chrome-trace JSON for ``source`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(source)))
    return path
