"""Chunk-granularity access traces — the Fig. 2 measurement.

The paper acquires edge-access traces with nvprof while edges live in UVM,
then plots (time, chunk-id) scatter per iteration and per-chunk access
counts.  Here the simulated UVM *is* the memory system, so the
:class:`~repro.engines.uvm_engine.UVMEngine` reports every page touch to an
:class:`AccessTrace`; :class:`TraceSummary` condenses the trace into the
paper's two panels plus the quantities its prose claims:

* *near-sequential scan*: within an iteration the touched chunks sweep the
  id space in order (sequentiality ≈ 1);
* *flat access counts*: every chunk is touched about equally often over the
  run (low coefficient of variation, "no noticeable hot spot");
* *sparse iterations*: only a fraction of chunks per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec

__all__ = ["AccessTrace", "TraceSummary", "trace_uvm_run"]


@dataclass
class AccessTrace:
    """Recorded (virtual time, chunk ids) events, one record per iteration."""

    times: List[float] = field(default_factory=list)
    chunk_sets: List[np.ndarray] = field(default_factory=list)

    def record(self, t: float, chunk_ids: np.ndarray) -> None:
        self.times.append(float(t))
        self.chunk_sets.append(np.asarray(chunk_ids, dtype=np.int64).copy())

    @property
    def n_iterations(self) -> int:
        return len(self.times)

    def events(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten to parallel (time, chunk) arrays — Fig. 2's scatter."""
        if not self.times:
            return np.empty(0), np.empty(0, dtype=np.int64)
        times = np.concatenate(
            [np.full(c.size, t) for t, c in zip(self.times, self.chunk_sets)]
        )
        chunks = np.concatenate(self.chunk_sets) if self.chunk_sets else np.empty(0, np.int64)
        return times, chunks

    def access_counts(self, n_chunks: int) -> np.ndarray:
        """Per-chunk total access counts — Fig. 2's bottom panels."""
        counts = np.zeros(n_chunks, dtype=np.int64)
        for c in self.chunk_sets:
            counts[c] += 1
        return counts

    def summarize(self, n_chunks: int) -> "TraceSummary":
        per_iter_frac = [c.size / max(n_chunks, 1) for c in self.chunk_sets]
        seqs = []
        for c in self.chunk_sets:
            if c.size >= 2:
                # UVM touches arrive in ascending page order within an
                # iteration batch; sequentiality = fraction of unit-or-small
                # forward steps relative to the chunk spread.
                d = np.diff(np.sort(c))
                seqs.append(float(np.mean(d <= 2)))
        counts = self.access_counts(n_chunks)
        touched = counts[counts > 0]
        cv = float(np.std(touched) / np.mean(touched)) if touched.size else 0.0
        return TraceSummary(
            n_iterations=self.n_iterations,
            n_chunks=n_chunks,
            mean_fraction_per_iteration=float(np.mean(per_iter_frac)) if per_iter_frac else 0.0,
            sequentiality=float(np.mean(seqs)) if seqs else 1.0,
            count_cv=cv,
            touched_fraction=float(np.mean(counts > 0)),
        )


@dataclass(frozen=True)
class TraceSummary:
    """Condensed Fig. 2 claims, assertable by tests and printed by benches."""

    n_iterations: int
    n_chunks: int
    #: Mean fraction of chunks touched per iteration (sparsity claim).
    mean_fraction_per_iteration: float
    #: Fraction of near-unit forward steps in the per-iteration chunk sweep
    #: (≈ 1 means a sequential scan).
    sequentiality: float
    #: Coefficient of variation of per-chunk access counts (≈ 0 means flat,
    #: "no noticeable hot spot").
    count_cv: float
    #: Fraction of chunks ever touched.
    touched_fraction: float


def trace_uvm_run(
    graph: CSRGraph,
    program,
    spec: GPUSpec,
    data_scale: float = 1.0,
) -> tuple[AccessTrace, TraceSummary, "RunResult"]:
    """Run ``program`` under the UVM engine with tracing on (Fig. 2 setup).

    Mirrors the paper's §2 experiment: "we keep all vertices in GPU memory
    and edges in UVM, and acquire the edge-access traces".
    """
    from repro.engines.base import RunResult  # noqa: F401  (doc type)
    from repro.engines.uvm_engine import UVMEngine

    engine = UVMEngine(spec=spec, data_scale=data_scale, pin_fraction=0.0)
    trace = AccessTrace()
    engine.trace = trace
    result = engine.run(graph, program)
    n_chunks = engine._uvm.n_pages
    return trace, trace.summarize(n_chunks), result
