"""Optimization breakdown — the Fig. 8 measurement.

§4.3 decomposes Ascetic's gain over Subway into *Static savings* (data
reuse / avoided transfers from the Static Region, measured with overlap
explicitly disabled) and *Overlapping savings* (the additional gain from
running static compute concurrently with the on-demand gather/transfer).
The same three runs produce both numbers:

    static_saving  = (T_subway − T_ascetic_no_overlap) / T_subway
    overlap_saving = (T_ascetic_no_overlap − T_ascetic) / T_subway
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import VertexProgram
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.base import RunResult
from repro.engines.subway import SubwayEngine
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec

__all__ = ["OptimizationBreakdown", "measure_breakdown"]


@dataclass(frozen=True)
class OptimizationBreakdown:
    """Fig. 8's bar for one (algorithm, dataset) cell."""

    subway_seconds: float
    no_overlap_seconds: float
    ascetic_seconds: float

    @property
    def static_saving(self) -> float:
        """Execution-time share saved by the Static Region alone."""
        return (self.subway_seconds - self.no_overlap_seconds) / self.subway_seconds

    @property
    def overlap_saving(self) -> float:
        """Additional share saved by compute/transfer overlap (§3.2)."""
        return (self.no_overlap_seconds - self.ascetic_seconds) / self.subway_seconds

    @property
    def total_saving(self) -> float:
        return (self.subway_seconds - self.ascetic_seconds) / self.subway_seconds


def measure_breakdown(
    graph: CSRGraph,
    program_factory,
    spec: GPUSpec,
    data_scale: float = 1.0,
    config: AsceticConfig | None = None,
) -> OptimizationBreakdown:
    """Run the three configurations of §4.3 on one workload.

    ``program_factory`` is a zero-argument callable returning a fresh
    program (state must not be shared between runs).
    """
    cfg = config or AsceticConfig()
    t_subway = SubwayEngine(spec=spec, data_scale=data_scale).run(
        graph, program_factory()
    ).elapsed_seconds
    t_no_overlap = AsceticEngine(
        spec=spec, data_scale=data_scale, config=cfg.with_(overlap=False)
    ).run(graph, program_factory()).elapsed_seconds
    t_ascetic = AsceticEngine(
        spec=spec, data_scale=data_scale, config=cfg.with_(overlap=True)
    ).run(graph, program_factory()).elapsed_seconds
    return OptimizationBreakdown(
        subway_seconds=t_subway,
        no_overlap_seconds=t_no_overlap,
        ascetic_seconds=t_ascetic,
    )
