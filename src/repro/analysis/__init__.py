"""Analysis tooling that regenerates the paper's measurements.

* :mod:`repro.analysis.traces` — chunk-granularity access traces (Fig. 2);
* :mod:`repro.analysis.active_edges` — per-iteration active-edge fractions
  (Table 1);
* :mod:`repro.analysis.memory_usage` — per-iteration GPU memory demand of
  the fine-grained scheme (Table 2) and the §2.2 idle measurement;
* :mod:`repro.analysis.breakdown` — Static vs Overlapping savings (Fig. 8);
* :mod:`repro.analysis.reuse` — reuse-distance / LRU-vs-pinned analysis
  (the §1–2 motivation, quantified);
* :mod:`repro.analysis.predict` — closed-form transfer predictions per
  engine (model-vs-measurement validation and what-if planning);
* :mod:`repro.analysis.report` — fixed-width tables, normalization,
  geomean, ASCII sparklines for the figure benches.
"""

from repro.analysis.traces import (
    AccessTrace,
    TraceSummary,
    trace_uvm_run,
    chrome_trace_events,
    to_chrome_trace,
    save_chrome_trace,
)
from repro.analysis.active_edges import active_edge_fractions, table1_row
from repro.analysis.memory_usage import subway_memory_usage, subway_idle_fraction
from repro.analysis.breakdown import OptimizationBreakdown, measure_breakdown
from repro.analysis.report import format_table, geomean, sparkline
from repro.analysis.reuse import reuse_distances, lru_hit_rate_curve, pinned_hit_rate
from repro.analysis.predict import (
    ActiveTrace,
    record_active_trace,
    predict_pt_bytes,
    predict_subway_bytes,
)

__all__ = [
    "AccessTrace",
    "TraceSummary",
    "trace_uvm_run",
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "active_edge_fractions",
    "table1_row",
    "subway_memory_usage",
    "subway_idle_fraction",
    "OptimizationBreakdown",
    "measure_breakdown",
    "format_table",
    "geomean",
    "sparkline",
    "reuse_distances",
    "lru_hit_rate_curve",
    "pinned_hit_rate",
    "ActiveTrace",
    "record_active_trace",
    "predict_pt_bytes",
    "predict_subway_bytes",
]
