"""Closed-form transfer predictions — the model-vs-measurement layer.

Each engine's data movement has a closed form in terms of the algorithm's
per-iteration active sets.  These predictors compute it *without running
the engine*; the test suite asserts that engine-measured bytes match the
prediction (exactly, for the deterministic policies) — evidence that the
engines implement the policies they claim, and a planning tool for users
("how much would policy X move on my workload?").

All predictions are in charged (paper-scale) bytes, like engine metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.frontier import active_edge_count
from repro.engines.subway import OFFSET_BYTES_PER_ACTIVE_VERTEX
from repro.graph.csr import CSRGraph
from repro.graph.partition import partition_by_bytes, partitions_of_vertices
from repro.gpusim.device import GPUSpec
from repro.gpusim.pcie import PCIeLink

__all__ = ["ActiveTrace", "record_active_trace", "predict_pt_bytes", "predict_subway_bytes"]


@dataclass
class ActiveTrace:
    """Per-iteration active sets of one algorithm run (host-side replay)."""

    masks: List[np.ndarray]
    n_active_vertices: List[int]
    n_active_edges: List[int]

    @property
    def iterations(self) -> int:
        return len(self.masks)


def record_active_trace(graph: CSRGraph, program: VertexProgram) -> ActiveTrace:
    """Run the program host-side and record every frontier."""
    program.validate_graph(graph)
    state = program.init_state(graph)
    masks, nv, ne = [], [], []
    while state.active.any() and not program.done(state):
        masks.append(state.active.copy())
        nv.append(state.n_active)
        ne.append(active_edge_count(graph, state.active))
        program.step(graph, state)
    return ActiveTrace(masks=masks, n_active_vertices=nv, n_active_edges=ne)


def _payload(link: PCIeLink, nbytes: int, charge_scale: float) -> int:
    return link.payload_bytes(int(round(nbytes * charge_scale)))


def predict_pt_bytes(
    graph: CSRGraph,
    trace: ActiveTrace,
    spec: GPUSpec,
    data_scale: float = 1.0,
    double_buffer: bool = False,
) -> int:
    """H2D bytes the PT engine will move for this trace.

    Vertex state once, then every touched partition, whole, every
    iteration — the Fig. 1 swap pattern.
    """
    charge = 1.0 / data_scale
    budget = spec.memory_bytes - graph.vertex_state_bytes
    if double_buffer:
        budget //= 2
    parts = partition_by_bytes(graph, budget)
    total = _payload(spec.pcie, graph.vertex_state_bytes, charge)
    for mask in trace.masks:
        touched = partitions_of_vertices(graph, parts, mask)
        for pid in np.nonzero(touched)[0]:
            total += _payload(spec.pcie, parts[pid].nbytes, charge)
    return total


def predict_subway_bytes(
    graph: CSRGraph,
    trace: ActiveTrace,
    spec: GPUSpec,
    data_scale: float = 1.0,
) -> int:
    """H2D bytes the (sequential) Subway engine will move for this trace.

    Vertex state once, then per iteration the gathered subgraph: active
    edges plus the per-active-vertex offset structures, split into
    staging-buffer rounds (burst rounding applies per round).
    """
    charge = 1.0 / data_scale
    staging = spec.memory_bytes - graph.vertex_state_bytes
    total = _payload(spec.pcie, graph.vertex_state_bytes, charge)
    for n_vertices, n_edges in zip(trace.n_active_vertices, trace.n_active_edges):
        iter_bytes = (
            n_edges * graph.bytes_per_edge
            + n_vertices * OFFSET_BYTES_PER_ACTIVE_VERTEX
        )
        rounds = max(-(-iter_bytes // staging), 1)
        left = iter_bytes
        for r in range(rounds):
            share = -(-left // (rounds - r))
            left -= share
            total += _payload(spec.pcie, share, charge)
    return total
