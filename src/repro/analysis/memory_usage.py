"""Fine-grained memory-usage statistics — Table 2 and the §2.2 idle claim.

Table 2 measures how much GPU memory the fine-grained (Subway-style) scheme
actually uses per iteration: the gathered subgraph.  The point of the table
is that it is a *tiny* fraction of an 8–16 GB card — the under-utilization
Ascetic's Static Region exists to fix.  §2.2 also reports 68 % GPU idle
time for BFS on friendster under the sequential pipeline; both numbers fall
out of one Subway run.
"""

from __future__ import annotations

from repro.algorithms.base import VertexProgram
from repro.engines.base import RunResult
from repro.engines.subway import SubwayEngine
from repro.graph.csr import CSRGraph
from repro.gpusim.device import GPUSpec

__all__ = ["subway_memory_usage", "subway_idle_fraction", "run_subway"]


def run_subway(
    graph: CSRGraph, program: VertexProgram, spec: GPUSpec, data_scale: float = 1.0
) -> RunResult:
    """One Subway run configured like the paper's measurement platform."""
    return SubwayEngine(spec=spec, data_scale=data_scale).run(graph, program)


def subway_memory_usage(result: RunResult) -> float:
    """Average bytes of GPU memory the gathered subgraph needs per
    iteration, at paper scale (Table 2's cell)."""
    return result.extra.get("avg_iteration_bytes", 0.0)


def subway_idle_fraction(result: RunResult) -> float:
    """Fraction of the run the GPU compute engine sat idle (§2.2's 68 %)."""
    return result.gpu_idle_fraction
