"""Report formatting shared by the benchmark harness.

Every bench prints the same artifacts the paper does — fixed-width tables
for Tables 1/2/4/5 and ASCII series for the figures — so a run's stdout
can be compared against the paper side by side.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["format_table", "geomean", "sparkline", "human_bytes"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table (right-aligned numbers, left-aligned text)."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(c: object) -> str:
    if isinstance(c, float):
        if c != c:  # NaN
            return "-"
        if abs(c) >= 1000 or (abs(c) < 0.01 and c != 0):
            return f"{c:.3g}"
        return f"{c:.2f}"
    return str(c)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    vals = [v for v in values]
    if not vals:
        return float("nan")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line ASCII rendering of a series (figure benches)."""
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    return "".join(_BLOCKS[int((v - lo) / span * (len(_BLOCKS) - 1))] for v in vals)


def human_bytes(n: float) -> str:
    """1234567890.0 → '1.15GB' (paper-style magnitudes)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.2f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.2f}TB"
