"""Deterministic multi-tenant serving on top of the simulated engines.

Ascetic's contribution is cross-*iteration* data reuse: a warm Static
Region amortizes PCIe transfers across a run's supersteps (§3.2–3.3).
This package lifts the same idea one level up, to cross-*request* reuse:
consecutive requests against the same graph reuse a pooled engine's warm
Static Region instead of re-filling it, and a graph-affinity scheduler
orders dispatches to make that happen as often as fairness allows.

The moving parts, each its own module:

:mod:`~repro.serve.request`
    Typed ``Request``/``Response``, affinity keys, and the open-loop
    seeded-Poisson workload generator (simulated clock only — a seed
    replays the exact trace).
:mod:`~repro.serve.queue`
    Bounded admission queue with reject / drop-oldest / deadline
    backpressure and per-tenant fairness accounting.
:mod:`~repro.serve.scheduler`
    FIFO baseline and the graph-affinity policy with a starvation guard.
:mod:`~repro.serve.pool`
    The per-graph engine pool whose hits arm
    ``Engine.reset_for_request(keep_static=True)`` — the warm-start path.
:mod:`~repro.serve.batching`
    Multi-source BFS/SSSP fused into one frontier program (shared edge
    reads; the batch-size/latency knob).
:mod:`~repro.serve.slo`
    SLO report folded from request-lifecycle events (p50/p95/p99 split
    queueing vs service, goodput, shed rate), schema-versioned and
    digest-stable.
:mod:`~repro.serve.simulator`
    The single-server discrete-event loop tying it together;
    ``repro serve`` on the CLI.
:mod:`~repro.serve.fleet`
    The multi-device generalization: a :class:`~repro.serve.fleet.Router`
    places each dispatch on a per-device engine pool (replicating hot
    graphs) or fabric-wide through the sharded engine (graphs exceeding
    single-device capacity); ``repro fleet`` / ``repro serve --devices N``
    on the CLI.

Determinism contract: no wall clock, no unseeded randomness, no dict-order
dependence anywhere in this package — ``run_load_test`` is a pure function
of its config, and its digest is pinned in CI.  See ``docs/serving.md``.
"""

from repro.serve.batching import BatchedBFS, BatchedSSSP, make_batched
from repro.serve.fleet import (
    FABRIC,
    FleetConfig,
    FleetResult,
    RouteDecision,
    Router,
    fleet_quick_config,
    run_fleet_test,
)
from repro.serve.pool import EnginePool, PoolStats
from repro.serve.queue import QUEUE_POLICIES, AdmissionQueue, TenantAccount
from repro.serve.request import (
    BATCHABLE,
    Request,
    RequestStatus,
    Response,
    engine_key,
    generate_requests,
    variant_for,
)
from repro.serve.scheduler import (
    AffinityScheduler,
    FifoScheduler,
    Scheduler,
    make_scheduler,
)
from repro.serve.simulator import (
    LoadTestResult,
    ServeConfig,
    WorkloadCatalog,
    quick_config,
    run_load_test,
)
from repro.serve.slo import (
    SLO_SCHEMA,
    SLO_SCHEMA_DEGRADED,
    SLO_SCHEMA_FLEET,
    fold_slo,
    report_digest,
)

__all__ = [
    # requests + workload
    "Request",
    "Response",
    "RequestStatus",
    "BATCHABLE",
    "variant_for",
    "engine_key",
    "generate_requests",
    # admission
    "AdmissionQueue",
    "TenantAccount",
    "QUEUE_POLICIES",
    # scheduling
    "Scheduler",
    "FifoScheduler",
    "AffinityScheduler",
    "make_scheduler",
    # warm engine pool
    "EnginePool",
    "PoolStats",
    # batching
    "BatchedBFS",
    "BatchedSSSP",
    "make_batched",
    # SLO
    "SLO_SCHEMA",
    "SLO_SCHEMA_FLEET",
    "SLO_SCHEMA_DEGRADED",
    "fold_slo",
    "report_digest",
    # load tests
    "ServeConfig",
    "WorkloadCatalog",
    "LoadTestResult",
    "run_load_test",
    "quick_config",
    # fleet
    "FABRIC",
    "FleetConfig",
    "FleetResult",
    "Router",
    "RouteDecision",
    "run_fleet_test",
    "fleet_quick_config",
]
