"""Dispatch-order policies: FIFO baseline and graph-affinity.

Both schedulers are pure functions of ``(queued requests, now, warm
keys)`` — no internal state, no randomness — and both share one base
order: priority first (higher runs sooner), then arrival, then request id
as the deterministic tiebreak.

:class:`FifoScheduler` dispatches strictly in that order; it is the
baseline the acceptance test compares against.

:class:`AffinityScheduler` prefers requests whose affinity key
(:func:`~repro.serve.request.engine_key`) already has a warm engine in
the pool, so consecutive dispatches keep hitting the same warm Static
Region instead of ping-ponging between graphs and re-filling on every
run — the cross-request form of the paper's cross-iteration reuse.  A
starvation guard caps the reordering: once the front-of-line request has
waited longer than ``aging_seconds``, it dispatches regardless of
affinity.

Both schedulers batch: after picking the lead request they extend the
dispatch with up to ``max_batch - 1`` queued requests that can fuse with
it (same key, same batchable algorithm — see
:mod:`repro.serve.batching`), taken in the same base order.
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence, Tuple

from repro.serve.request import BATCHABLE, Request, engine_key

__all__ = ["Scheduler", "FifoScheduler", "AffinityScheduler", "make_scheduler"]


def _base_key(r: Request) -> Tuple[int, float, int]:
    return (-r.priority, r.arrival, r.request_id)


class Scheduler(abc.ABC):
    """Order policy: which queued request(s) run next."""

    def __init__(self, max_batch: int = 1) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)

    @abc.abstractmethod
    def _pick_lead(self, items: Sequence[Request], now: float,
                   warm_keys: Sequence[Hashable]) -> Request:
        """Choose the request that anchors the next dispatch."""

    def select(self, items: Sequence[Request], now: float,
               warm_keys: Sequence[Hashable] = ()) -> Tuple[Request, ...]:
        """The next batch to dispatch (empty when nothing is queued)."""
        if not items:
            return ()
        lead = self._pick_lead(items, now, warm_keys)
        batch = [lead]
        if self.max_batch > 1 and lead.algorithm in BATCHABLE:
            key = engine_key(lead)
            mates = [r for r in items
                     if r is not lead and r.algorithm == lead.algorithm
                     and engine_key(r) == key]
            mates.sort(key=_base_key)
            batch.extend(mates[: self.max_batch - 1])
        return tuple(batch)


class FifoScheduler(Scheduler):
    """Strict base order: priority, then arrival, then request id."""

    name = "fifo"

    def _pick_lead(self, items: Sequence[Request], now: float,
                   warm_keys: Sequence[Hashable]) -> Request:
        return min(items, key=_base_key)


class AffinityScheduler(Scheduler):
    """Warm-key preference with an aging cap on the reordering."""

    name = "affinity"

    def __init__(self, max_batch: int = 1, aging_seconds: float = 60.0) -> None:
        super().__init__(max_batch)
        if aging_seconds <= 0:
            raise ValueError("aging_seconds must be positive")
        self.aging_seconds = float(aging_seconds)

    def _pick_lead(self, items: Sequence[Request], now: float,
                   warm_keys: Sequence[Hashable]) -> Request:
        head = min(items, key=_base_key)
        if now - head.arrival > self.aging_seconds:
            return head  # starvation guard: affinity never blocks forever
        warm = set(warm_keys)
        warm_items = [r for r in items if engine_key(r) in warm]
        if warm_items:
            return min(warm_items, key=_base_key)
        return head


def make_scheduler(name: str, max_batch: int = 1,
                   aging_seconds: float = 60.0) -> Scheduler:
    """Construct a scheduler by CLI name (``fifo`` / ``affinity``)."""
    if name == "fifo":
        return FifoScheduler(max_batch=max_batch)
    if name == "affinity":
        return AffinityScheduler(max_batch=max_batch,
                                 aging_seconds=aging_seconds)
    raise ValueError(f"unknown scheduler {name!r} (fifo/affinity)")
