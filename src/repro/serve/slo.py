"""SLO metrics as a pure fold over request-lifecycle events.

The load-test simulator narrates every request through instant marker
events (:data:`repro.gpusim.events.REQUEST_KINDS`) on the serve clock:
``request-arrive`` (label ``tenant/graph/algo``, with the deadline in
``extra``), ``request-admit``, ``request-shed`` (label = reason),
``request-start`` (batch size + warm flag in ``extra``) and
``request-complete``; ``warm-hit`` / ``warm-miss`` record each dispatch's
pool outcome.  :func:`fold_slo` replays that stream into the
schema-versioned SLO report — the same replayability contract the rest of
the repo uses (metrics are folds over the event log, never separately
maintained truth).

Percentiles use the nearest-rank method on the sorted sample: no
interpolation, no float averaging of neighbors, so the report is a pure
function of the event stream and digests bit-identically across runs —
:func:`report_digest` is what the CI smoke job pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, Iterable, List

from repro.gpusim.events import SimEvent

__all__ = ["SLO_SCHEMA", "SLO_SCHEMA_FLEET", "fold_slo", "report_digest",
           "canonical_json"]

#: Report schema identifier; bump on any shape change.
SLO_SCHEMA = "repro.serve/1"

#: Schema a report carries when it includes the per-device ``fleet``
#: section (multi-device load tests emit ``dispatch`` markers; the
#: single-server simulator never does, so its reports — and the pinned
#: CI digest — keep :data:`SLO_SCHEMA` exactly).
SLO_SCHEMA_FLEET = "repro.serve/2-fleet"


def _percentiles(samples: List[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 plus mean/max over ``samples``."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(samples)
    n = len(ordered)

    def rank(p: float) -> float:
        return ordered[min(max(math.ceil(p * n), 1), n) - 1]

    return {
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "mean": sum(ordered) / n,
        "max": ordered[-1],
    }


def fold_slo(events: Iterable[SimEvent], horizon: float | None = None) -> Dict[str, Any]:
    """Fold request-lifecycle markers into the SLO report dict.

    ``horizon`` (the load test's end time) defaults to the latest event
    timestamp; goodput and throughput are completions per simulated
    second over it.
    """
    arrive: Dict[int, SimEvent] = {}
    start: Dict[int, SimEvent] = {}
    complete: Dict[int, SimEvent] = {}
    shed: Dict[int, SimEvent] = {}
    admitted = 0
    warm_hits = 0
    warm_misses = 0
    dispatches: List[SimEvent] = []
    last_t = 0.0
    for e in events:
        last_t = max(last_t, e.end)
        extra = dict(e.extra)
        rid = int(extra["request"]) if "request" in extra else None
        if e.kind == "request-arrive":
            arrive[rid] = e
        elif e.kind == "request-admit":
            admitted += 1
        elif e.kind == "request-shed":
            shed[rid] = e
        elif e.kind == "request-start":
            start[rid] = e
        elif e.kind == "request-complete":
            complete[rid] = e
        elif e.kind == "warm-hit":
            warm_hits += 1
        elif e.kind == "warm-miss":
            warm_misses += 1
        elif e.kind == "dispatch":
            dispatches.append(e)
    if horizon is None:
        horizon = last_t

    e2e: List[float] = []
    queue: List[float] = []
    service: List[float] = []
    deadline_met = 0
    tenants: Dict[str, Dict[str, float]] = {}

    def tenant_of(event: SimEvent) -> str:
        return event.label.split("/", 2)[0]

    def tenant_bucket(name: str) -> Dict[str, float]:
        bucket = tenants.get(name)
        if bucket is None:
            bucket = tenants[name] = {
                "arrived": 0, "shed": 0, "completed": 0,
                "e2e_seconds": 0.0, "service_seconds": 0.0,
            }
        return bucket

    for rid, ev in sorted(arrive.items()):
        tenant_bucket(tenant_of(ev))["arrived"] += 1
    for rid, ev in sorted(shed.items()):
        src = arrive.get(rid, ev)
        tenant_bucket(tenant_of(src))["shed"] += 1
    for rid, done in sorted(complete.items()):
        came = arrive.get(rid)
        began = start.get(rid)
        if came is None or began is None:
            continue  # torn lifecycle (clipped log) — not countable
        e2e.append(done.end - came.start)
        queue.append(began.start - came.start)
        service.append(done.end - began.start)
        deadline = dict(came.extra).get("deadline", -1.0)
        if deadline < 0 or done.end <= deadline:
            deadline_met += 1
        bucket = tenant_bucket(tenant_of(came))
        bucket["completed"] += 1
        bucket["e2e_seconds"] += done.end - came.start
        bucket["service_seconds"] += done.end - began.start

    arrived = len(arrive)
    completed = len(complete)
    out = {
        "schema": SLO_SCHEMA,
        "horizon_seconds": horizon,
        "counts": {
            "arrived": arrived,
            "admitted": admitted,
            "shed": len(shed),
            "completed": completed,
            "deadline_met": deadline_met,
        },
        "latency_seconds": {
            "e2e": _percentiles(e2e),
            "queue": _percentiles(queue),
            "service": _percentiles(service),
        },
        "throughput_per_second": completed / horizon if horizon > 0 else 0.0,
        "goodput_per_second": deadline_met / horizon if horizon > 0 else 0.0,
        "shed_rate": len(shed) / arrived if arrived else 0.0,
        "warm": {"hits": warm_hits, "misses": warm_misses},
        "tenants": {name: tenants[name] for name in sorted(tenants)},
    }
    if dispatches:
        out["schema"] = SLO_SCHEMA_FLEET
        out["fleet"] = _fold_fleet(dispatches, horizon)
    return out


def _fold_fleet(dispatches: List[SimEvent],
                horizon: float) -> Dict[str, Any]:
    """Per-device utilization and exchange traffic from ``dispatch`` markers.

    Each fleet dispatch emits one instant ``dispatch`` event carrying the
    serving device (``-1`` = a fabric-wide sharded run occupying every
    device), the batch size, the service seconds, and — for sharded
    dispatches — the inter-device exchange bytes the run charged.  A
    fabric-wide dispatch's busy time is credited to *every* device listed
    in its ``devices`` count, so per-device utilization reflects real
    occupancy either way.
    """
    devices: Dict[int, Dict[str, float]] = {}

    def bucket(d: int) -> Dict[str, float]:
        b = devices.get(d)
        if b is None:
            b = devices[d] = {
                "dispatches": 0, "requests": 0,
                "busy_seconds": 0.0, "exchange_bytes": 0.0,
            }
        return b

    sharded = 0
    exchange_total = 0.0
    for e in dispatches:
        extra = dict(e.extra)
        dev = int(extra.get("device", 0))
        service = float(extra.get("service", 0.0))
        n_req = int(extra.get("requests", 1))
        xbytes = float(extra.get("exchange_bytes", 0.0))
        exchange_total += xbytes
        if dev < 0:
            sharded += 1
            n_dev = max(int(extra.get("devices", 1)), 1)
            for d in range(n_dev):
                b = bucket(d)
                b["busy_seconds"] += service
                b["exchange_bytes"] += xbytes / n_dev
            b = bucket(dev)  # the fabric-wide ledger itself
            b["dispatches"] += 1
            b["requests"] += n_req
            b["busy_seconds"] += service
            b["exchange_bytes"] += xbytes
        else:
            b = bucket(dev)
            b["dispatches"] += 1
            b["requests"] += n_req
            b["busy_seconds"] += service
    for b in devices.values():
        b["utilization"] = (b["busy_seconds"] / horizon
                            if horizon and horizon > 0 else 0.0)
    return {
        "devices": {
            ("fabric" if d < 0 else str(d)): devices[d]
            for d in sorted(devices)
        },
        "n_dispatches": len(dispatches),
        "sharded_dispatches": sharded,
        "exchange_bytes": exchange_total,
    }


def canonical_json(payload: Any) -> str:
    """The canonical serialization every digest is taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_digest(report: Dict[str, Any]) -> str:
    """Short stable digest of a report (what the CI smoke job pins)."""
    return hashlib.sha256(canonical_json(report).encode("utf-8")).hexdigest()[:16]
