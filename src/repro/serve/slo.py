"""SLO metrics as a pure fold over request-lifecycle events.

The load-test simulator narrates every request through instant marker
events (:data:`repro.gpusim.events.REQUEST_KINDS`) on the serve clock:
``request-arrive`` (label ``tenant/graph/algo``, with the deadline in
``extra``), ``request-admit``, ``request-shed`` (label = reason),
``request-start`` (batch size + warm flag in ``extra``) and
``request-complete``; ``warm-hit`` / ``warm-miss`` record each dispatch's
pool outcome.  :func:`fold_slo` replays that stream into the
schema-versioned SLO report — the same replayability contract the rest of
the repo uses (metrics are folds over the event log, never separately
maintained truth).

Percentiles use the nearest-rank method on the sorted sample: no
interpolation, no float averaging of neighbors, so the report is a pure
function of the event stream and digests bit-identically across runs —
:func:`report_digest` is what the CI smoke job pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, Iterable, List

from repro.gpusim.events import SimEvent

__all__ = ["SLO_SCHEMA", "SLO_SCHEMA_FLEET", "SLO_SCHEMA_DEGRADED",
           "fold_slo", "report_digest", "canonical_json"]

#: Report schema identifier; bump on any shape change.
SLO_SCHEMA = "repro.serve/1"

#: Schema a report carries when it includes the per-device ``fleet``
#: section (multi-device load tests emit ``dispatch`` markers; the
#: single-server simulator never does, so its reports — and the pinned
#: CI digest — keep :data:`SLO_SCHEMA` exactly).
SLO_SCHEMA_FLEET = "repro.serve/2-fleet"

#: Schema a report carries when it additionally includes the ``degraded``
#: section: per-device downtime, failover/retry counts, and goodput while
#: the fleet ran short-handed.  Emitted ONLY when device-fault markers
#: (``device-down`` / ``device-up`` / ``device-fail`` / ``request-retry``)
#: are present in the event stream — fault-free fleet runs keep
#: :data:`SLO_SCHEMA_FLEET`, single-server runs keep :data:`SLO_SCHEMA`.
SLO_SCHEMA_DEGRADED = "repro.serve/3-degraded"

#: Marker kinds whose presence flips a report to the degraded schema.
_DEGRADED_KINDS = frozenset({
    "device-down", "device-up", "device-fail", "request-retry",
    "breaker-open", "breaker-close",
})


def _percentiles(samples: List[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 plus mean/max over ``samples``."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(samples)
    n = len(ordered)

    def rank(p: float) -> float:
        return ordered[min(max(math.ceil(p * n), 1), n) - 1]

    return {
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "mean": sum(ordered) / n,
        "max": ordered[-1],
    }


def fold_slo(events: Iterable[SimEvent], horizon: float | None = None) -> Dict[str, Any]:
    """Fold request-lifecycle markers into the SLO report dict.

    ``horizon`` (the load test's end time) defaults to the latest event
    timestamp; goodput and throughput are completions per simulated
    second over it.
    """
    arrive: Dict[int, SimEvent] = {}
    start: Dict[int, SimEvent] = {}
    complete: Dict[int, SimEvent] = {}
    shed: Dict[int, SimEvent] = {}
    admitted = 0
    warm_hits = 0
    warm_misses = 0
    dispatches: List[SimEvent] = []
    fault_markers: List[SimEvent] = []
    last_t = 0.0
    for e in events:
        # Fault-timeline markers are emitted eagerly at *plan* times, which
        # can sit far beyond the load test; they must not stretch the
        # default horizon.
        if e.kind not in _DEGRADED_KINDS:
            last_t = max(last_t, e.end)
        extra = dict(e.extra)
        rid = int(extra["request"]) if "request" in extra else None
        if e.kind == "request-arrive":
            arrive[rid] = e
        elif e.kind == "request-admit":
            admitted += 1
        elif e.kind == "request-shed":
            shed[rid] = e
        elif e.kind == "request-start":
            start[rid] = e
        elif e.kind == "request-complete":
            complete[rid] = e
        elif e.kind == "warm-hit":
            warm_hits += 1
        elif e.kind == "warm-miss":
            warm_misses += 1
        elif e.kind == "dispatch":
            dispatches.append(e)
        elif e.kind in _DEGRADED_KINDS:
            fault_markers.append(e)
    if horizon is None:
        horizon = last_t
    # A fault scheduled beyond the horizon never touched any request: the
    # report (and schema) stay exactly fault-free.
    fault_markers = [e for e in fault_markers if e.start <= horizon]

    e2e: List[float] = []
    queue: List[float] = []
    service: List[float] = []
    deadline_met = 0
    tenants: Dict[str, Dict[str, float]] = {}

    def tenant_of(event: SimEvent) -> str:
        return event.label.split("/", 2)[0]

    def tenant_bucket(name: str) -> Dict[str, float]:
        bucket = tenants.get(name)
        if bucket is None:
            bucket = tenants[name] = {
                "arrived": 0, "shed": 0, "completed": 0,
                "e2e_seconds": 0.0, "service_seconds": 0.0,
            }
        return bucket

    for rid, ev in sorted(arrive.items()):
        tenant_bucket(tenant_of(ev))["arrived"] += 1
    for rid, ev in sorted(shed.items()):
        src = arrive.get(rid, ev)
        tenant_bucket(tenant_of(src))["shed"] += 1
    for rid, done in sorted(complete.items()):
        came = arrive.get(rid)
        began = start.get(rid)
        if came is None or began is None:
            continue  # torn lifecycle (clipped log) — not countable
        e2e.append(done.end - came.start)
        queue.append(began.start - came.start)
        service.append(done.end - began.start)
        deadline = dict(came.extra).get("deadline", -1.0)
        if deadline < 0 or done.end <= deadline:
            deadline_met += 1
        bucket = tenant_bucket(tenant_of(came))
        bucket["completed"] += 1
        bucket["e2e_seconds"] += done.end - came.start
        bucket["service_seconds"] += done.end - began.start

    arrived = len(arrive)
    completed = len(complete)
    out = {
        "schema": SLO_SCHEMA,
        "horizon_seconds": horizon,
        "counts": {
            "arrived": arrived,
            "admitted": admitted,
            "shed": len(shed),
            "completed": completed,
            "deadline_met": deadline_met,
        },
        "latency_seconds": {
            "e2e": _percentiles(e2e),
            "queue": _percentiles(queue),
            "service": _percentiles(service),
        },
        "throughput_per_second": completed / horizon if horizon > 0 else 0.0,
        "goodput_per_second": deadline_met / horizon if horizon > 0 else 0.0,
        "shed_rate": len(shed) / arrived if arrived else 0.0,
        "warm": {"hits": warm_hits, "misses": warm_misses},
        "tenants": {name: tenants[name] for name in sorted(tenants)},
    }
    if dispatches:
        out["schema"] = SLO_SCHEMA_FLEET
        out["fleet"] = _fold_fleet(dispatches, horizon)
    if fault_markers:
        out["schema"] = SLO_SCHEMA_DEGRADED
        out["degraded"] = _fold_degraded(fault_markers, arrive, complete,
                                         horizon)
    return out


def _fold_degraded(markers: List[SimEvent], arrive: Dict[int, SimEvent],
                   complete: Dict[int, SimEvent],
                   horizon: float) -> Dict[str, Any]:
    """The failure ledger: downtime, failover counts, goodput-under-failure.

    ``device-down`` / ``device-up`` pairs bound each device's outage
    windows (an unclosed window — a permanent loss — runs to the horizon).
    ``device-fail`` counts dispatch attempts that hit a dead device,
    ``request-retry`` counts per-request relocations, and
    ``breaker-open`` / ``breaker-close`` count circuit-breaker trips.
    ``goodput_under_failure`` is deadline-met completions per second inside
    the union of all outage windows — the fleet's delivered quality while
    running short-handed.
    """
    open_at: Dict[int, float] = {}
    windows: List[tuple] = []  # (start, end, device)
    per_device: Dict[int, Dict[str, float]] = {}

    def bucket(d: int) -> Dict[str, float]:
        b = per_device.get(d)
        if b is None:
            b = per_device[d] = {
                "downtime_seconds": 0.0, "outages": 0,
                "dispatch_failures": 0, "breaker_opens": 0,
            }
        return b

    retried: Dict[int, int] = {}
    breaker_closes = 0
    for e in markers:
        extra = dict(e.extra)
        dev = e.device if e.device is not None \
            else int(extra.get("device", -1))
        if e.kind == "device-down":
            open_at.setdefault(dev, e.start)
        elif e.kind == "device-up":
            t0 = open_at.pop(dev, None)
            if t0 is not None:
                windows.append((t0, e.start, dev))
        elif e.kind == "device-fail":
            bucket(dev)["dispatch_failures"] += 1
        elif e.kind == "breaker-open":
            bucket(dev)["breaker_opens"] += 1
        elif e.kind == "breaker-close":
            breaker_closes += 1
        elif e.kind == "request-retry":
            rid = int(extra.get("request", -1))
            retried[rid] = retried.get(rid, 0) + 1
    for dev, t0 in sorted(open_at.items()):
        windows.append((t0, max(horizon, t0), dev))
    for t0, t1, dev in windows:
        b = bucket(dev)
        b["downtime_seconds"] += t1 - t0
        b["outages"] += 1

    # Union of all outage intervals → time the fleet ran short-handed.
    merged: List[List[float]] = []
    for t0, t1, _ in sorted(windows):
        if merged and t0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], t1)
        else:
            merged.append([t0, t1])
    degraded_seconds = sum(t1 - t0 for t0, t1 in merged)
    met_during = 0
    for rid, done in sorted(complete.items()):
        came = arrive.get(rid)
        if came is None:
            continue
        deadline = dict(came.extra).get("deadline", -1.0)
        if deadline >= 0 and done.end > deadline:
            continue
        if any(t0 <= done.end <= t1 for t0, t1 in merged):
            met_during += 1

    return {
        "devices": {str(d): per_device[d] for d in sorted(per_device)},
        "degraded_seconds": degraded_seconds,
        "retried_requests": sum(retried.values()),
        "relocated_requests": len(retried),
        "breaker_closes": breaker_closes,
        "goodput_under_failure": (met_during / degraded_seconds
                                  if degraded_seconds > 0 else 0.0),
    }


def _fold_fleet(dispatches: List[SimEvent],
                horizon: float) -> Dict[str, Any]:
    """Per-device utilization and exchange traffic from ``dispatch`` markers.

    Each fleet dispatch emits one instant ``dispatch`` event carrying the
    serving device (``-1`` = a fabric-wide sharded run occupying every
    device), the batch size, the service seconds, and — for sharded
    dispatches — the inter-device exchange bytes the run charged.  A
    fabric-wide dispatch's busy time is credited to *every* device listed
    in its ``devices`` count, so per-device utilization reflects real
    occupancy either way.
    """
    devices: Dict[int, Dict[str, float]] = {}

    def bucket(d: int) -> Dict[str, float]:
        b = devices.get(d)
        if b is None:
            b = devices[d] = {
                "dispatches": 0, "requests": 0,
                "busy_seconds": 0.0, "exchange_bytes": 0.0,
            }
        return b

    sharded = 0
    exchange_total = 0.0
    for e in dispatches:
        extra = dict(e.extra)
        dev = int(extra.get("device", 0))
        service = float(extra.get("service", 0.0))
        n_req = int(extra.get("requests", 1))
        xbytes = float(extra.get("exchange_bytes", 0.0))
        exchange_total += xbytes
        if dev < 0:
            sharded += 1
            n_dev = max(int(extra.get("devices", 1)), 1)
            for d in range(n_dev):
                b = bucket(d)
                b["busy_seconds"] += service
                b["exchange_bytes"] += xbytes / n_dev
            b = bucket(dev)  # the fabric-wide ledger itself
            b["dispatches"] += 1
            b["requests"] += n_req
            b["busy_seconds"] += service
            b["exchange_bytes"] += xbytes
        else:
            b = bucket(dev)
            b["dispatches"] += 1
            b["requests"] += n_req
            b["busy_seconds"] += service
    for b in devices.values():
        b["utilization"] = (b["busy_seconds"] / horizon
                            if horizon and horizon > 0 else 0.0)
    return {
        "devices": {
            ("fabric" if d < 0 else str(d)): devices[d]
            for d in sorted(devices)
        },
        "n_dispatches": len(dispatches),
        "sharded_dispatches": sharded,
        "exchange_bytes": exchange_total,
    }


def canonical_json(payload: Any) -> str:
    """The canonical serialization every digest is taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_digest(report: Dict[str, Any]) -> str:
    """Short stable digest of a report (what the CI smoke job pins)."""
    return hashlib.sha256(canonical_json(report).encode("utf-8")).hexdigest()[:16]
