"""Multi-source traversal fusion: one frontier program, B sources.

Compatible queued traversals (same graph variant, same algorithm) fuse
into a single batched program: per-source value rows plus per-source
frontiers, with ``state.active`` being the **union** frontier.  The engine
charges data movement for the union's edges exactly once per superstep —
that shared edge read is the whole fusion win: B queued BFS runs each
stream the frontier's chunks; the fused run streams them once.

The numeric semantics are the per-source programs', unchanged: ``step``
expands the union frontier once (what the fused kernel reads) and applies
each source's relaxation to its own row by filtering the shared expansion
on that row's frontier.  With ``B == 1`` every array equals the
single-source program's bit for bit — the parity tests pin that.

Latency cost: every request in a batch is charged the full batch service
time (one fused run has one completion time).  The batch-size knob on the
simulator trades that added latency against the shared-read throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.algorithms.bfs import UNREACHED
from repro.algorithms.sssp import INF_DIST
from repro.graph.csr import CSRGraph

__all__ = ["BatchedBFS", "BatchedSSSP", "BatchedState", "make_batched"]


@dataclass
class BatchedState(ProgramState):
    """Union frontier (``active``) plus per-source rows.

    ``fronts`` is the ``(B, n)`` per-source frontier matrix; ``values_2d``
    the ``(B, n)`` value matrix (levels or distances).
    """

    fronts: np.ndarray = None
    values_2d: np.ndarray = None


class _BatchedTraversal(VertexProgram):
    """Shared loop shell of the fused traversals."""

    def __init__(self, sources: Sequence[int]):
        if not sources:
            raise ValueError("batched traversal needs at least one source")
        self.sources = tuple(int(s) for s in sources)
        self.name = f"{self._base_name}x{len(self.sources)}"

    _base_name = "?"

    @property
    def batch_size(self) -> int:
        return len(self.sources)

    def _check_sources(self, graph: CSRGraph) -> None:
        for s in self.sources:
            if not 0 <= s < graph.n_vertices:
                raise ValueError(f"source {s} out of range")

    def _init_rows(self, graph: CSRGraph, fill, dtype) -> BatchedState:
        self._check_sources(graph)
        b, n = len(self.sources), graph.n_vertices
        values = np.full((b, n), fill, dtype=dtype)
        fronts = np.zeros((b, n), dtype=bool)
        for row, src in enumerate(self.sources):
            values[row, src] = 0
            fronts[row, src] = True
        return BatchedState(active=fronts.any(axis=0), fronts=fronts,
                            values_2d=values)

    def values(self, state: BatchedState) -> np.ndarray:
        """The ``(B, n)`` value matrix, row ``i`` for ``sources[i]``."""
        return state.values_2d


class BatchedBFS(_BatchedTraversal):
    """B level-synchronous BFS runs fused over one shared edge stream."""

    _base_name = "BFS"
    needs_weights = False
    atomics = False

    def init_state(self, graph: CSRGraph) -> BatchedState:
        return self._init_rows(graph, UNREACHED, np.int32)

    def step(self, graph: CSRGraph, state: BatchedState) -> None:
        # One expansion of the union frontier — the edge set the fused
        # kernel actually reads — then per-row filtering against it.
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        new_fronts = np.zeros_like(state.fronts)
        if exp.n_edges:
            dsts_all = graph.indices[exp.positions]
            for row in range(state.fronts.shape[0]):
                sel = state.fronts[row][exp.sources]
                if not sel.any():
                    continue
                dsts = dsts_all[sel]
                levels = state.values_2d[row]
                fresh = dsts[levels[dsts] == UNREACHED]
                if fresh.size:
                    fresh = np.unique(fresh)
                    levels[fresh] = state.iteration + 1
                    new_fronts[row][fresh] = True
        state.fronts = new_fronts
        state.active = new_fronts.any(axis=0)
        state.iteration += 1


class BatchedSSSP(_BatchedTraversal):
    """B frontier-Bellman-Ford runs fused over one shared edge stream."""

    _base_name = "SSSP"
    needs_weights = True
    atomics = True

    def init_state(self, graph: CSRGraph) -> BatchedState:
        self.validate_graph(graph)
        return self._init_rows(graph, INF_DIST, np.uint64)

    def step(self, graph: CSRGraph, state: BatchedState) -> None:
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        new_fronts = np.zeros_like(state.fronts)
        if exp.n_edges:
            dsts_all = graph.indices[exp.positions]
            w_all = graph.weights[exp.positions].astype(np.uint64)
            for row in range(state.fronts.shape[0]):
                sel = state.fronts[row][exp.sources]
                if not sel.any():
                    continue
                dsts = dsts_all[sel]
                dist = state.values_2d[row]
                cand = dist[exp.sources[sel]] + w_all[sel]
                old = dist[dsts].copy()
                np.minimum.at(dist, dsts, cand)
                improved = dsts[dist[dsts] < old]
                if improved.size:
                    new_fronts[row][np.unique(improved)] = True
        state.fronts = new_fronts
        state.active = new_fronts.any(axis=0)
        state.iteration += 1


def make_batched(algorithm: str, sources: Sequence[int]) -> _BatchedTraversal:
    """Construct the fused program for a batchable ``algorithm``."""
    algorithm = algorithm.upper()
    if algorithm == "BFS":
        return BatchedBFS(sources)
    if algorithm == "SSSP":
        return BatchedSSSP(sources)
    raise ValueError(f"algorithm {algorithm!r} is not batchable (BFS/SSSP)")
