"""Bounded admission queue with backpressure and per-tenant accounting.

The queue is the serving layer's only backpressure point: offered load
beyond ``capacity`` is *shed*, never buffered unboundedly.  Three policies
decide who pays when the queue is full:

``reject``
    The newcomer is refused (classic bounded queue).
``drop-oldest``
    The newcomer is admitted by evicting the oldest request of the tenant
    with the most queued work — the heaviest tenant funds the headroom,
    which is the fairness story (a single flooding tenant cannot push
    others' requests out).
``deadline``
    Expired requests are purged first; if the queue is still full the
    newcomer is rejected.

Independently of policy, a request whose deadline has already passed at
admission time is shed on the spot (running it can only waste service
time), and :meth:`AdmissionQueue.purge_expired` lets the dispatcher drop
requests that expired *while queued*.

Everything here is plain deterministic data structure work — no clocks,
no randomness; time always arrives as an argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.serve.request import Request

__all__ = ["AdmissionQueue", "TenantAccount", "QUEUE_POLICIES"]

#: Recognized backpressure policies.
QUEUE_POLICIES = ("reject", "drop-oldest", "deadline")


@dataclass
class TenantAccount:
    """Per-tenant fairness ledger (folded into the SLO report)."""

    submitted: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    service_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "service_seconds": self.service_seconds,
        }


class AdmissionQueue:
    """FIFO-ordered bounded buffer between arrivals and the scheduler."""

    def __init__(self, capacity: int, policy: str = "reject") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; choose from {QUEUE_POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: List[Request] = []
        self.tenants: Dict[str, TenantAccount] = {}

    # ------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def items(self) -> Tuple[Request, ...]:
        """Queued requests in arrival order (a snapshot, safe to iterate)."""
        return tuple(self._items)

    def account(self, tenant: str) -> TenantAccount:
        acct = self.tenants.get(tenant)
        if acct is None:
            acct = self.tenants[tenant] = TenantAccount()
        return acct

    # ---------------------------------------------------------- admission
    def offer(self, request: Request, now: float) -> Tuple[bool, List[Tuple[Request, str]]]:
        """Try to admit ``request`` at time ``now``.

        Returns ``(admitted, shed)`` where ``shed`` lists ``(victim,
        reason)`` pairs — the newcomer itself when refused, or a queued
        request evicted to make room under ``drop-oldest``.
        """
        acct = self.account(request.tenant)
        acct.submitted += 1
        if request.expired(now):
            acct.shed += 1
            return False, [(request, "deadline-at-admission")]
        shed: List[Tuple[Request, str]] = []
        if len(self._items) >= self.capacity and self.policy == "deadline":
            shed.extend(self.purge_expired(now))
        if len(self._items) >= self.capacity and self.policy == "drop-oldest":
            victim = self._drop_oldest_victim()
            if victim is not None:
                self._items.remove(victim)
                self.account(victim.tenant).shed += 1
                shed.append((victim, "drop-oldest"))
        if len(self._items) >= self.capacity:
            acct.shed += 1
            shed.append((request, "queue-full"))
            return False, shed
        self._items.append(request)
        acct.admitted += 1
        return True, shed

    def _drop_oldest_victim(self) -> Request | None:
        """Oldest queued request of the most-loaded tenant (ties: first)."""
        if not self._items:
            return None
        load: Dict[str, int] = {}
        for r in self._items:
            load[r.tenant] = load.get(r.tenant, 0) + 1
        heaviest = max(load, key=lambda t: (load[t], t))
        for r in self._items:
            if r.tenant == heaviest:
                return r
        return None  # pragma: no cover - heaviest always has an item

    def purge_expired(self, now: float) -> List[Tuple[Request, str]]:
        """Remove every queued request whose deadline passed; returns them."""
        expired = [r for r in self._items if r.expired(now)]
        if expired:
            self._items = [r for r in self._items if not r.expired(now)]
            for r in expired:
                self.account(r.tenant).shed += 1
        return [(r, "deadline-in-queue") for r in expired]

    def take(self, request: Request) -> None:
        """Remove a request the scheduler dispatched."""
        self._items.remove(request)

    def note_completed(self, request: Request, service_seconds: float) -> None:
        """Credit a completed request to its tenant's ledger."""
        acct = self.account(request.tenant)
        acct.completed += 1
        acct.service_seconds += service_seconds
