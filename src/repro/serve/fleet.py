"""Multi-device serving: a router in front of per-device engine pools.

The single-server simulator (:mod:`repro.serve.simulator`) models one
engine slot.  A *fleet* models N simulated devices sharing one admission
queue: a :class:`Router` decides, per dispatch, which device serves the
batch — or whether the graph is too large for any one device and must run
as a fabric-wide :class:`~repro.engines.sharded.ShardedEngine` dispatch
spanning every device.  Two placement regimes fall out:

* **replicate-hot** — requests for a graph that fits a device land on
  whichever free device already holds its warm Static Region (affinity),
  else on the least-loaded free device; a hot graph therefore gets
  replicated across devices organically, one warm pool entry per device
  that served it.
* **shard-oversized** — a graph whose (scaled) edge array exceeds
  ``shard_over`` × the largest single device's capacity is routed to the
  fabric: one :class:`ShardedEngine` run over all devices, with the
  inter-device exchange traffic charged by the fabric's cost model and
  surfaced in the SLO report's ``fleet`` section.

Everything stays on the shared serve clock and the shared seeded workload
stream, so a fleet load test replays bit for bit — same trace, same event
stream, same report, same digest — exactly like the single-server path.
The single-server code is untouched: the fleet loop emits its own
``dispatch`` markers (with device ids), and :func:`~repro.serve.slo.fold_slo`
adds the per-device section only when those markers are present, so the
pinned single-device serve digest stays valid.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engines import registry
from repro.engines.base import RunResult
from repro.gpusim.events import EventLog, SimEvent
from repro.gpusim.fabric import FabricSpec
from repro.gpusim.faults import FaultInjector, FaultPlan
from repro.serve.pool import EnginePool, PoolStats
from repro.serve.queue import AdmissionQueue, TenantAccount
from repro.serve.request import (
    Request,
    RequestStatus,
    Response,
    engine_key,
    generate_requests,
)
from repro.serve.scheduler import make_scheduler
from repro.serve.simulator import ServeConfig, WorkloadCatalog
from repro.serve.slo import canonical_json, fold_slo

__all__ = [
    "FABRIC",
    "FleetConfig",
    "FleetResult",
    "RouteDecision",
    "Router",
    "fleet_quick_config",
    "run_fleet_test",
]

#: Pseudo-device id for a fabric-wide (sharded) dispatch.
FABRIC = -1


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet load test depends on — the digest's whole input."""

    #: The workload / queue / scheduler / pool knobs, shared verbatim with
    #: the single-server simulator so a fleet is directly comparable to
    #: one device running the same :class:`ServeConfig`.
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: Device count, per-device memories, and link topology.
    fabric: FabricSpec = field(default_factory=FabricSpec)
    #: Shard threshold: route a graph fabric-wide when its scaled edge
    #: bytes exceed ``shard_over`` × the largest device capacity.
    #: ``None`` disables sharding (replicate-only routing).
    shard_over: Optional[float] = None
    #: Chaos mode: a seeded fault plan whose device faults (times on the
    #: *serve* clock) the fleet loop replays — failed dispatches, router
    #: failover, degraded sharded fabrics.  ``None`` (the default) keeps
    #: every fault-free code path — and every pinned digest — byte-exact.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.shard_over is not None and self.shard_over <= 0:
            raise ValueError("shard_over must be positive (or None)")
        if isinstance(self.fault_plan, Mapping):
            object.__setattr__(self, "fault_plan",
                               FaultPlan.from_dict(self.fault_plan))

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "serve": self.serve.as_dict(),
            "fabric": self.fabric.to_dict(),
            "shard_over": self.shard_over,
        }
        # Key omitted when absent so fault-free configs serialize (and
        # digest) exactly as before the chaos fields existed.
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        return out


@dataclass(frozen=True)
class RouteDecision:
    """Where one dispatch goes and why (the ``reason`` shows up in tests
    and the router bench, not in the digest)."""

    #: Device id, or :data:`FABRIC` for a fabric-wide sharded run.
    target: int
    reason: str  # "warm-affinity" | "least-loaded" | "oversized"

    @property
    def sharded(self) -> bool:
        return self.target == FABRIC


class Router:
    """Deterministic placement policy in front of the admission queue.

    Decision order (first match wins):

    1. **oversized** — the graph's scaled edge array exceeds
       ``shard_over`` × the largest single-device capacity: run it
       fabric-wide with :class:`~repro.engines.sharded.ShardedEngine`.
    2. **warm-affinity** — a free device's pool already holds the
       affinity key: route there (lowest device id on ties).
    3. **least-loaded** — the free device with the fewest pooled engines
       (lowest id on ties), which spreads replicas of hot graphs across
       the fleet.

    The router also keeps per-device **circuit-breaker** state for chaos
    runs: ``breaker_threshold`` consecutive failed dispatches open a
    device's breaker (:meth:`note_failure`), after which :meth:`usable`
    reports it unroutable until ``probe_interval`` sim-seconds have passed
    — the half-open probe.  A completed dispatch (:meth:`note_success`)
    closes the breaker and clears the failure count.  All state advances
    on the deterministic serve clock, never wall time.
    """

    def __init__(self, spec: FabricSpec,
                 shard_over: Optional[float] = None,
                 breaker_threshold: int = 2,
                 probe_interval: float = 5.0) -> None:
        self.spec = spec
        if shard_over is not None and shard_over <= 0:
            raise ValueError("shard_over must be positive (or None)")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        self.shard_over = shard_over
        self.breaker_threshold = breaker_threshold
        self.probe_interval = probe_interval
        self._failures: Dict[int, int] = {}
        self._open_at: Dict[int, float] = {}

    # ------------------------------------------------------ circuit breaker
    def note_failure(self, device: int, t: float) -> bool:
        """Record a failed dispatch at sim time ``t``; True when this trip
        opens the device's breaker."""
        self._failures[device] = self._failures.get(device, 0) + 1
        if device not in self._open_at \
                and self._failures[device] >= self.breaker_threshold:
            self._open_at[device] = t
            return True
        return False

    def note_success(self, device: int) -> bool:
        """Record a completed dispatch; True when it closes an open breaker
        (a half-open probe that succeeded)."""
        self._failures.pop(device, None)
        return self._open_at.pop(device, None) is not None

    def usable(self, device: int, t: float) -> bool:
        """Whether the breaker allows routing to ``device`` at time ``t``
        (closed, or open long enough that a half-open probe is due)."""
        opened = self._open_at.get(device)
        if opened is None:
            return True
        return t >= opened + self.probe_interval

    def capacity(self, default_memory_bytes: int) -> int:
        """The largest single-device capacity in the fabric (scaled bytes)."""
        return max(self.spec.memory_of(d, default_memory_bytes)
                   for d in range(self.spec.n_devices))

    def oversized(self, edge_bytes: int, default_memory_bytes: int) -> bool:
        """Whether a graph of ``edge_bytes`` must be sharded fabric-wide."""
        if self.shard_over is None:
            return False
        return edge_bytes > self.shard_over * self.capacity(
            default_memory_bytes)

    def decide(self, key: Tuple[str, str], edge_bytes: int,
               default_memory_bytes: int, free_devices: Sequence[int],
               pools: Sequence[EnginePool]) -> RouteDecision:
        if self.oversized(edge_bytes, default_memory_bytes):
            return RouteDecision(FABRIC, "oversized")
        if not free_devices:
            raise ValueError("router needs at least one free device")
        for d in free_devices:
            if key in pools[d].warm_keys():
                return RouteDecision(d, "warm-affinity")
        best = min(free_devices, key=lambda d: (len(pools[d]), d))
        return RouteDecision(best, "least-loaded")


@dataclass
class FleetResult:
    """One fleet load test's full, replayable output."""

    config: FleetConfig
    requests: Tuple[Request, ...]
    responses: Tuple[Response, ...]
    events: List[SimEvent]
    report: Dict[str, Any]
    #: Per-device warm-reuse ledgers (device id → stats).
    device_pool_stats: Dict[int, PoolStats]
    tenants: Dict[str, TenantAccount]
    horizon: float = 0.0
    run_results: List[RunResult] = field(default_factory=list)

    @property
    def pool_stats(self) -> PoolStats:
        """All devices' ledgers merged (fleet-wide totals)."""
        merged = PoolStats()
        for d in sorted(self.device_pool_stats):
            merged.merge(self.device_pool_stats[d])
        return merged

    def trace_payload(self) -> Dict[str, Any]:
        """Canonical JSON-able form of trace + outcomes + report."""
        responses = []
        for resp in self.responses:
            entry = {
                "request_id": resp.request.request_id,
                "status": resp.status.value,
                "shed_reason": resp.shed_reason,
                "start_time": resp.start_time,
                "finish_time": resp.finish_time,
                "batch_size": resp.batch_size,
                "warm": resp.warm,
                "device": resp.device,
            }
            # Gated on the plan (not on the count) so chaos payloads carry
            # the key uniformly while fault-free payloads stay byte-exact.
            if self.config.fault_plan is not None:
                entry["retries"] = resp.retries
            responses.append(entry)
        return {
            "config": self.config.as_dict(),
            "requests": [asdict(r) for r in self.requests],
            "responses": responses,
            "report": self.report,
        }

    def run_digest(self) -> str:
        """Digest over trace + responses + report (what fleet-smoke diffs)."""
        blob = canonical_json(self.trace_payload())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def run_fleet_test(config: FleetConfig,
                   requests: Optional[Tuple[Request, ...]] = None
                   ) -> FleetResult:
    """Run one seeded fleet load test; pure function of ``(config, requests)``.

    The same discrete-event discipline as
    :func:`~repro.serve.simulator.run_load_test`, generalized to N device
    slots: arrivals are offered to the shared admission queue at their own
    arrival times, the scheduler picks the next batch when a device frees
    up, the router places it, and the chosen device's (or the fabric's)
    simulated run provides the service time.
    """
    serve = config.serve
    if requests is None:
        requests = generate_requests(
            n_requests=serve.n_requests,
            seed=serve.seed,
            arrival_rate=serve.arrival_rate,
            graphs=serve.graphs,
            algorithms=serve.algorithms,
            tenants=serve.tenants,
            priorities=serve.priorities,
            deadline=serve.deadline,
            multi_source=serve.multi_source,
        )
    n_devices = config.fabric.n_devices
    catalog = WorkloadCatalog(serve.scale)
    log = EventLog(record=True)
    queue = AdmissionQueue(serve.queue_capacity, serve.queue_policy)
    scheduler = make_scheduler(serve.scheduler, serve.max_batch,
                               serve.aging_seconds)
    warm_capable = registry.describe(serve.engine).supports_warm_start
    pools = [EnginePool(serve.max_engines, keep_static=warm_capable)
             for _ in range(n_devices)]
    router = Router(config.fabric, config.shard_over)
    responses: Dict[int, Response] = {}
    run_results: List[RunResult] = []
    plan = config.fault_plan
    injector: Optional[FaultInjector] = None
    if plan is not None and not plan.is_null:
        injector = FaultInjector(plan, seed=serve.seed)
        # Narrate the plan's device timeline up front: the outage windows
        # are plan facts (serve-clock times), not discoveries, and their
        # markers are what gates the report's ``degraded`` section.
        for f in sorted(plan.device_faults,
                        key=lambda f: (f.start, f.device)):
            log.marker("device-down", f"dev{f.device}", f.start,
                       device=f.device, extra=(("device", float(f.device)),))
            if f.end is not None:
                log.marker("device-up", f"dev{f.device}", f.end,
                           device=f.device,
                           extra=(("device", float(f.device)),))
        for i, w in enumerate(plan.peer_degradations):
            log.marker("peer-degrade", f"window{i}", w.start,
                       extra=(("factor", float(w.factor)),
                              ("until", float(w.end))))

    def shed(victim: Request, reason: str, t: float) -> None:
        log.marker("request-shed", reason, t,
                   extra=(("request", float(victim.request_id)),))
        responses[victim.request_id] = Response(
            request=victim, status=RequestStatus.SHED, shed_reason=reason)

    def admit_until(t: float) -> None:
        nonlocal next_arrival
        while next_arrival < len(requests) \
                and requests[next_arrival].arrival <= t:
            r = requests[next_arrival]
            next_arrival += 1
            log.marker(
                "request-arrive", f"{r.tenant}/{r.graph_id}/{r.algorithm}",
                r.arrival,
                extra=(("request", float(r.request_id)),
                       ("deadline", -1.0 if r.deadline is None
                        else float(r.deadline)),
                       ("priority", float(r.priority))))
            for victim, reason in queue.purge_expired(r.arrival):
                shed(victim, reason, r.arrival)
            admitted, dropped = queue.offer(r, r.arrival)
            for victim, reason in dropped:
                shed(victim, reason, r.arrival)
            if admitted:
                log.marker("request-admit", r.tenant, r.arrival,
                           extra=(("request", float(r.request_id)),))

    def warm_union(free: Sequence[int]) -> Tuple[Any, ...]:
        """Warm keys across the free devices' pools, device order, deduped."""
        seen = []
        for d in free:
            for key in pools[d].warm_keys():
                if key not in seen:
                    seen.append(key)
        return tuple(seen)

    next_arrival = 0
    free_at = [0.0] * n_devices
    now = 0.0
    while next_arrival < len(requests) or queue:
        alive_times = [t for t in free_at if t != math.inf]
        if not alive_times:
            # The whole fleet is down: everything still queued (or yet to
            # arrive) can only be shed.
            if requests:
                admit_until(max(now, requests[-1].arrival))
            for victim in list(queue.items):
                queue.take(victim)
                shed(victim, "fleet-down", now)
            break
        now = max(now, min(alive_times))
        if not queue:
            if next_arrival >= len(requests):
                break
            now = max(now, requests[next_arrival].arrival)
        admit_until(now)
        if not queue:
            continue  # the shed path can drain what just arrived
        # Hold a free device briefly if another arrival could complete a
        # batch — the same latency/throughput knob as the single server.
        if (serve.max_batch > 1 and serve.batch_wait > 0
                and next_arrival < len(requests)
                and len(queue) < serve.max_batch
                and requests[next_arrival].arrival <= now + serve.batch_wait):
            now = requests[next_arrival].arrival
            continue
        for victim, reason in queue.purge_expired(now):
            shed(victim, reason, now)
        if not queue:
            continue
        free = [d for d in range(n_devices) if free_at[d] <= now]
        batch = scheduler.select(queue.items, now, warm_union(free))
        for r in batch:
            queue.take(r)
        key = engine_key(batch[0])
        graph = catalog.graph(*key)
        graph_id = key[0]
        spec = catalog.spec(graph_id)
        data_scale = catalog.data_scale(graph_id)

        def start_markers(t: float, device: int, pooled: bool) -> None:
            log.marker("warm-hit" if pooled else "warm-miss",
                       f"{key[0]}/{key[1]}", t,
                       extra=(("requests", float(len(batch))),
                              ("device", float(device))))
            for r in batch:
                log.marker("request-start", r.tenant, t,
                           extra=(("request", float(r.request_id)),
                                  ("batch", float(len(batch))),
                                  ("warm", 1.0 if pooled else 0.0),
                                  ("device", float(device))))

        route_free = free
        if injector is not None:
            # The breaker's view filters routing; if it rules out every
            # free device, fall through so a half-open probe can happen.
            route_free = [d for d in free if router.usable(d, now)] or free
        decision = router.decide(key, graph.edge_array_bytes,
                                 spec.memory_bytes, route_free, pools)

        if decision.sharded:
            # Fabric-wide dispatch: wait for every surviving device, then
            # run the graph sharded across them — a chaos run degrades to
            # the surviving-device fabric instead of stalling forever on a
            # dead peer.
            survivors = [d for d in range(n_devices)
                         if free_at[d] != math.inf]
            start = max([now] + [free_at[d] for d in survivors])
            admit_until(start)
            fab = config.fabric
            if len(survivors) < n_devices:
                mems = None
                if fab.device_mems is not None:
                    mems = tuple(fab.device_mems[d] for d in survivors)
                fab = replace(fab, n_devices=len(survivors),
                              device_mems=mems)
            engine = registry.create(
                "Sharded", spec=spec, data_scale=data_scale,
                fabric=fab, inner=serve.engine)
            pooled, device, attempt = False, FABRIC, 0
            start_markers(start, device, pooled)
            result = engine.run(graph, catalog.program_for(batch, graph))
            finish = start + result.elapsed_seconds
            busy_devices = survivors
        else:
            device = decision.target
            start, attempt, dead_end = now, 0, False
            while True:
                if injector is not None \
                        and injector.device_state(device, start) != "up":
                    # Dead (or stalled) before the dispatch even started.
                    fail_t = start
                    lost = injector.device_state(device, start) == "down"
                else:
                    engine, pooled = pools[device].acquire(
                        key, lambda: registry.create(serve.engine, spec=spec,
                                                     data_scale=data_scale))
                    if injector is None:
                        start_markers(start, device, pooled)
                        result = engine.run(
                            graph, catalog.program_for(batch, graph))
                        finish = start + result.elapsed_seconds
                        break
                    result = engine.run(
                        graph, catalog.program_for(batch, graph))
                    finish = start + result.elapsed_seconds
                    down_t = injector.device_down_at(device)
                    if down_t is None or not (start < down_t < finish):
                        start_markers(start, device, pooled)
                        break
                    # Died mid-service: the work until the death is lost.
                    fail_t, lost = down_t, True
                if lost:
                    free_at[device] = math.inf
                log.marker("device-fail", f"dev{device}", fail_t,
                           device=device,
                           extra=(("device", float(device)),
                                  ("attempt", float(attempt))))
                if router.note_failure(device, fail_t):
                    log.marker("breaker-open", f"dev{device}", fail_t,
                               device=device,
                               extra=(("device", float(device)),))
                for r in batch:
                    log.marker("request-retry", r.tenant, fail_t,
                               extra=(("request", float(r.request_id)),
                                      ("from", float(device)),
                                      ("attempt", float(attempt))))
                # Deterministic backoff before the relocated attempt,
                # charged as queue time (start moves later, service does
                # not).
                start = fail_t + injector.plan.backoff_seconds(attempt)
                attempt += 1
                candidates = [d for d in range(n_devices)
                              if free_at[d] != math.inf
                              and router.usable(d, start)]
                if not candidates:
                    candidates = [d for d in range(n_devices)
                                  if free_at[d] != math.inf]
                if not candidates:
                    dead_end = True
                    break
                if all(free_at[d] > start for d in candidates):
                    start = min(free_at[d] for d in candidates)
                ready = [d for d in candidates if free_at[d] <= start]
                device = router.decide(key, graph.edge_array_bytes,
                                       spec.memory_bytes, ready,
                                       pools).target
            if dead_end:
                for r in batch:
                    shed(r, "fleet-down", start)
                now = start
                continue
            if router.note_success(device) and injector is not None:
                log.marker("breaker-close", f"dev{device}", start,
                           device=device,
                           extra=(("device", float(device)),))
            busy_devices = [device]
        run_results.append(result)
        warm_run = bool(result.extra.get("warm_start", 0.0))
        if decision.sharded:
            for d in busy_devices:
                free_at[d] = finish
        else:
            pools[device].fold_result(result)
            free_at[device] = finish
        log.marker(
            "dispatch", "fabric" if decision.sharded else f"dev{device}",
            start,
            extra=(("device", float(device)),
                   ("devices", float(len(busy_devices)
                                     if decision.sharded else n_devices)),
                   ("requests", float(len(batch))),
                   ("service", float(result.elapsed_seconds)),
                   ("exchange_bytes",
                    float(result.extra.get("exchange_bytes", 0.0)))))
        for r in batch:
            log.marker("request-complete", r.tenant, finish,
                       extra=(("request", float(r.request_id)),
                              ("warm_start", 1.0 if warm_run else 0.0),
                              ("device", float(device))))
            queue.note_completed(r, result.elapsed_seconds)
            responses[r.request_id] = Response(
                request=r, status=RequestStatus.COMPLETED,
                start_time=start, finish_time=finish,
                batch_size=len(batch), warm=warm_run, device=device,
                retries=attempt)
        now = start  # the next free device may predate this finish

    done = [resp.finish_time for resp in responses.values()
            if resp.finish_time is not None]
    horizon = max(done + [r.arrival for r in requests]) if requests else 0.0
    report = fold_slo(log.events, horizon=horizon)
    return FleetResult(
        config=config,
        requests=requests,
        responses=tuple(responses[r.request_id] for r in requests),
        events=log.events,
        report=report,
        device_pool_stats={d: pools[d].stats for d in range(n_devices)},
        tenants=dict(queue.tenants),
        horizon=horizon,
        run_results=run_results,
    )


def fleet_quick_config(seed: int = 0, n_devices: int = 2,
                       topology: str = "pcie") -> FleetConfig:
    """The tiny seeded fleet load test behind ``repro fleet --quick``.

    Same spirit as :func:`~repro.serve.simulator.quick_config`, with two
    graphs so both router regimes fire: GS requests replicate across the
    devices' warm pools while FK — pushed over the ``shard_over``
    threshold — runs fabric-wide through the sharded engine, exercising
    the exchange-phase accounting in the SLO report.
    """
    return FleetConfig(
        serve=ServeConfig(
            seed=seed,
            n_requests=16,
            arrival_rate=0.5,
            graphs=("GS", "FK"),
            algorithms=("BFS", "CC", "SSSP"),
            tenants=("acme", "beta"),
            priorities=(0, 1),
            deadline=90.0,
            multi_source=2,
            engine="Ascetic",
            scale=5e-5,
            queue_capacity=8,
            queue_policy="deadline",
            scheduler="affinity",
            max_batch=2,
            batch_wait=0.25,
            max_engines=2,
        ),
        fabric=FabricSpec(n_devices=n_devices, topology=topology),
        # Literal "exceeds a single device's capacity": GS's plain edge
        # array fits (0.72x device memory at this scale) and replicates;
        # FK's (1.04x) and the weighted views go fabric-wide.
        shard_over=1.0,
    )
