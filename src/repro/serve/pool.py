"""Per-graph engine pool: the cross-request warm-state store.

The pool keeps one engine instance per affinity key (*graph id, variant*
— see :func:`repro.serve.request.engine_key`), LRU-bounded by
``max_engines`` (each pooled Ascetic engine pins a Static Region's worth
of simulated device memory, so the bound models how many warm graphs the
fleet can afford to keep resident).

A pool *hit* re-arms the cached engine with
:meth:`~repro.engines.base.Engine.reset_for_request` ``(keep_static=True)``
— for :class:`~repro.core.ascetic.AsceticEngine` that hands the previous
run's Static Region to the next ``run``, which skips the fill phase
(``static_warm_bytes``) and tops up only what a capacity squeeze or
repartition dropped (``static_refill_bytes``).  :meth:`EnginePool.fold_result`
folds those per-run counters into :class:`PoolStats`, which is how the
acceptance test *proves* fills were skipped rather than inferring it from
latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Tuple

from repro.engines.base import Engine, RunResult

__all__ = ["EnginePool", "PoolStats"]


@dataclass
class PoolStats:
    """Warm-reuse ledger folded from pool traffic and run extras."""

    #: Dispatches that found a pooled engine for their key.
    hits: int = 0
    #: Dispatches that built a fresh engine.
    misses: int = 0
    #: Pooled engines discarded to respect ``max_engines``.
    evictions: int = 0
    #: Runs whose engine actually took the warm-start path
    #: (``extra["warm_start"]``; a hit on a non-warm engine stays 0).
    warm_runs: int = 0
    #: Paper-scale fill bytes *not* transferred thanks to warm regions.
    skipped_fill_bytes: float = 0.0
    #: Paper-scale bytes re-transferred to top up partially-invalidated
    #: warm regions (squeezes, capacity changes).
    refill_bytes: float = 0.0
    #: Warm chunks dropped while reconciling a region to a new capacity.
    invalidated_chunks: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "warm_runs": self.warm_runs,
            "skipped_fill_bytes": self.skipped_fill_bytes,
            "refill_bytes": self.refill_bytes,
            "invalidated_chunks": self.invalidated_chunks,
        }

    def merge(self, other: "PoolStats") -> "PoolStats":
        """Accumulate ``other`` into this ledger (fleet per-device rollup)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.warm_runs += other.warm_runs
        self.skipped_fill_bytes += other.skipped_fill_bytes
        self.refill_bytes += other.refill_bytes
        self.invalidated_chunks += other.invalidated_chunks
        return self


class EnginePool:
    """LRU-bounded map of affinity key → reusable engine instance."""

    def __init__(self, max_engines: int = 4, keep_static: bool = True) -> None:
        if max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        self.max_engines = int(max_engines)
        #: Whether pool hits re-arm the engine's warm-start path.  The
        #: serving layer sets this from the engine's registered
        #: :attr:`~repro.engines.registry.EngineInfo.supports_warm_start`,
        #: so engines without cross-request state skip the no-op re-arm.
        self.keep_static = bool(keep_static)
        self._engines: "OrderedDict[Hashable, Engine]" = OrderedDict()
        self.stats = PoolStats()

    def __len__(self) -> int:
        return len(self._engines)

    def warm_keys(self) -> Tuple[Hashable, ...]:
        """Keys with a pooled (warm-capable) engine, LRU → MRU order."""
        return tuple(self._engines)

    def acquire(self, key: Hashable, factory: Callable[[], Engine]) -> Tuple[Engine, bool]:
        """The engine for ``key``, building (and evicting) as needed.

        Returns ``(engine, warm)``; on a hit the engine is re-armed for
        warm start before being handed back.
        """
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            engine.reset_for_request(keep_static=self.keep_static)
            self.stats.hits += 1
            return engine, True
        while len(self._engines) >= self.max_engines:
            self._engines.popitem(last=False)
            self.stats.evictions += 1
        engine = factory()
        self._engines[key] = engine
        self.stats.misses += 1
        return engine, False

    def fold_result(self, result: RunResult) -> None:
        """Accumulate one run's warm-start counters into :attr:`stats`."""
        extra = result.extra
        if extra.get("warm_start", 0.0):
            self.stats.warm_runs += 1
        self.stats.skipped_fill_bytes += extra.get("static_warm_bytes", 0.0)
        self.stats.refill_bytes += extra.get("static_refill_bytes", 0.0)
        self.stats.invalidated_chunks += extra.get("warm_invalidated_chunks", 0.0)
