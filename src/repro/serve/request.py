"""Typed requests, responses, and the open-loop workload generator.

A :class:`Request` is one tenant's ask: run one algorithm on one named
dataset, optionally from explicit source vertices, with a priority and an
absolute deadline on the *simulated* clock.  Arrivals come from
:func:`generate_requests` — a seeded open-loop Poisson process: every
timestamp derives from one ``numpy`` RNG stream, never from wall clock, so
the same seed replays the exact same trace bit for bit (the serving
layer's determinism contract, see ``docs/serving.md``).

Engine affinity is keyed by :func:`engine_key`: the *(graph id, variant)*
pair that decides which device-resident graph bytes a request needs.
Algorithms sharing a variant (BFS/CC/PR all stream the plain forward CSR)
can reuse each other's warm Static Region; SSSP needs the weighted arrays,
KCORE the symmetrized view, PR-PULL the reverse CSR — different bytes,
different key, no warmth shared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Request",
    "Response",
    "RequestStatus",
    "BATCHABLE",
    "variant_for",
    "engine_key",
    "generate_requests",
]

#: Algorithms whose multi-source runs fuse into one batched frontier
#: program (:mod:`repro.serve.batching`).
BATCHABLE = frozenset({"BFS", "SSSP"})

#: Algorithm → graph-variant map; see :func:`variant_for`.
_VARIANTS = {
    "BFS": "plain",
    "CC": "plain",
    "PR": "plain",
    "SSSP": "weighted",
    "SSWP": "weighted",
    "KCORE": "sym",
    "PR-PULL": "rev",
}


class RequestStatus(enum.Enum):
    """Terminal disposition of a request."""

    #: Still queued (a response never carries this).
    PENDING = "pending"
    #: Rejected or dropped by the admission queue / deadline policy.
    SHED = "shed"
    #: Ran to completion (possibly past its deadline — see goodput).
    COMPLETED = "completed"


@dataclass(frozen=True)
class Request:
    """One unit of offered load.

    Times are seconds on the simulated clock.  ``deadline`` is absolute
    (not a budget); ``None`` means best-effort.  ``sources`` is ``None``
    for "engine picks" (the max-out-degree hub, like the harness), else a
    tuple of vertex ids the catalog folds into range with a modulo.
    """

    request_id: int
    tenant: str
    graph_id: str
    algorithm: str
    arrival: float
    priority: int = 0
    deadline: Optional[float] = None
    sources: Optional[Tuple[int, ...]] = None

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed at ``now`` (inclusive)."""
        return self.deadline is not None and now >= self.deadline


def variant_for(algorithm: str) -> str:
    """The graph variant ``algorithm`` streams (plain/weighted/sym/rev)."""
    try:
        return _VARIANTS[algorithm.upper()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(_VARIANTS)}"
        ) from None


def engine_key(request: Request) -> Tuple[str, str]:
    """The affinity key: requests with equal keys share warm graph bytes."""
    return (request.graph_id, variant_for(request.algorithm))


@dataclass(frozen=True)
class Response:
    """What happened to one request, with its latency split.

    ``queue_seconds`` spans arrival → dispatch; ``service_seconds`` spans
    dispatch → completion (the engine's simulated run time, divided by
    nothing — a batched run charges every member the full batch service
    time, which is exactly the latency cost the batching knob trades
    against throughput).  Shed requests carry only the shed time.
    """

    request: Request
    status: RequestStatus
    #: Why a shed request was dropped (policy name), "" for completions.
    shed_reason: str = ""
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    batch_size: int = 1
    warm: bool = False
    #: Device that served the request in a fleet run (``None`` on the
    #: single-server path; ``-1`` = a fabric-wide sharded dispatch).
    device: Optional[int] = None
    #: How many dispatch attempts failed (device death / circuit breaker)
    #: before the one that completed — 0 on every fault-free path.
    retries: int = 0

    @property
    def completed(self) -> bool:
        return self.status is RequestStatus.COMPLETED

    @property
    def queue_seconds(self) -> float:
        if self.start_time is None:
            return 0.0
        return self.start_time - self.request.arrival

    @property
    def service_seconds(self) -> float:
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def e2e_seconds(self) -> float:
        if self.finish_time is None:
            return 0.0
        return self.finish_time - self.request.arrival

    @property
    def deadline_met(self) -> bool:
        """Completed at or before the deadline (best-effort always counts)."""
        if not self.completed:
            return False
        if self.request.deadline is None:
            return True
        return self.finish_time <= self.request.deadline


def generate_requests(
    n_requests: int,
    seed: int,
    arrival_rate: float,
    graphs: Sequence[str],
    algorithms: Sequence[str],
    tenants: Sequence[str] = ("t0",),
    priorities: Sequence[int] = (0,),
    deadline: Optional[float] = None,
    multi_source: int = 1,
    source_pool: int = 64,
) -> Tuple[Request, ...]:
    """Draw an open-loop Poisson request trace from one seeded RNG stream.

    ``arrival_rate`` is requests per simulated second; inter-arrival gaps
    are exponential.  ``deadline`` is a per-request budget in seconds after
    arrival (``None`` = best-effort).  ``multi_source`` > 1 makes batchable
    algorithms (BFS/SSSP) carry that many explicit sources drawn from
    ``[0, source_pool)`` — the raw ids are folded into the graph's vertex
    range by the catalog.  Everything — gaps, tenant, graph, algorithm,
    priority, sources — comes from the single ``default_rng(seed)`` stream
    in a fixed draw order, so the trace is a pure function of the
    arguments.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if not graphs or not algorithms:
        raise ValueError("need at least one graph and one algorithm")
    if multi_source < 1:
        raise ValueError("multi_source must be >= 1")
    for algo in algorithms:
        variant_for(algo)  # validate early, not at dispatch
    rng = np.random.default_rng(seed)
    out = []
    now = 0.0
    for rid in range(n_requests):
        now += float(rng.exponential(1.0 / arrival_rate))
        algo = algorithms[int(rng.integers(len(algorithms)))].upper()
        sources: Optional[Tuple[int, ...]] = None
        if algo in BATCHABLE and multi_source > 1:
            sources = tuple(
                int(s) for s in rng.integers(source_pool, size=multi_source)
            )
        out.append(Request(
            request_id=rid,
            tenant=tenants[int(rng.integers(len(tenants)))],
            graph_id=graphs[int(rng.integers(len(graphs)))],
            algorithm=algo,
            arrival=now,
            priority=int(priorities[int(rng.integers(len(priorities)))]),
            deadline=None if deadline is None else now + float(deadline),
            sources=sources,
        ))
    return tuple(out)
