"""The deterministic single-server load-test simulator.

Discrete-event loop over one engine "slot": arrivals are offered to the
bounded admission queue *at their own arrival times* (so queue contention
during a long service is evaluated faithfully), the scheduler picks the
next dispatch when the server frees up, the engine pool supplies a warm
or cold engine, and the engine's simulated ``run`` provides the service
time.  Every timestamp lives on the serve clock — the same virtual-time
discipline as :mod:`repro.gpusim` — and every random draw comes from the
workload generator's seeded stream, so a config replays bit-identically:
same request trace, same event stream, same SLO report, same digest.

The batching knob: with ``max_batch > 1`` the dispatcher may *hold* the
server for up to ``batch_wait`` seconds when another arrival is imminent
and the queue has not yet filled a batch — trading first-request latency
for fused service (see :mod:`repro.serve.batching`).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engines import registry
from repro.engines.base import RunResult
from repro.graph.properties import best_source
from repro.gpusim.device import GPUSpec
from repro.gpusim.events import EventLog, SimEvent
from repro.harness.experiments import (
    BENCH_SCALE,
    PR_TOL,
    SSSP_WEIGHT_HIGH,
    _cached_dataset,
)
from repro.algorithms import make_program
from repro.serve.batching import make_batched
from repro.serve.pool import EnginePool, PoolStats
from repro.serve.queue import AdmissionQueue, TenantAccount
from repro.serve.request import (
    Request,
    RequestStatus,
    Response,
    engine_key,
    generate_requests,
)
from repro.serve.scheduler import make_scheduler
from repro.serve.slo import canonical_json, fold_slo

__all__ = ["ServeConfig", "WorkloadCatalog", "LoadTestResult",
           "run_load_test", "quick_config"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a load test depends on — the digest's whole input."""

    seed: int = 0
    n_requests: int = 24
    #: Offered load, requests per simulated second (open loop).
    arrival_rate: float = 1.0
    graphs: Tuple[str, ...] = ("GS",)
    algorithms: Tuple[str, ...] = ("BFS", "CC")
    tenants: Tuple[str, ...] = ("t0", "t1")
    priorities: Tuple[int, ...] = (0,)
    #: Per-request deadline budget in seconds after arrival (None = none).
    deadline: Optional[float] = None
    #: Explicit sources per batchable request (>1 enables multi-source).
    multi_source: int = 1
    engine: str = "Ascetic"
    scale: float = BENCH_SCALE
    queue_capacity: int = 16
    queue_policy: str = "reject"
    scheduler: str = "affinity"
    max_batch: int = 1
    #: Max seconds the dispatcher holds the free server for a fuller batch.
    batch_wait: float = 0.0
    max_engines: int = 2
    aging_seconds: float = 60.0

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


class WorkloadCatalog:
    """Graph variants and device specs, built once and shared by identity.

    Warm-region validity is checked by *object identity*
    (:meth:`~repro.core.static_region.StaticRegion.compatible_with`), so
    the catalog must hand back the very same graph object for every
    request with the same affinity key — rebuilding, say, the weighted
    view per request would silently defeat all cross-request reuse.
    """

    def __init__(self, scale: float = BENCH_SCALE) -> None:
        self.scale = scale
        self._graphs: Dict[Tuple[str, str], Any] = {}

    def dataset(self, graph_id: str):
        return _cached_dataset(graph_id, self.scale)

    def graph(self, graph_id: str, variant: str):
        """The shared graph object for one affinity key."""
        key = (graph_id, variant)
        graph = self._graphs.get(key)
        if graph is None:
            graph = self.dataset(graph_id).graph
            if variant == "weighted":
                graph = graph.with_random_weights(high=SSSP_WEIGHT_HIGH)
            elif variant == "sym":
                graph = graph.symmetrized()
            elif variant == "rev":
                graph = graph.reverse()
            elif variant != "plain":
                raise ValueError(f"unknown graph variant {variant!r}")
            self._graphs[key] = graph
        return graph

    def spec(self, graph_id: str) -> GPUSpec:
        return GPUSpec(memory_bytes=self.dataset(graph_id).gpu_memory_bytes)

    def data_scale(self, graph_id: str) -> float:
        return self.dataset(graph_id).scale

    def resolve_sources(self, request: Request, graph) -> Tuple[int, ...]:
        """Fold a request's raw source ids into the graph's vertex range."""
        if request.sources is None:
            return (best_source(graph),)
        return tuple(int(s) % graph.n_vertices for s in request.sources)

    def program_for(self, batch: Tuple[Request, ...], graph):
        """Build the (possibly fused) program one dispatch runs."""
        lead = batch[0]
        algo = lead.algorithm
        all_sources: List[int] = []
        for r in batch:
            all_sources.extend(self.resolve_sources(r, graph))
        if len(batch) > 1 or len(all_sources) > 1:
            return make_batched(algo, all_sources)
        if algo in ("BFS", "SSSP", "SSWP"):
            return make_program(algo, source=all_sources[0])
        if algo in ("PR", "PR-PULL"):
            return make_program(algo, tol=PR_TOL)
        return make_program(algo)


@dataclass
class LoadTestResult:
    """One load test's full, replayable output."""

    config: ServeConfig
    requests: Tuple[Request, ...]
    responses: Tuple[Response, ...]
    events: List[SimEvent]
    report: Dict[str, Any]
    pool_stats: PoolStats
    tenants: Dict[str, TenantAccount]
    #: Total simulated time (last completion or arrival).
    horizon: float = 0.0
    run_results: List[RunResult] = field(default_factory=list)

    def trace_payload(self) -> Dict[str, Any]:
        """Canonical JSON-able form of trace + outcomes + report."""
        return {
            "config": self.config.as_dict(),
            "requests": [asdict(r) for r in self.requests],
            "responses": [
                {
                    "request_id": resp.request.request_id,
                    "status": resp.status.value,
                    "shed_reason": resp.shed_reason,
                    "start_time": resp.start_time,
                    "finish_time": resp.finish_time,
                    "batch_size": resp.batch_size,
                    "warm": resp.warm,
                }
                for resp in self.responses
            ],
            "report": self.report,
        }

    def run_digest(self) -> str:
        """Digest over trace + responses + report (the CI-pinned value)."""
        blob = canonical_json(self.trace_payload())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def run_load_test(config: ServeConfig,
                  requests: Optional[Tuple[Request, ...]] = None) -> LoadTestResult:
    """Run one seeded load test; pure function of ``(config, requests)``.

    ``requests`` overrides the generated trace (tests build hand-crafted
    traces; the CLI always generates from the config's seed).
    """
    if requests is None:
        requests = generate_requests(
            n_requests=config.n_requests,
            seed=config.seed,
            arrival_rate=config.arrival_rate,
            graphs=config.graphs,
            algorithms=config.algorithms,
            tenants=config.tenants,
            priorities=config.priorities,
            deadline=config.deadline,
            multi_source=config.multi_source,
        )
    catalog = WorkloadCatalog(config.scale)
    log = EventLog(record=True)
    queue = AdmissionQueue(config.queue_capacity, config.queue_policy)
    scheduler = make_scheduler(config.scheduler, config.max_batch,
                               config.aging_seconds)
    # Re-arm pooled engines for warm start only when the engine declares the
    # capability — registry metadata instead of a hardcoded Ascetic-ism.
    pool = EnginePool(
        config.max_engines,
        keep_static=registry.describe(config.engine).supports_warm_start,
    )
    responses: Dict[int, Response] = {}
    run_results: List[RunResult] = []

    def shed(victim: Request, reason: str, t: float) -> None:
        log.marker("request-shed", reason, t,
                   extra=(("request", float(victim.request_id)),))
        responses[victim.request_id] = Response(
            request=victim, status=RequestStatus.SHED, shed_reason=reason)

    def admit_until(t: float) -> None:
        nonlocal next_arrival
        while next_arrival < len(requests) \
                and requests[next_arrival].arrival <= t:
            r = requests[next_arrival]
            next_arrival += 1
            log.marker(
                "request-arrive", f"{r.tenant}/{r.graph_id}/{r.algorithm}",
                r.arrival,
                extra=(("request", float(r.request_id)),
                       ("deadline", -1.0 if r.deadline is None
                        else float(r.deadline)),
                       ("priority", float(r.priority))))
            for victim, reason in queue.purge_expired(r.arrival):
                shed(victim, reason, r.arrival)
            admitted, dropped = queue.offer(r, r.arrival)
            for victim, reason in dropped:
                shed(victim, reason, r.arrival)
            if admitted:
                log.marker("request-admit", r.tenant, r.arrival,
                           extra=(("request", float(r.request_id)),))

    next_arrival = 0
    now = 0.0  # when the server is next free
    while next_arrival < len(requests) or queue:
        if not queue:
            now = max(now, requests[next_arrival].arrival)
        admit_until(now)
        if not queue:
            continue  # the shed path can drain what just arrived
        # Hold the free server briefly if another arrival could complete
        # a batch — the latency/throughput tradeoff knob.
        if (config.max_batch > 1 and config.batch_wait > 0
                and next_arrival < len(requests)
                and len(queue) < config.max_batch
                and requests[next_arrival].arrival <= now + config.batch_wait):
            now = requests[next_arrival].arrival
            continue
        for victim, reason in queue.purge_expired(now):
            shed(victim, reason, now)
        if not queue:
            continue
        batch = scheduler.select(queue.items, now, pool.warm_keys())
        for r in batch:
            queue.take(r)
        key = engine_key(batch[0])
        graph = catalog.graph(*key)
        graph_id = key[0]
        engine, pooled = pool.acquire(key, lambda: registry.create(
            config.engine, spec=catalog.spec(graph_id),
            data_scale=catalog.data_scale(graph_id)))
        log.marker("warm-hit" if pooled else "warm-miss",
                   f"{key[0]}/{key[1]}", now,
                   extra=(("requests", float(len(batch))),))
        for r in batch:
            log.marker("request-start", r.tenant, now,
                       extra=(("request", float(r.request_id)),
                              ("batch", float(len(batch))),
                              ("warm", 1.0 if pooled else 0.0)))
        result = engine.run(graph, catalog.program_for(batch, graph))
        run_results.append(result)
        pool.fold_result(result)
        warm_run = bool(result.extra.get("warm_start", 0.0))
        finish = now + result.elapsed_seconds
        for r in batch:
            log.marker("request-complete", r.tenant, finish,
                       extra=(("request", float(r.request_id)),
                              ("warm_start", 1.0 if warm_run else 0.0)))
            queue.note_completed(r, result.elapsed_seconds)
            responses[r.request_id] = Response(
                request=r, status=RequestStatus.COMPLETED,
                start_time=now, finish_time=finish,
                batch_size=len(batch), warm=warm_run)
        now = finish

    horizon = max([now] + [r.arrival for r in requests]) if requests else now
    report = fold_slo(log.events, horizon=horizon)
    return LoadTestResult(
        config=config,
        requests=requests,
        responses=tuple(responses[r.request_id] for r in requests),
        events=log.events,
        report=report,
        pool_stats=pool.stats,
        tenants=dict(queue.tenants),
        horizon=horizon,
        run_results=run_results,
    )


def quick_config(seed: int = 0) -> ServeConfig:
    """The tiny seeded load test behind ``repro serve --quick`` and CI.

    Two affinity keys on one small dataset — BFS/CC share the plain CSR,
    SSSP owns the weighted view — so the affinity scheduler, the engine
    pool, batching, deadlines, and shedding all get exercised in a run
    that stays under a minute of wall clock.
    """
    return ServeConfig(
        seed=seed,
        n_requests=12,
        arrival_rate=0.4,
        graphs=("GS",),
        algorithms=("BFS", "CC", "SSSP"),
        tenants=("acme", "beta"),
        priorities=(0, 1),
        deadline=45.0,
        multi_source=2,
        engine="Ascetic",
        scale=5e-5,
        queue_capacity=8,
        queue_policy="deadline",
        scheduler="affinity",
        max_batch=2,
        batch_wait=0.25,
        max_engines=2,
        aging_seconds=10.0,
    )
