"""Synthetic graph generators.

The paper evaluates on four real-world graphs (two social networks, two web
crawls) plus RMAT-generated graphs (§4.1, Table 3 and Figure 11).  The real
datasets are multi-billion-edge downloads we cannot ship, so
:mod:`repro.graph.datasets` builds scaled analogues from the generators here:

* :func:`rmat_graph` — the classic Kronecker-style recursive-matrix
  generator [Chakrabarti et al. 2004], the very generator the paper uses for
  its synthetic sweep.  Produces the heavy-tailed degree distribution of
  social graphs.
* :func:`web_graph` — a Kleinberg-style locality generator mimicking the
  lexicographic URL ordering of the gsh/uk web crawls: near-id links within a
  host plus Pareto-tailed longer links, which is what makes their BFS active
  sets so narrow (Table 1's 0.8 %) and their frontiers so deep.
* :func:`social_graph` — the same locality backbone plus Zipf hub skew, the
  friendster analogue (Table 1's 4.5 %, ~20 BFS levels).

All generators are fully vectorized and deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "rmat_graph",
    "web_graph",
    "social_graph",
    "erdos_renyi_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
    "complete_graph",
]


def _rmat_pairs(
    scale: int,
    n_edges: int,
    a: float,
    b: float,
    c: float,
    rng: np.random.Generator,
    noise: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n_edges`` (src, dst) pairs from an RMAT(2^scale) distribution.

    Vectorized over edges: each recursion level consumes one uniform draw per
    edge and appends one bit to the source and destination ids.  A small
    per-level multiplicative ``noise`` de-correlates levels, the standard
    "smoothing" that avoids RMAT's grid artifacts.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for _ in range(scale):
        jitter = 1.0 + noise * (rng.random(4) * 2.0 - 1.0)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        u = rng.random(n_edges)
        src_bit = u >= pa + pb
        dst_bit = ((u >= pa) & (u < pa + pb)) | (u >= pa + pb + pc)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src, dst


def rmat_graph(
    scale: int,
    n_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    directed: bool = False,
    seed: int = 1,
    name: str | None = None,
) -> CSRGraph:
    """Generate an RMAT graph with ``2**scale`` vertices and ``n_edges`` edges.

    Defaults (a, b, c) = (0.57, 0.19, 0.19) are the Graph500 parameters, also
    used by the paper's RMAT sweep.  Vertex ids are randomly permuted so that
    degree is uncorrelated with id (matching how downloaded datasets are
    shuffled), self-loops are kept, parallel edges are kept — exactly what a
    raw edge-list download looks like.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    src, dst = _rmat_pairs(scale, n_edges, a, b, c, rng)
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    return CSRGraph.from_edges(
        src,
        dst,
        n,
        directed=directed,
        name=name or f"rmat{scale}-{n_edges}",
    )


def _pareto_offsets(
    rng: np.random.Generator, n: int, window: int, alpha: float, n_vertices: int
) -> np.ndarray:
    """Link distances: Pareto(alpha) tail starting at ``window``.

    ``alpha`` controls how quickly long links die out — the knob that sets
    the graph's BFS depth.  Large ``alpha`` (≥ 3) yields the hundred-level
    frontiers of real web crawls; small ``alpha`` collapses the diameter.
    """
    u = rng.random(n)
    off = (window * (1.0 - u) ** (-1.0 / alpha)).astype(np.int64)
    return np.minimum(off, n_vertices - 1)


def web_graph(
    n_vertices: int,
    n_edges: int,
    window: int = 32,
    alpha: float = 4.0,
    frac_long: float = 0.4,
    seed: int = 1,
    name: str | None = None,
) -> CSRGraph:
    """Generate a directed web-crawl-like graph.

    Crawls order URLs lexicographically, so most links land *near* the
    source id (within a host ≈ ``window``); the rest follow a Pareto
    distance distribution (``alpha``, ``frac_long``) — links to other hosts
    that are themselves mostly crawl-adjacent.  This is a degree-skew-free
    Kleinberg-style model; it reproduces the two properties of the paper's
    web datasets (GS, UK) that the engines' behaviour depends on: strong
    id-locality and *very deep* BFS frontiers (uk-2007-style crawls run
    hundreds of levels — Table 1's 0.8 % active edges per iteration).

    Defaults are the UK preset: ~130 BFS levels and ≈0.8 % mean active
    edges per iteration at the default dataset scale.
    """
    if not 0.0 <= frac_long <= 1.0:
        raise ValueError("frac_long must be in [0, 1]")
    if alpha <= 0 or window < 1:
        raise ValueError("alpha must be positive, window >= 1")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    off_local = rng.integers(1, max(window, 2), size=n_edges, dtype=np.int64)
    off_long = _pareto_offsets(rng, n_edges, window, alpha, n_vertices)
    off = np.where(rng.random(n_edges) < frac_long, off_long, off_local)
    signs = rng.integers(0, 2, size=n_edges, dtype=np.int64) * 2 - 1
    dst = np.clip(src + signs * off, 0, n_vertices - 1)
    return CSRGraph.from_edges(
        src, dst, n_vertices, directed=True, name=name or f"web-{n_vertices}-{n_edges}"
    )


def social_graph(
    n_vertices: int,
    n_edges: int,
    window: int = 64,
    alpha: float = 3.2,
    hub_exponent: float = 0.9,
    seed: int = 1,
    name: str | None = None,
) -> CSRGraph:
    """Generate an undirected social-network-like graph.

    Two ingredients real social graphs have and pure RMAT lacks at small
    scale: *community structure* (links are distance-local under some
    hidden ordering — here the id axis, with Pareto(``alpha``) long links)
    and *hub skew without global shortcuts* (edge endpoints are drawn
    Zipf(``hub_exponent``)-weighted from a shuffled rank, so hubs are big
    but locally embedded).  The result keeps a friendster-like BFS depth of
    ~20 levels (Table 1: 4.5 % active edges per iteration) instead of the
    4-level collapse an RMAT analogue suffers when scaled down.
    """
    if alpha <= 0 or window < 1:
        raise ValueError("alpha must be positive, window >= 1")
    if hub_exponent < 0:
        raise ValueError("hub_exponent must be non-negative")
    rng = np.random.default_rng(seed)
    # Zipf-weighted source sampling over a shuffled rank: local hubs.
    weights = np.arange(1, n_vertices + 1, dtype=np.float64) ** (-hub_exponent)
    weights = weights[rng.permutation(n_vertices)]
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    src = np.searchsorted(cdf, rng.random(n_edges)).astype(np.int64)
    off_local = rng.integers(1, max(window, 2), size=n_edges, dtype=np.int64)
    off_long = _pareto_offsets(rng, n_edges, window, alpha, n_vertices)
    off = np.where(rng.random(n_edges) < 0.5, off_long, off_local)
    signs = rng.integers(0, 2, size=n_edges, dtype=np.int64) * 2 - 1
    dst = np.clip(src + signs * off, 0, n_vertices - 1)
    return CSRGraph.from_edges(
        src, dst, n_vertices, directed=False,
        name=name or f"social-{n_vertices}-{n_edges}",
    )


def erdos_renyi_graph(
    n_vertices: int,
    n_edges: int,
    directed: bool = True,
    seed: int = 1,
    name: str | None = None,
) -> CSRGraph:
    """Uniform random graph with exactly ``n_edges`` arcs (with replacement)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    dst = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    return CSRGraph.from_edges(
        src, dst, n_vertices, directed=directed, name=name or f"er-{n_vertices}-{n_edges}"
    )


# --------------------------------------------------------------------------
# Small deterministic graphs for tests and examples.
# --------------------------------------------------------------------------


def path_graph(n: int, directed: bool = True) -> CSRGraph:
    """0 → 1 → 2 → … → n-1."""
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(src, src + 1, n, directed=directed, name=f"path-{n}")


def cycle_graph(n: int, directed: bool = True) -> CSRGraph:
    """A directed ring on ``n`` vertices."""
    src = np.arange(n, dtype=np.int64)
    return CSRGraph.from_edges(src, (src + 1) % n, n, directed=directed, name=f"cycle-{n}")


def star_graph(n: int, directed: bool = True) -> CSRGraph:
    """Vertex 0 points at every other vertex."""
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, n, directed=directed, name=f"star-{n}")


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Undirected 2-D grid — handy for predictable SSSP distances."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    src = np.concatenate([right[0], down[0]])
    dst = np.concatenate([right[1], down[1]])
    return CSRGraph.from_edges(
        src, dst, rows * cols, directed=False, name=f"grid-{rows}x{cols}"
    )


def complete_graph(n: int, directed: bool = True) -> CSRGraph:
    """All ordered pairs (no self-loops)."""
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate([np.delete(np.arange(n, dtype=np.int64), v) for v in range(n)])
    return CSRGraph.from_edges(src, dst, n, directed=directed, name=f"k{n}")
