"""Edge-array partitioning.

The PT baseline (GraphReduce-style, §2.1) divides the graph into partitions
that each fit in GPU memory and swaps whole partitions per iteration.  Both
Ascetic's chunk table and the PT engine reason about *vertex-aligned,
contiguous byte ranges of the edge array* — this module produces them.

Partitions are aligned to vertex boundaries whenever possible (an edge slice
is only directly computable if the owning vertex's CSR extent is known);
a vertex whose edge list alone exceeds the byte budget is split across
several partitions, exactly as real systems shard mega-hubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["EdgePartition", "partition_by_bytes", "partition_by_vertex_ranges", "partitions_of_vertices"]


@dataclass(frozen=True)
class EdgePartition:
    """A contiguous slice of the edge array.

    ``[v_lo, v_hi)`` is the vertex range whose edges the slice covers;
    ``[e_lo, e_hi)`` the edge-index range.  For a split mega-vertex the
    vertex range is a single vertex repeated across several partitions.
    """

    pid: int
    v_lo: int
    v_hi: int
    e_lo: int
    e_hi: int
    bytes_per_edge: int

    @property
    def n_edges(self) -> int:
        return self.e_hi - self.e_lo

    @property
    def nbytes(self) -> int:
        return self.n_edges * self.bytes_per_edge


def partition_by_bytes(graph: CSRGraph, budget_bytes: int) -> List[EdgePartition]:
    """Split the edge array into vertex-aligned partitions of ≤ ``budget_bytes``.

    Greedy first-fit over the vertex order (the edge array is already sorted
    by source), the strategy GraphReduce/GridGraph-style systems use.  A
    single vertex whose edges exceed the budget is split at raw edge
    granularity into budget-sized pieces.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    bpe = graph.bytes_per_edge
    edges_per_part = max(budget_bytes // bpe, 1)
    parts: List[EdgePartition] = []
    indptr = graph.indptr
    n = graph.n_vertices
    v = 0
    while v < n:
        e_lo = int(indptr[v])
        # Furthest vertex boundary still within budget.
        v_hi = int(np.searchsorted(indptr, e_lo + edges_per_part, side="right")) - 1
        if v_hi <= v:
            # Vertex v alone overflows the budget: split its edge range.
            e_end = int(indptr[v + 1])
            e = e_lo
            while e < e_end:
                e2 = min(e + edges_per_part, e_end)
                parts.append(EdgePartition(len(parts), v, v + 1, e, e2, bpe))
                e = e2
            v += 1
        else:
            v_hi = min(v_hi, n)
            parts.append(EdgePartition(len(parts), v, v_hi, e_lo, int(indptr[v_hi]), bpe))
            v = v_hi
    if not parts:  # empty graph still gets one empty partition
        parts.append(EdgePartition(0, 0, n, 0, 0, bpe))
    return parts


def partition_by_vertex_ranges(graph: CSRGraph, n_parts: int) -> List[EdgePartition]:
    """Split into ``n_parts`` partitions of (nearly) equal *edge* counts."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    bpe = graph.bytes_per_edge
    m = graph.n_edges
    bounds = [int(round(i * m / n_parts)) for i in range(n_parts + 1)]
    parts: List[EdgePartition] = []
    for i in range(n_parts):
        e_lo, e_hi = bounds[i], bounds[i + 1]
        v_lo = int(np.searchsorted(graph.indptr, e_lo, side="right")) - 1
        v_hi = int(np.searchsorted(graph.indptr, e_hi, side="left"))
        parts.append(EdgePartition(i, max(v_lo, 0), min(v_hi, graph.n_vertices), e_lo, e_hi, bpe))
    return parts


def partitions_of_vertices(
    graph: CSRGraph, parts: List[EdgePartition], active: np.ndarray
) -> np.ndarray:
    """Boolean mask over ``parts``: which partitions hold edges of active vertices.

    ``active`` is a boolean mask over vertices.  A partition is *touched* if
    any active vertex has at least one edge inside its ``[e_lo, e_hi)`` range.
    Vectorized: for every active vertex with degree > 0, mark the partition
    range ``[part_of(e_lo_v), part_of(e_hi_v - 1)]``.
    """
    touched = np.zeros(len(parts), dtype=bool)
    vs = np.nonzero(active)[0]
    if vs.size == 0:
        return touched
    e_lo = graph.indptr[vs]
    e_hi = graph.indptr[vs + 1]
    has_edges = e_hi > e_lo
    e_lo, e_hi = e_lo[has_edges], e_hi[has_edges]
    if e_lo.size == 0:
        return touched
    starts = np.array([p.e_lo for p in parts], dtype=np.int64)
    p_first = np.searchsorted(starts, e_lo, side="right") - 1
    p_last = np.searchsorted(starts, e_hi - 1, side="right") - 1
    # Mark all partitions in [p_first, p_last] per vertex via a diff array.
    diff = np.zeros(len(parts) + 1, dtype=np.int64)
    np.add.at(diff, p_first, 1)
    np.add.at(diff, p_last + 1, -1)
    touched = np.cumsum(diff[:-1]) > 0
    # Empty partitions (e_lo == e_hi) hold no edges and are never touched,
    # even when they sit inside a marked span.
    sizes = np.array([p.e_hi - p.e_lo for p in parts], dtype=np.int64)
    return touched & (sizes > 0)
