"""Graph substrate: CSR storage, generators, named datasets, partitioning."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    rmat_graph,
    web_graph,
    social_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
    grid_graph,
    complete_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.partition import EdgePartition, partition_by_bytes, partition_by_vertex_ranges
from repro.graph.reorder import bfs_order, degree_order, random_order, relabel
from repro.graph.shard import GraphShard, halo_map, per_shard_budgets, shard_graph

__all__ = [
    "CSRGraph",
    "rmat_graph",
    "web_graph",
    "social_graph",
    "erdos_renyi_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "complete_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "EdgePartition",
    "partition_by_bytes",
    "partition_by_vertex_ranges",
    "GraphShard",
    "shard_graph",
    "per_shard_budgets",
    "halo_map",
    "bfs_order",
    "degree_order",
    "random_order",
    "relabel",
]
