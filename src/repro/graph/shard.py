"""Graph sharding for multi-device execution.

A :class:`GraphShard` is one device's view of the graph: a contiguous slice
of the edge array (produced by
:func:`~repro.graph.partition.partition_by_vertex_ranges`, so shards carry
nearly equal edge counts) re-expressed as a CSR over the **full vertex
set**.  Keeping every vertex in every shard mirrors the paper-scale reality
that vertex state is small and replicated per device while the edge array —
the thing that does not fit — is split:

* destinations stay valid global vertex ids (``CSRGraph`` validation holds);
* a vertex's *local degree* in a shard is exactly its number of edges inside
  the shard's ``[e_lo, e_hi)`` slice — zero for vertices owned elsewhere —
  so any frontier mask over global ids filters itself for free;
* a mega-vertex whose edge list spans a shard boundary (the power-law case
  :func:`partition_by_vertex_ranges` splits mid-vertex) simply contributes
  part of its degree to each side; summed over shards, every edge appears
  exactly once.

``boundary_vertices`` is the shard's halo: the vertices whose global edge
list crosses this shard's boundary and is therefore co-processed by a
neighbouring device in the same superstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import EdgePartition, partition_by_vertex_ranges

__all__ = ["GraphShard", "shard_graph", "per_shard_budgets", "halo_map"]


@dataclass(frozen=True)
class GraphShard:
    """One device's slice of the edge array, as a full-vertex-set CSR."""

    shard_id: int
    n_shards: int
    #: The local CSR view: all global vertices, only this shard's edges.
    graph: CSRGraph
    #: Global edge-index range ``[e_lo, e_hi)`` this shard holds.
    e_lo: int
    e_hi: int
    #: Vertex range ``[v_lo, v_hi)`` with at least one local edge.
    v_lo: int
    v_hi: int
    #: Vertices whose global edge list crosses this shard's boundary
    #: (split mega-vertices shared with a neighbouring shard).
    boundary_vertices: np.ndarray = field(compare=False)

    @property
    def n_local_edges(self) -> int:
        return self.e_hi - self.e_lo

    @property
    def local_edge_bytes(self) -> int:
        return self.n_local_edges * self.graph.bytes_per_edge

    def local_degree(self) -> np.ndarray:
        """Per-vertex edge count inside this shard (0 for foreign vertices)."""
        return self.graph.out_degree()


def _shard_from_partition(graph: CSRGraph, part: EdgePartition,
                          n_shards: int) -> GraphShard:
    e_lo, e_hi = part.e_lo, part.e_hi
    indptr = np.clip(graph.indptr, e_lo, e_hi) - e_lo
    indices = graph.indices[e_lo:e_hi]
    weights = None if graph.weights is None else graph.weights[e_lo:e_hi]
    local = CSRGraph(
        indptr=indptr,
        indices=indices,
        weights=weights,
        directed=graph.directed,
        name=f"{graph.name}#s{part.pid}of{n_shards}",
    )
    # Boundary (halo) vertices: their global edge extent sticks out of
    # [e_lo, e_hi) on either side while still having local edges.
    deg = local.out_degree()
    starts = graph.indptr[:-1]
    ends = graph.indptr[1:]
    crosses = (deg > 0) & ((starts < e_lo) | (ends > e_hi))
    return GraphShard(
        shard_id=part.pid,
        n_shards=n_shards,
        graph=local,
        e_lo=e_lo,
        e_hi=e_hi,
        v_lo=part.v_lo,
        v_hi=part.v_hi,
        boundary_vertices=np.nonzero(crosses)[0].astype(np.int64),
    )


def shard_graph(graph: CSRGraph, n_shards: int) -> List[GraphShard]:
    """Split ``graph`` into ``n_shards`` equal-edge-count device shards.

    Built on :func:`partition_by_vertex_ranges`: shard ``k`` holds the
    global edge slice ``[bounds[k], bounds[k+1])``, so the shards tile the
    edge array exactly — no edge is dropped or duplicated, including edges
    of mega-vertices split across shards (property-tested in
    ``tests/test_shard.py``).
    """
    parts = partition_by_vertex_ranges(graph, n_shards)
    return [_shard_from_partition(graph, p, n_shards) for p in parts]


def per_shard_budgets(shards: List[GraphShard], total_bytes: int) -> List[int]:
    """Split a fabric-wide Static Region budget proportionally to shard size.

    Each shard gets a budget proportional to its local edge bytes (at least
    1 byte so a degenerate empty shard still constructs a region), with the
    remainder of the integer division going to the earliest shards —
    deterministic and summing to exactly ``total_bytes`` when
    ``total_bytes >= len(shards)``.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    sizes = np.array([max(s.local_edge_bytes, 1) for s in shards],
                     dtype=np.int64)
    raw = sizes * total_bytes / sizes.sum()
    budgets = np.maximum(raw.astype(np.int64), 1)
    # Hand the rounding remainder to the largest shards, stable order.
    shortfall = int(total_bytes - budgets.sum())
    if shortfall > 0:
        order = np.argsort(-sizes, kind="stable")[:shortfall]
        budgets[order] += 1
    return [int(b) for b in budgets]


def halo_map(shards: List[GraphShard]) -> Dict[int, np.ndarray]:
    """Shard id → its boundary (halo) vertex ids."""
    return {s.shard_id: s.boundary_vertices for s in shards}
