"""Vertex reordering / relabeling.

Out-of-memory engines are sensitive to the *layout* of the edge array:
Ascetic's front-fill pins a byte-contiguous prefix, so placing the hottest
vertices first turns the Static Region into a perfect hot-set cache —
a layout-level complement to §3.4's runtime replacement (and a stronger
version of §5's observation that the initial fill barely matters on
*shuffled* datasets: on *ordered* ones it matters a lot, which
``benchmarks/bench_reordering.py`` quantifies).

Orderings:

* :func:`degree_order` — hubs first.  Under power-law degree, the top
  fraction of vertices owns most edges *and* most accesses;
* :func:`bfs_order` — breadth-first discovery order from a hub: places
  co-active vertices (same frontier) adjacently, improving chunk-level
  co-residency for wave algorithms;
* :func:`random_order` — destroys locality (KONECT-style shuffling);
  useful as a control.

All return a permutation ``perm`` with ``perm[old_id] = new_id``;
:func:`relabel` applies one to a graph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["degree_order", "bfs_order", "random_order", "relabel"]


def degree_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Permutation placing vertices by out-degree (hubs first by default)."""
    deg = graph.out_degree()
    key = -deg if descending else deg
    # Stable order keeps determinism for equal degrees.
    order = np.argsort(key, kind="stable")  # order[new_id] = old_id
    perm = np.empty(graph.n_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.n_vertices)
    return perm


def bfs_order(graph: CSRGraph, source: int | None = None) -> np.ndarray:
    """Permutation by BFS discovery order from ``source`` (default: hub).

    Unreached vertices follow, in id order.  Vertices of the same frontier
    end up adjacent — co-active in the same iteration, co-resident in the
    same chunks.
    """
    from repro.algorithms.bfs import BFS
    from repro.graph.properties import best_source

    src = best_source(graph) if source is None else source
    levels = BFS(source=src).run_reference(graph)
    # Sort by (level, id); unreached (-1) mapped to +inf-ish level.
    sort_levels = np.where(levels < 0, np.iinfo(np.int32).max, levels)
    order = np.lexsort((np.arange(graph.n_vertices), sort_levels))
    perm = np.empty(graph.n_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.n_vertices)
    return perm


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """A uniform random permutation (the KONECT/SNAP shuffle)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.n_vertices).astype(np.int64)


def relabel(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Apply a permutation: vertex ``v`` becomes ``perm[v]``.

    The result is the same abstract graph (isomorphic — algorithms produce
    permuted-identical results) with a different edge-array layout.
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (graph.n_vertices,):
        raise ValueError("permutation length must equal n_vertices")
    if not np.array_equal(np.sort(perm), np.arange(graph.n_vertices)):
        raise ValueError("not a permutation")
    out = CSRGraph.from_edges(
        perm[graph.edge_sources()],
        perm[graph.indices.astype(np.int64)],
        graph.n_vertices,
        weights=graph.weights,
        directed=True,  # arcs already as stored
        name=graph.name + "+reordered",
    )
    out.directed = graph.directed
    return out
