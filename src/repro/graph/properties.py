"""Graph statistics used for dataset validation and reports.

The scaled analogues in :mod:`repro.graph.datasets` must preserve the *shape*
of the paper's datasets — heavy-tailed degrees for the social graphs,
id-locality for the web crawls.  These statistics quantify that, and the
test suite asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "degree_gini", "locality_fraction", "best_source"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    n_vertices: int
    n_edges: int
    max_out_degree: int
    mean_out_degree: float
    degree_gini: float
    isolated_fraction: float
    locality_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n_vertices:,} m={self.n_edges:,} "
            f"max_deg={self.max_out_degree:,} mean_deg={self.mean_out_degree:.2f} "
            f"gini={self.degree_gini:.3f} isolated={self.isolated_fraction:.1%} "
            f"local={self.locality_fraction:.1%}"
        )


def degree_gini(graph: CSRGraph) -> float:
    """Gini coefficient of the out-degree distribution (0 = uniform, →1 = skewed).

    Social graphs score noticeably higher than uniform random graphs; the
    datasets module's RMAT analogues are validated against this.
    """
    deg = np.sort(graph.out_degree().astype(np.float64))
    n = deg.size
    if n == 0 or deg.sum() == 0:
        return 0.0
    cum = np.cumsum(deg)
    # Standard discrete Gini: 1 - 2 * sum(cumulative shares) / (n * total) + 1/n
    return float(1.0 - 2.0 * cum.sum() / (n * cum[-1]) + 1.0 / n)


def locality_fraction(graph: CSRGraph, window: int = 1024) -> float:
    """Fraction of edges whose endpoints are within ``window`` ids of each other.

    Web crawls ordered lexicographically have most links within a host, i.e.
    a nearby id; social graphs with shuffled ids do not.
    """
    if graph.n_edges == 0:
        return 0.0
    src = graph.edge_sources()
    return float(np.mean(np.abs(src - graph.indices) <= window))


def graph_stats(graph: CSRGraph, window: int = 1024) -> GraphStats:
    """Compute all summary statistics at once."""
    deg = graph.out_degree()
    return GraphStats(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        max_out_degree=int(deg.max()) if deg.size else 0,
        mean_out_degree=float(deg.mean()) if deg.size else 0.0,
        degree_gini=degree_gini(graph),
        isolated_fraction=float(np.mean(deg == 0)) if deg.size else 0.0,
        locality_fraction=locality_fraction(graph, window),
    )


def best_source(graph: CSRGraph) -> int:
    """A good traversal root: the maximum-out-degree vertex.

    BFS/SSSP papers start from a vertex that reaches a large component;
    with synthetic graphs the max-degree hub is the reliable stand-in.
    """
    if graph.n_vertices == 0:
        raise ValueError("empty graph has no source")
    return int(np.argmax(graph.out_degree()))
