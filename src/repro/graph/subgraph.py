"""Materialized subgraphs — the SubCSR the On-demand Engine actually ships.

The cost model charges ``active_edges × bytes_per_edge + vertices × 8`` for
each gathered subgraph; this module *builds* that structure (Subway's
SubCSR: compacted offsets over the requested vertices plus their gathered
edge slices), so the accounting can be cross-validated against real bytes
and engines can be run in ``materialize`` mode that stages genuine buffers.

Everything is vectorized; extraction is O(active edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.frontier import expand_frontier
from repro.graph.csr import CSRGraph

__all__ = ["SubCSR", "extract_subgraph"]


@dataclass(frozen=True)
class SubCSR:
    """A gathered subgraph: the active vertices' edges, compacted.

    ``vertices[i]`` is the original id of compacted vertex ``i``; its edges
    are ``indices[indptr[i]:indptr[i+1]]`` (original destination ids), with
    ``weights`` parallel when present.  ``positions`` maps every gathered
    edge back to its index in the source graph's edge array.
    """

    vertices: np.ndarray  # int64 (n_sub,)
    indptr: np.ndarray  # int64 (n_sub + 1,)
    indices: np.ndarray  # int32 (m_sub,)
    positions: np.ndarray  # int64 (m_sub,)
    weights: Optional[np.ndarray] = None  # uint32 (m_sub,)

    @property
    def n_vertices(self) -> int:
        return self.vertices.size

    @property
    def n_edges(self) -> int:
        return self.indices.size

    @property
    def edge_nbytes(self) -> int:
        """Bytes of the edge payload (what crosses PCIe as data)."""
        per_edge = self.indices.itemsize + (
            self.weights.itemsize if self.weights is not None else 0
        )
        return self.n_edges * per_edge

    @property
    def offset_nbytes(self) -> int:
        """Bytes of the per-vertex request/offset structures."""
        return self.n_vertices * 8

    @property
    def nbytes(self) -> int:
        """Total staged bytes — must equal the cost model's charge."""
        return self.edge_nbytes + self.offset_nbytes

    def degree(self) -> np.ndarray:
        return np.diff(self.indptr)

    def validate_against(self, graph: CSRGraph) -> None:
        """Assert this SubCSR is exactly the graph's slice it claims to be."""
        if not np.array_equal(graph.indices[self.positions], self.indices):
            raise AssertionError("gathered destinations do not match the source graph")
        if self.weights is not None:
            if graph.weights is None or not np.array_equal(
                graph.weights[self.positions], self.weights
            ):
                raise AssertionError("gathered weights do not match the source graph")
        deg = graph.out_degree()[self.vertices]
        if not np.array_equal(np.diff(self.indptr), deg):
            raise AssertionError("compacted degrees do not match the source graph")


def extract_subgraph(graph: CSRGraph, active: np.ndarray) -> SubCSR:
    """Gather the active vertices' edges into a compacted SubCSR.

    This is the CPU-side step (b) of §2.2 done for real: walk the request
    list, copy each vertex's edge slice into a dense staging buffer, and
    emit the compacted offsets the GPU kernel will index with.
    """
    if active.shape != (graph.n_vertices,):
        raise ValueError("active mask shape mismatch")
    vertices = np.nonzero(active)[0].astype(np.int64)
    exp = expand_frontier(graph, active)
    counts = (graph.indptr[vertices + 1] - graph.indptr[vertices]).astype(np.int64)
    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return SubCSR(
        vertices=vertices,
        indptr=indptr,
        indices=graph.indices[exp.positions].copy(),
        positions=exp.positions,
        weights=(
            graph.weights[exp.positions].copy() if graph.weights is not None else None
        ),
    )
