"""Named datasets — scaled analogues of the paper's Table 3.

The paper evaluates on four real-world graphs plus an RMAT family:

====== ===================== ========== ======== ========
Abbr   Name                  Vertices   Edges    Directed
====== ===================== ========== ======== ========
GS     gsh-2015-host         68.66 M    1.80 B   yes
FK     friendster-konect     68.35 M    2.59 B   no
FS     friendster-snap       124.83 M   3.61 B   no
UK     uk-2007-04            106.86 M   3.79 B   yes
RMAT   RMAT-rand             40–100 M   2.5–12 B no
====== ===================== ========== ======== ========

Those are multi-billion-edge downloads; we build synthetic analogues scaled
by ``scale`` (default 1/1000) that preserve what the engines' behaviour
depends on: vertex:edge ratio, directedness, degree skew (RMAT for the social
graphs, a locality-biased copying model for the web crawls), and — crucially —
the dataset-size : GPU-memory ratio, because the experiment harness also
scales the simulated GPU capacity by the same factor (paper: 16 GB card capped
to 10 GB, §4.1).

Undirected datasets are stored with both arcs materialized; ``paper_edges``
counts undirected edges, so the stored arc count is twice the scaled edge
count, mirroring how a CUDA push framework must symmetrize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph, social_graph, web_graph

__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASETS",
    "load_dataset",
    "rmat_dataset",
    "PAPER_GPU_MEMORY_BYTES",
    "DEFAULT_SCALE",
]

#: The paper caps the P100's 16 GB at 10 GB for most experiments (§4.1).
PAPER_GPU_MEMORY_BYTES = 10 * 10**9
#: Default down-scaling of vertex/edge counts (and of GPU capacity).
DEFAULT_SCALE = 1.0e-3


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one of the paper's datasets."""

    abbr: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    directed: bool
    kind: str  # "social" (RMAT analogue) or "web" (copying-model analogue)
    seed: int

    def scaled_counts(self, scale: float) -> tuple[int, int]:
        """(n_vertices, n_edges) after scaling, with sane floors."""
        n = max(int(self.paper_vertices * scale), 64)
        m = max(int(self.paper_edges * scale), 4 * n)
        return n, m


@dataclass(frozen=True)
class Dataset:
    """A loaded, scaled dataset plus the context needed to mimic the paper."""

    spec: DatasetSpec
    graph: CSRGraph
    scale: float

    @property
    def abbr(self) -> str:
        return self.spec.abbr

    @property
    def gpu_memory_bytes(self) -> int:
        """The simulated GPU capacity: the paper's 10 GB, scaled like the data."""
        return max(int(PAPER_GPU_MEMORY_BYTES * self.scale), 1 << 16)


DATASETS: Dict[str, DatasetSpec] = {
    "GS": DatasetSpec("GS", "gsh-2015-host", 68_660_000, 1_800_000_000, True, "web", 11),
    "FK": DatasetSpec("FK", "friendster-konect", 68_350_000, 2_590_000_000, False, "social", 12),
    "FS": DatasetSpec("FS", "friendster-snap", 124_830_000, 3_610_000_000, False, "social", 13),
    "UK": DatasetSpec("UK", "uk-2007-04", 106_860_000, 3_790_000_000, True, "web", 14),
}


#: Structural presets per dataset, calibrated so the scaled analogue
#: reproduces the paper's Table 1 active-edge fractions (FK BFS ≈ 4.5 %,
#: UK BFS ≈ 0.8 %) and hence realistic iteration counts.  GS (a host-level
#: crawl, shallower than the page-level UK crawl) gets a softer tail.
_GEN_PRESETS = {
    "GS": dict(window=64, alpha=3.5, frac_long=0.3),
    "UK": dict(window=32, alpha=4.0, frac_long=0.4),
    "FK": dict(window=64, alpha=3.2, hub_exponent=0.9),
    "FS": dict(window=64, alpha=3.2, hub_exponent=0.9),
}


def _build_graph(spec: DatasetSpec, n: int, m: int) -> CSRGraph:
    preset = _GEN_PRESETS.get(spec.abbr, {})
    if spec.kind == "web":
        return web_graph(n, m, seed=spec.seed, name=spec.abbr, **preset)
    if spec.kind == "social":
        # Undirected: paper edge counts are undirected, stored as 2 arcs.
        arcs = (m + 1) // 2
        g = social_graph(n, arcs, seed=spec.seed, name=spec.abbr, **preset)
        # The KONECT/SNAP friendster downloads carry *shuffled* vertex ids,
        # so per-iteration active vertices spread evenly over the edge
        # array — the paper's Fig. 2 pattern and the §3.3 sizing
        # assumption.  Relabel accordingly (the crawl-ordered web datasets
        # keep their id-locality, as the real downloads do).
        rng = np.random.default_rng(spec.seed + 1000)
        perm = rng.permutation(n)
        relabeled = CSRGraph.from_edges(
            perm[g.edge_sources()],
            perm[g.indices.astype(np.int64)],
            n,
            directed=True,  # both arcs are already materialized
            name=spec.abbr,
        )
        relabeled.directed = False
        return relabeled
    # RMAT family (Fig. 11's synthetic sweep): RMAT at the next power of
    # two, folded onto [0, n).  Folding with a modulus preserves the heavy
    # tail while hitting the exact vertex count.
    scale_bits = max(int(math.ceil(math.log2(n))), 4)
    arcs = m if spec.directed else (m + 1) // 2
    g = rmat_graph(scale_bits, arcs, directed=True, seed=spec.seed, name=spec.abbr)
    src = g.edge_sources() % n
    dst = g.indices.astype(np.int64) % n
    return CSRGraph.from_edges(src, dst, n, directed=spec.directed, name=spec.abbr)


def load_dataset(
    abbr: str,
    scale: float = DEFAULT_SCALE,
    weighted: bool = False,
    weight_seed: int = 7,
) -> Dataset:
    """Load a scaled analogue of one of the paper's datasets.

    Parameters
    ----------
    abbr:
        ``"GS"``, ``"FK"``, ``"FS"``, or ``"UK"`` (Table 3).
    scale:
        Linear down-scaling of vertex and edge counts.  The matching GPU
        capacity is :attr:`Dataset.gpu_memory_bytes`.
    weighted:
        Attach 4-byte random edge weights, doubling edge bytes exactly as the
        paper notes for SSSP (§4.1).
    """
    spec = DATASETS[abbr]
    n, m = spec.scaled_counts(scale)
    g = _build_graph(spec, n, m)
    if weighted:
        g = g.with_random_weights(seed=weight_seed)
    return Dataset(spec=spec, graph=g, scale=scale)


def rmat_dataset(
    paper_edges: float,
    paper_vertices: Optional[float] = None,
    scale: float = DEFAULT_SCALE,
    weighted: bool = False,
    seed: int = 21,
) -> Dataset:
    """Build a member of the paper's RMAT-rand family (Table 3, Fig. 11 right).

    ``paper_edges`` is the paper-scale edge count (2.5e9 … 12e9); the graph is
    generated at ``paper_edges * scale`` arcs.  Vertices default to the
    paper's 40–100 M range, interpolated with edge count.
    """
    if paper_vertices is None:
        lo_e, hi_e = 2.5e9, 12.0e9
        frac = min(max((paper_edges - lo_e) / (hi_e - lo_e), 0.0), 1.0)
        paper_vertices = 40e6 + frac * 60e6
    spec = DatasetSpec(
        abbr=f"RMAT-{paper_edges / 1e9:g}B",
        full_name="RMAT-rand",
        paper_vertices=int(paper_vertices),
        paper_edges=int(paper_edges),
        directed=False,
        kind="rmat",
        seed=seed,
    )
    n, m = spec.scaled_counts(scale)
    g = _build_graph(spec, n, m)
    if weighted:
        g = g.with_random_weights(seed=seed + 1)
    return Dataset(spec=spec, graph=g, scale=scale)
