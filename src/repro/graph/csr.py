"""Compressed-sparse-row graph storage.

This is the in-(host)-memory representation every engine works from: the
paper keeps the graph "in the CSR format" on the CPU side (§3.1) and ships
slices of the edge array (``indices`` / ``weights``) across PCIe.  Edges of a
vertex are stored contiguously, so a *vertex-aligned byte range* of the edge
array is the unit every policy in this repo reasons about.

Conventions
-----------
* ``indptr`` is ``int64`` of length ``n + 1``; ``indices`` is ``int32`` —
  4 bytes per edge, matching the paper's sizing (§4.1: edge data doubles for
  SSSP because of the 4-byte weight field).
* Directed graphs store out-edges.  Undirected graphs are stored symmetrized
  (both directions present), as the CUDA frameworks under study do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

__all__ = ["CSRGraph", "ChunkMap", "EDGE_INDEX_BYTES", "WEIGHT_BYTES",
           "VERTEX_STATE_BYTES"]

#: Bytes per edge for the destination-index array (int32).
EDGE_INDEX_BYTES = 4
#: Bytes per edge for the optional weight array (uint32).
WEIGHT_BYTES = 4
#: Bookkeeping bytes per vertex that always live in GPU memory: the value
#: array (8), the CSR offsets (8), active/static bitmaps and frontier
#: scratch (8).  Used when sizing datasets the way §4.1 does.
VERTEX_STATE_BYTES = 24


@dataclass(frozen=True)
class ChunkMap:
    """Per-vertex chunk spans of the edge array at one chunk granularity.

    The geometry every chunk-granular component needs — the Static Region's
    residency table, the §3.4 hotness counters, and the Hybrid policy's
    density reconstruction all reason about which chunks a vertex's edge
    range touches.  Computed once per ``(graph, chunk_bytes)`` pair and
    shared (see :meth:`CSRGraph.chunk_map`), instead of each consumer
    rebuilding the same three arrays.

    ``c_lo[v] .. c_hi[v]`` (inclusive) is the chunk span of vertex ``v``'s
    edge bytes; degree-0 vertices get the empty span ``(0, -1)`` and are
    excluded from ``has_edges``.
    """

    chunk_bytes: int
    n_chunks: int
    has_edges: np.ndarray  # bool, per vertex
    c_lo: np.ndarray  # int64, per vertex
    c_hi: np.ndarray  # int64, per vertex


@dataclass
class CSRGraph:
    """A graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n_vertices + 1``; edges of vertex ``v``
        occupy ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of destination vertices, length ``n_edges``.
    weights:
        Optional ``uint32`` per-edge weights (SSSP).  ``None`` for
        unweighted algorithms.
    directed:
        Whether the stored edges are one-directional.  Undirected inputs are
        expected to already contain both arcs.
    name:
        Optional label used in reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None
    directed: bool = True
    name: str = "graph"
    _out_degree: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _chunk_maps: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.uint32)
            if self.weights.shape != self.indices.shape:
                raise ValueError(
                    f"weights shape {self.weights.shape} != indices shape {self.indices.shape}"
                )
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} does not match n_edges={self.indices.size}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_vertices
        ):
            raise ValueError("edge destination out of range")

    # ------------------------------------------------------------------ size
    @property
    def n_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def n_edges(self) -> int:
        return self.indices.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def bytes_per_edge(self) -> int:
        """Bytes one edge occupies on the wire (index, plus weight if any)."""
        return EDGE_INDEX_BYTES + (WEIGHT_BYTES if self.is_weighted else 0)

    @property
    def edge_array_bytes(self) -> int:
        """Total bytes of the edge data (the out-of-memory part)."""
        return self.n_edges * self.bytes_per_edge

    @property
    def vertex_state_bytes(self) -> int:
        """Bytes of always-resident per-vertex state (values, offsets, maps)."""
        return self.n_vertices * VERTEX_STATE_BYTES

    @property
    def dataset_bytes(self) -> int:
        """Dataset size the way §4.1 sizes it: vertices + edges + buffers."""
        return self.vertex_state_bytes + self.edge_array_bytes

    # ------------------------------------------------------------ navigation
    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._out_degree is None:
            self._out_degree = np.diff(self.indptr)
        return self._out_degree

    def chunk_map(self, chunk_bytes: int) -> ChunkMap:
        """The per-vertex chunk-span geometry at ``chunk_bytes`` granularity.

        Cached per chunk size: a run builds several chunk-indexed components
        (Static Region, hotness table, Hybrid's density policy) over the
        same geometry, and the serving layer reuses one graph across many
        requests — each pays the vertex-count-sized computation once.
        """
        chunk_bytes = int(chunk_bytes)
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        cached = self._chunk_maps.get(chunk_bytes)
        if cached is not None:
            return cached
        edge_bytes = self.edge_array_bytes
        n_chunks = -(-edge_bytes // chunk_bytes) if edge_bytes else 0
        bpe = self.bytes_per_edge
        lo = self.indptr[:-1] * bpe
        hi = self.indptr[1:] * bpe
        has_edges = hi > lo
        c_lo = np.where(has_edges, lo // chunk_bytes, 0)
        c_hi = np.where(has_edges, (hi - 1) // chunk_bytes, -1)
        cmap = ChunkMap(chunk_bytes=chunk_bytes, n_chunks=n_chunks,
                        has_edges=has_edges, c_lo=c_lo, c_hi=c_hi)
        self._chunk_maps[chunk_bytes] = cmap
        return cmap

    def neighbors(self, v: int) -> np.ndarray:
        """Destination vertices of ``v``'s out-edges (a view, not a copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def edge_range(self, v_lo: int, v_hi: int) -> tuple[int, int]:
        """Half-open edge-array index range covering vertices ``[v_lo, v_hi)``."""
        return int(self.indptr[v_lo]), int(self.indptr[v_hi])

    # ---------------------------------------------------------- construction
    @classmethod
    def from_edges(
        cls,
        src: Iterable[int],
        dst: Iterable[int],
        n_vertices: int,
        weights: Optional[Iterable[int]] = None,
        directed: bool = True,
        name: str = "graph",
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel (src, dst[, weight]) arrays.

        Undirected graphs (``directed=False``) get both arcs materialized.
        Self-loops are kept (PageRank treats them as ordinary edges).
        ``dedup=True`` removes duplicate (src, dst) pairs, keeping the first
        weight encountered.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        w = None if weights is None else np.asarray(weights, dtype=np.uint32)
        if w is not None and w.shape != src.shape:
            raise ValueError("weights must match edge count")
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise ValueError("negative vertex id")
        if src.size and max(int(src.max()), int(dst.max())) >= n_vertices:
            raise ValueError("vertex id out of range")

        if not directed:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if w is not None:
                w = np.concatenate([w, w])

        if dedup and src.size:
            key = src * np.int64(n_vertices) + dst
            _, keep = np.unique(key, return_index=True)
            keep.sort()
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]

        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        indices = dst[order].astype(np.int32)
        w_sorted = None if w is None else w[order]
        counts = np.bincount(src_sorted, minlength=n_vertices)
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            indptr=indptr,
            indices=indices,
            weights=w_sorted,
            directed=directed,
            name=name,
        )

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a copy of this graph carrying the given per-edge weights."""
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=np.asarray(weights, dtype=np.uint32),
            directed=self.directed,
            name=self.name,
        )

    def with_random_weights(
        self, low: int = 1, high: int = 64, seed: int = 7
    ) -> "CSRGraph":
        """Attach uniform random integer weights in ``[low, high)`` (SSSP)."""
        rng = np.random.default_rng(seed)
        return self.with_weights(rng.integers(low, high, size=self.n_edges, dtype=np.uint32))

    def unweighted(self) -> "CSRGraph":
        """Drop weights (BFS/CC/PR sizing)."""
        if self.weights is None:
            return self
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=None,
            directed=self.directed,
            name=self.name,
        )

    def symmetrized(self) -> "CSRGraph":
        """Both arc directions materialized (weakly-connected-components view).

        Returns ``self`` when already undirected.  CC on a directed graph
        computes min-*reaching*-label; run it on the symmetrized view to get
        weakly connected components instead.
        """
        if not self.directed:
            return self
        src = self.edge_sources()
        return CSRGraph.from_edges(
            src,
            self.indices.astype(np.int64),
            self.n_vertices,
            weights=self.weights,
            directed=False,
            name=self.name + "+sym",
        )

    def reverse(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges)."""
        n = self.n_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        g = CSRGraph.from_edges(
            self.indices.astype(np.int64),
            src,
            n,
            weights=self.weights,
            directed=True,
            name=self.name + "^T",
        )
        g.directed = self.directed
        return g

    # -------------------------------------------------------------- exports
    def edge_sources(self) -> np.ndarray:
        """Expanded source array (``int64``), one entry per edge."""
        return np.repeat(np.arange(self.n_vertices, dtype=np.int64), np.diff(self.indptr))

    def to_networkx(self):
        """Export to a networkx graph for reference validation."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.n_vertices))
        src = self.edge_sources()
        if self.weights is not None:
            g.add_weighted_edges_from(
                zip(src.tolist(), self.indices.tolist(), self.weights.tolist())
            )
        else:
            g.add_edges_from(zip(src.tolist(), self.indices.tolist()))
        return g

    def to_scipy(self):
        """Export to a scipy CSR matrix (1s, or weights when present)."""
        from scipy.sparse import csr_matrix

        data = (
            np.ones(self.n_edges, dtype=np.float64)
            if self.weights is None
            else self.weights.astype(np.float64)
        )
        # scipy canonicalizes (sorts / merges duplicates) *in place*; hand
        # it copies so the graph's own arrays stay pristine.
        return csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.n_vertices, self.n_vertices),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph({self.name!r}, {kind}, {w}, "
            f"n={self.n_vertices:,}, m={self.n_edges:,})"
        )
