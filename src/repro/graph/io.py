"""Graph serialization.

Binary ``.npz`` round-trips the CSR arrays losslessly (the format examples
and benchmarks cache generated datasets in); the text edge-list format
matches the SNAP/KONECT downloads the paper uses, so a user with the real
friendster/uk crawls can feed them straight in.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["save_csr", "load_csr", "save_edgelist", "load_edgelist"]

PathLike = Union[str, "os.PathLike[str]"]


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph to a compressed ``.npz`` file."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.array([graph.directed]),
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(os.fspath(path), **payload)


def load_csr(path: PathLike) -> CSRGraph:
    """Read a graph previously written by :func:`save_csr`."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            weights=data["weights"] if "weights" in data else None,
            directed=bool(data["directed"][0]),
            name=str(data["name"][0]),
        )


def save_edgelist(graph: CSRGraph, path: PathLike, header: bool = True) -> None:
    """Write a whitespace-separated edge list (``src dst [weight]``)."""
    src = graph.edge_sources()
    cols = [src, graph.indices]
    fmt = "%d %d"
    if graph.weights is not None:
        cols.append(graph.weights)
        fmt = "%d %d %d"
    data = np.column_stack(cols)
    hdr = (
        f"{graph.name} directed={graph.directed} "
        f"n={graph.n_vertices} m={graph.n_edges}"
        if header
        else ""
    )
    np.savetxt(os.fspath(path), data, fmt=fmt, header=hdr)


def load_edgelist(
    path: PathLike,
    directed: bool = True,
    weighted: bool = False,
    n_vertices: int | None = None,
    name: str = "edgelist",
) -> CSRGraph:
    """Read a SNAP/KONECT-style edge list.

    Lines starting with ``#`` or ``%`` are comments.  Vertex ids must be
    non-negative integers; ``n_vertices`` defaults to ``max id + 1``.
    """
    import warnings

    with warnings.catch_warnings():
        # An edge list that is all comments is a legitimate empty graph.
        warnings.filterwarnings("ignore", message=".*input contained no data.*")
        data = np.loadtxt(os.fspath(path), comments=("#", "%"), dtype=np.int64, ndmin=2)
    if data.size == 0:
        return CSRGraph.from_edges(
            [], [], n_vertices or 0, directed=directed, name=name
        )
    src, dst = data[:, 0], data[:, 1]
    weights = None
    if weighted:
        if data.shape[1] < 3:
            raise ValueError("weighted=True but edge list has no third column")
        weights = data[:, 2]
    if n_vertices is None:
        n_vertices = int(max(src.max(), dst.max())) + 1
    return CSRGraph.from_edges(
        src, dst, n_vertices, weights=weights, directed=directed, name=name
    )
