"""Command-line interface.

Exposes the experiment harness without writing Python::

    repro datasets                                  # Table-3 inventory
    repro run --dataset FK --algo BFS --engine Ascetic
    repro compare --dataset UK --algo PR            # all four engines
    repro sweep-ratio --dataset FK --algo CC        # Fig.-10 style sweep

Every command prints the same fixed-width reports the benchmarks produce.
Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table, human_bytes, sparkline
from repro.core.ascetic import AsceticConfig
from repro.graph.datasets import DATASETS
from repro.harness.experiments import (
    BENCH_SCALE,
    ENGINES,
    make_workload,
    run_all_engines,
    run_cell,
)
from repro.harness.sweeps import sweep_static_ratio

__all__ = ["main", "build_parser"]

ALGOS = ("BFS", "SSSP", "CC", "PR", "SSWP", "PR-PULL", "KCORE")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` entry point."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Ascetic (ICPP'21) reproduction — out-of-GPU-memory "
        "graph processing on a simulated GPU.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table-3 dataset inventory")

    def common(sp):
        sp.add_argument("--dataset", required=True, choices=sorted(DATASETS),
                        help="Table-3 dataset abbreviation")
        sp.add_argument("--algo", required=True, choices=ALGOS,
                        help="vertex program")
        sp.add_argument("--scale", type=float, default=BENCH_SCALE,
                        help=f"dataset down-scale (default {BENCH_SCALE:g})")
        sp.add_argument("--memory-bytes", type=int, default=None,
                        help="override the (scaled) device capacity")

    run_p = sub.add_parser("run", help="run one engine on one workload")
    common(run_p)
    run_p.add_argument("--engine", default="Ascetic", choices=sorted(ENGINES))
    run_p.add_argument("--fill", default=None,
                       choices=("lazy", "front", "rear", "random"),
                       help="Ascetic static-region fill policy")
    run_p.add_argument("--ratio", type=float, default=None,
                       help="Ascetic forced static ratio (overrides Eq. 2)")
    run_p.add_argument("--no-overlap", action="store_true",
                       help="disable the §3.2 overlap (Fig. 8 ablation)")

    cmp_p = sub.add_parser("compare", help="run all four engines on one workload")
    common(cmp_p)

    sw_p = sub.add_parser("sweep-ratio", help="Fig.-10-style static-ratio sweep")
    common(sw_p)
    sw_p.add_argument("--ratios", type=float, nargs="+",
                      default=[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0])
    return p


def _cmd_datasets() -> int:
    rows = []
    for abbr, spec in DATASETS.items():
        rows.append(
            [abbr, spec.full_name, f"{spec.paper_vertices/1e6:.2f}M",
             f"{spec.paper_edges/1e9:.2f}B",
             "directed" if spec.directed else "undirected", spec.kind]
        )
    print(format_table(
        ["abbr", "name", "vertices", "edges", "direction", "kind"], rows,
        title="Table 3 — datasets (paper-scale counts; loaded scaled)",
    ))
    return 0


def _cmd_run(args) -> int:
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    kwargs = {}
    if args.engine == "Ascetic":
        cfg = AsceticConfig()
        if args.fill:
            cfg = cfg.with_(fill=args.fill)
        if args.ratio is not None:
            cfg = cfg.with_(forced_ratio=args.ratio, adaptive=False)
        if args.no_overlap:
            cfg = cfg.with_(overlap=False)
        kwargs["config"] = cfg
    res = run_cell(w, args.engine, **kwargs)
    print(res.summary())
    rows = [[k, f"{v:.4g}"] for k, v in sorted(res.extra.items())]
    rows += [[k, f"{v:.4g}"] for k, v in sorted(res.metrics.as_dict().items())]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    results = run_all_engines(w)
    best = min(r.elapsed_seconds for r in results.values())
    rows = [
        [name, f"{r.elapsed_seconds:.2f}s", f"{r.elapsed_seconds / best:.2f}x",
         human_bytes(r.metrics.bytes_h2d), f"{r.gpu_idle_fraction:.0%}",
         r.iterations]
        for name, r in results.items()
    ]
    print(format_table(
        ["engine", "time", "vs best", "H2D", "GPU idle", "iters"], rows,
        title=f"{args.algo} on {args.dataset} (scale {args.scale:g})",
    ))
    return 0


def _cmd_sweep_ratio(args) -> int:
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    points, subway_s, eq2 = sweep_static_ratio(w, args.ratios)
    rows = [
        [f"{p.ratio:.2f}", f"{p.total_seconds:.2f}s", f"{p.t_sr:.2f}",
         f"{p.t_filling:.2f}", f"{p.t_transfer:.2f}", f"{p.t_ondemand:.2f}"]
        for p in points
    ]
    print(format_table(
        ["ratio", "total", "Tsr", "Tfilling", "Ttransfer", "Tondemand"], rows,
        title=f"Static-ratio sweep — {args.algo} on {args.dataset}",
    ))
    print("\ntotal over ratio:", sparkline([p.total_seconds for p in points],
                                           width=len(points)))
    print(f"Subway baseline: {subway_s:.2f}s   Eq. 2 pick: {eq2:.2f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse ``argv`` (default ``sys.argv[1:]``) and dispatch."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep-ratio":
        return _cmd_sweep_ratio(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
