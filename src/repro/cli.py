"""Command-line interface.

Exposes the experiment harness without writing Python::

    repro datasets                                  # Table-3 inventory
    repro run --dataset FK --algo BFS --engine Ascetic
    repro compare --dataset UK --algo PR            # all four engines
    repro compare --dataset UK --algo PR --jobs 4   # ...in parallel
    repro sweep-ratio --dataset FK --algo CC        # Fig.-10 style sweep
    repro trace FK BFS --engine Ascetic -o run.json # Perfetto timeline
    repro grid --jobs 4                             # full 4x4x4 grid, cached
    repro chaos FK BFS --engine Subway --seed 7     # fault-injected run
    repro serve --quick -o slo.json                 # seeded SLO load test
    repro fleet --quick                             # 2-device fleet smoke
    repro fleet --devices 4 --requests 120          # multi-device load test
    repro bench --quick                             # wall-clock perf smoke
    repro bench --against BENCH_abc123.json         # regression gate

Every command prints the same fixed-width reports the benchmarks produce.
``grid`` (and ``compare``/``sweep-ratio`` with ``--jobs``) go through
:mod:`repro.runner`: independent cells fan out across worker processes and
finished cells persist in an on-disk cache (default ``.repro-cache/``), so
a re-run replays unchanged cells instead of recomputing them.  Installed as
the ``repro`` console script; also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table, human_bytes, sparkline
from repro.core.ascetic import AsceticConfig
from repro.engines import registry
from repro.gpusim.fabric import TOPOLOGIES
from repro.graph.datasets import DATASETS
from repro.harness.experiments import (
    BENCH_SCALE,
    make_workload,
    run_all_engines,
    run_workload,
)
from repro.harness.sweeps import sweep_static_ratio
from repro.runner import RunSpec, grid_specs, run_grid

__all__ = ["main", "build_parser"]

ALGOS = ("BFS", "SSSP", "CC", "PR", "SSWP", "PR-PULL", "KCORE")

#: Default on-disk cell cache for ``repro grid`` (relative to the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"

#: The paper's Tables-4/5 grid axes.
GRID_DATASETS = ("GS", "FK", "FS", "UK")
GRID_ALGOS = ("BFS", "SSSP", "CC", "PR")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` entry point."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Ascetic (ICPP'21) reproduction — out-of-GPU-memory "
        "graph processing on a simulated GPU.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table-3 dataset inventory")
    sub.add_parser("engines",
                   help="print the registered engines and their capabilities")

    engine_choices = sorted(registry.available())
    engine_help = ("engine name; `repro engines` prints each one's "
                   "capabilities and accepted options")

    def common(sp):
        sp.add_argument("--dataset", required=True, choices=sorted(DATASETS),
                        help="Table-3 dataset abbreviation")
        sp.add_argument("--algo", required=True, choices=ALGOS,
                        help="vertex program")
        sp.add_argument("--scale", type=float, default=BENCH_SCALE,
                        help=f"dataset down-scale (default {BENCH_SCALE:g})")
        sp.add_argument("--memory-bytes", type=int, default=None,
                        help="override the (scaled) device capacity")

    def jobs_arg(sp):
        sp.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = in-process serial)")

    run_p = sub.add_parser("run", help="run one engine on one workload")
    common(run_p)
    run_p.add_argument("--engine", default="Ascetic", choices=engine_choices,
                      help=engine_help)
    run_p.add_argument("--fill", default=None,
                       choices=("lazy", "front", "rear", "random"),
                       help="Ascetic static-region fill policy")
    run_p.add_argument("--ratio", type=float, default=None,
                       help="Ascetic forced static ratio (overrides Eq. 2)")
    run_p.add_argument("--no-overlap", action="store_true",
                       help="disable the §3.2 overlap (Fig. 8 ablation)")

    cmp_p = sub.add_parser("compare", help="run all four engines on one workload")
    common(cmp_p)
    jobs_arg(cmp_p)

    sw_p = sub.add_parser("sweep-ratio", help="Fig.-10-style static-ratio sweep")
    common(sw_p)
    jobs_arg(sw_p)
    sw_p.add_argument("--ratios", type=float, nargs="+",
                      default=[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0])

    tr_p = sub.add_parser(
        "trace",
        help="run one engine with event recording and export a "
             "Chrome/Perfetto trace",
    )
    tr_p.add_argument("dataset", choices=sorted(DATASETS),
                      help="Table-3 dataset abbreviation")
    tr_p.add_argument("algo", choices=ALGOS, help="vertex program")
    tr_p.add_argument("--engine", default="Ascetic", choices=engine_choices,
                      help=engine_help)
    tr_p.add_argument("--scale", type=float, default=BENCH_SCALE,
                      help=f"dataset down-scale (default {BENCH_SCALE:g})")
    tr_p.add_argument("--memory-bytes", type=int, default=None,
                      help="override the (scaled) device capacity")
    tr_p.add_argument("-o", "--output", default=None,
                      help="trace JSON path (default "
                           "<dataset>_<algo>_<engine>.trace.json)")

    g_p = sub.add_parser(
        "grid",
        help="run a datasets x algorithms x engines grid with caching",
    )
    jobs_arg(g_p)
    g_p.add_argument("--datasets", nargs="+", default=list(GRID_DATASETS),
                     choices=sorted(DATASETS), metavar="ABBR",
                     help=f"datasets (default {' '.join(GRID_DATASETS)})")
    g_p.add_argument("--algos", nargs="+", default=list(GRID_ALGOS),
                     choices=ALGOS, metavar="ALGO",
                     help=f"algorithms (default {' '.join(GRID_ALGOS)})")
    g_p.add_argument("--engines", nargs="+", default=None,
                     choices=engine_choices, metavar="ENGINE",
                     help="engines (default: every registered engine)")
    g_p.add_argument("--scale", type=float, default=BENCH_SCALE,
                     help=f"dataset down-scale (default {BENCH_SCALE:g})")
    g_p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help=f"result cache directory (default {DEFAULT_CACHE_DIR})")
    g_p.add_argument("--no-cache", action="store_true",
                     help="recompute every cell, touch no cache")
    g_p.add_argument("--timeout", type=float, default=None,
                     help="per-cell wall-clock budget in seconds")
    g_p.add_argument("--retries", type=int, default=1,
                     help="extra attempts for a failing cell (default 1)")

    b_p = sub.add_parser(
        "bench",
        help="time the simulator's own hot paths (wall-clock, not modelled "
             "seconds) and emit a schema-versioned BENCH_<rev>.json",
    )
    b_p.add_argument("--quick", action="store_true",
                     help="smoke mode: smaller inputs, fewer repeats")
    b_p.add_argument("--filter", default=None, metavar="SUBSTR",
                     help="only run benchmarks whose name contains SUBSTR")
    b_p.add_argument("--list", action="store_true", dest="list_only",
                     help="list registered benchmarks and exit")
    b_p.add_argument("-o", "--output", default=None,
                     help="report path (default BENCH_<rev>.json; '-' to "
                          "skip writing)")
    b_p.add_argument("--against", default=None, metavar="REPORT",
                     help="compare against a previous report; exit nonzero "
                          "on regression")
    b_p.add_argument("--threshold", type=float, default=None,
                     help="fractional slowdown tolerated by --against "
                          "(default 0.25; CI uses a looser cross-machine "
                          "value)")

    sv_p = sub.add_parser(
        "serve",
        help="run a seeded multi-tenant load test against an engine pool "
             "and emit a schema-versioned SLO report",
    )
    sv_p.add_argument("--quick", action="store_true",
                      help="the tiny pinned smoke config (CI's serve-smoke)")
    sv_p.add_argument("--seed", type=int, default=0,
                      help="workload-generator seed (default 0)")
    sv_p.add_argument("--requests", type=int, default=24,
                      help="offered requests (default 24)")
    sv_p.add_argument("--rate", type=float, default=1.0,
                      help="arrival rate, requests per simulated second")
    sv_p.add_argument("--graphs", nargs="+", default=["GS"],
                      choices=sorted(DATASETS), metavar="ABBR",
                      help="datasets requests draw from (default GS)")
    sv_p.add_argument("--algos", nargs="+", default=["BFS", "CC"],
                      choices=ALGOS, metavar="ALGO",
                      help="algorithms requests draw from (default BFS CC)")
    sv_p.add_argument("--engine", default="Ascetic", choices=engine_choices,
                      help=engine_help)
    sv_p.add_argument("--scale", type=float, default=BENCH_SCALE,
                      help=f"dataset down-scale (default {BENCH_SCALE:g})")
    sv_p.add_argument("--tenants", nargs="+", default=["t0", "t1"],
                      metavar="NAME", help="tenant names (default t0 t1)")
    sv_p.add_argument("--deadline", type=float, default=None,
                      help="per-request deadline budget in simulated seconds")
    sv_p.add_argument("--multi-source", type=int, default=1,
                      help="explicit sources per BFS/SSSP request")
    sv_p.add_argument("--queue-capacity", type=int, default=16,
                      help="admission-queue bound (default 16)")
    sv_p.add_argument("--queue-policy", default="reject",
                      choices=("reject", "drop-oldest", "deadline"),
                      help="backpressure policy when the queue is full")
    sv_p.add_argument("--scheduler", default="affinity",
                      choices=("fifo", "affinity"),
                      help="dispatch order (default affinity)")
    sv_p.add_argument("--max-batch", type=int, default=1,
                      help="fuse up to N compatible traversals per dispatch")
    sv_p.add_argument("--batch-wait", type=float, default=0.0,
                      help="seconds to hold a free server for a fuller batch")
    sv_p.add_argument("--max-engines", type=int, default=2,
                      help="warm engine-pool size (default 2)")
    sv_p.add_argument("--devices", type=int, default=1,
                      help="simulated devices; >1 routes through the fleet "
                           "(default 1, the pinned single-server path)")
    sv_p.add_argument("--topology", default="pcie",
                      choices=sorted(TOPOLOGIES),
                      help="inter-device link class for --devices > 1")
    sv_p.add_argument("--shard-over", type=float, default=None,
                      help="shard a graph fabric-wide when its edge bytes "
                           "exceed this multiple of device capacity "
                           "(default: never shard)")
    sv_p.add_argument("--fabric", default=None, metavar="JSON",
                      help="explicit FabricSpec as a JSON object (overrides "
                           "--devices/--topology), e.g. "
                           "'{\"n_devices\": 2, \"topology\": \"nvlink\"}'")
    sv_p.add_argument("-o", "--output", default=None,
                      help="write the full JSON report (trace + SLO) here")

    fl_p = sub.add_parser(
        "fleet",
        help="run a seeded load test against a multi-device fleet — a "
             "router over per-device engine pools — and emit the SLO "
             "report with per-device utilization",
    )
    fl_p.add_argument("--quick", action="store_true",
                      help="the tiny pinned smoke config (CI's fleet-smoke)")
    fl_p.add_argument("--seed", type=int, default=0,
                      help="workload-generator seed (default 0)")
    fl_p.add_argument("--devices", type=int, default=4,
                      help="simulated devices in the fabric (default 4)")
    fl_p.add_argument("--topology", default="pcie",
                      choices=sorted(TOPOLOGIES),
                      help="inter-device link class (default pcie)")
    fl_p.add_argument("--shard-over", type=float, default=None,
                      help="shard a graph fabric-wide when its edge bytes "
                           "exceed this multiple of device capacity "
                           "(default: never shard; --quick pins 1.0)")
    fl_p.add_argument("--requests", type=int, default=48,
                      help="offered requests (default 48)")
    fl_p.add_argument("--rate", type=float, default=2.0,
                      help="arrival rate, requests per simulated second")
    fl_p.add_argument("--graphs", nargs="+", default=["GS"],
                      choices=sorted(DATASETS), metavar="ABBR",
                      help="datasets requests draw from (default GS)")
    fl_p.add_argument("--algos", nargs="+", default=["BFS", "CC"],
                      choices=ALGOS, metavar="ALGO",
                      help="algorithms requests draw from (default BFS CC)")
    fl_p.add_argument("--engine", default="Ascetic", choices=engine_choices,
                      help="per-device engine (also the sharded inner)")
    fl_p.add_argument("--scale", type=float, default=BENCH_SCALE,
                      help=f"dataset down-scale (default {BENCH_SCALE:g})")
    fl_p.add_argument("--tenants", nargs="+", default=["t0", "t1"],
                      metavar="NAME", help="tenant names (default t0 t1)")
    fl_p.add_argument("--deadline", type=float, default=None,
                      help="per-request deadline budget in simulated seconds")
    fl_p.add_argument("--queue-capacity", type=int, default=32,
                      help="admission-queue bound (default 32)")
    fl_p.add_argument("--queue-policy", default="reject",
                      choices=("reject", "drop-oldest", "deadline"),
                      help="backpressure policy when the queue is full")
    fl_p.add_argument("--scheduler", default="affinity",
                      choices=("fifo", "affinity"),
                      help="dispatch order (default affinity)")
    fl_p.add_argument("--max-batch", type=int, default=1,
                      help="fuse up to N compatible traversals per dispatch")
    fl_p.add_argument("--max-engines", type=int, default=2,
                      help="warm engine-pool size per device (default 2)")
    fl_p.add_argument("--fabric", default=None, metavar="JSON",
                      help="explicit FabricSpec as a JSON object (overrides "
                           "--devices/--topology), e.g. "
                           "'{\"n_devices\": 2, \"topology\": \"nvlink\"}'")
    fl_p.add_argument("-o", "--output", default=None,
                      help="write the full JSON report (trace + SLO) here")

    ch_p = sub.add_parser(
        "chaos",
        help="run one engine under the standard fault plan and check the "
             "result against the fault-free baseline",
    )
    ch_p.add_argument("dataset", choices=sorted(DATASETS),
                      help="Table-3 dataset abbreviation")
    ch_p.add_argument("algo", choices=ALGOS, help="vertex program")
    ch_p.add_argument("--engine", default="Ascetic", choices=engine_choices,
                      help=engine_help)
    ch_p.add_argument("--seed", type=int, default=0,
                      help="fault-injector seed (default 0)")
    ch_p.add_argument("--scale", type=float, default=BENCH_SCALE,
                      help=f"dataset down-scale (default {BENCH_SCALE:g})")
    ch_p.add_argument("--memory-bytes", type=int, default=None,
                      help="override the (scaled) device capacity")
    ch_p.add_argument("--fleet", action="store_true",
                      help="fleet chaos: kill one device mid-run under the "
                           "standard fleet plan — a sharded engine run "
                           "checked bit-identical against fault-free, plus "
                           "a fleet load test with the degraded SLO report")
    ch_p.add_argument("--devices", type=int, default=4,
                      help="fabric size for --fleet (default 4)")
    ch_p.add_argument("-o", "--output", default=None,
                      help="with --fleet: write the degraded SLO report "
                           "JSON here")
    return p


def _cmd_datasets() -> int:
    rows = []
    for abbr, spec in DATASETS.items():
        rows.append(
            [abbr, spec.full_name, f"{spec.paper_vertices/1e6:.2f}M",
             f"{spec.paper_edges/1e9:.2f}B",
             "directed" if spec.directed else "undirected", spec.kind]
        )
    print(format_table(
        ["abbr", "name", "vertices", "edges", "direction", "kind"], rows,
        title="Table 3 — datasets (paper-scale counts; loaded scaled)",
    ))
    return 0


def _cmd_engines() -> int:
    rows = []
    for name in registry.available():
        info = registry.describe(name)
        opts = ("any (unvalidated)" if info.supported_engine_opts is None
                else ", ".join(info.supported_engine_opts) or "-")
        rows.append([
            name,
            "yes" if info.supports_warm_start else "no",
            opts,
            info.transfer_policy or "-",
        ])
    print(format_table(
        ["engine", "warm-start", "engine opts", "transfer policy"], rows,
        title="Registered engines (registry.describe)",
    ))
    return 0


def _cmd_run(args) -> int:
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    kwargs = {}
    if args.engine == "Ascetic":
        cfg = AsceticConfig()
        if args.fill:
            cfg = cfg.with_(fill=args.fill)
        if args.ratio is not None:
            cfg = cfg.with_(forced_ratio=args.ratio, adaptive=False)
        if args.no_overlap:
            cfg = cfg.with_(overlap=False)
        kwargs["config"] = cfg
    res = run_workload(w, args.engine, **kwargs)
    print(res.summary())
    rows = [[k, f"{v:.4g}"] for k, v in sorted(res.extra.items())]
    rows += [[k, f"{v:.4g}"] for k, v in sorted(res.metrics.as_dict().items())]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    if args.jobs > 1:
        specs = [
            RunSpec(dataset=args.dataset, algorithm=args.algo, engine=name,
                    scale=args.scale, memory_bytes=args.memory_bytes)
            for name in registry.available()
        ]
        report = run_grid(specs, jobs=args.jobs)
        for cell in report.cells:
            if not cell.ok:
                print(f"warning: {cell.spec.label()} failed: {cell.error}",
                      file=sys.stderr)
        results = {c.spec.engine: c.result for c in report.cells if c.ok}
    else:
        w = make_workload(args.dataset, args.algo, scale=args.scale,
                          memory_bytes=args.memory_bytes)
        results = run_all_engines(w)
    if not results:
        print("all engines failed", file=sys.stderr)
        return 1
    best = min(r.elapsed_seconds for r in results.values())
    rows = [
        [name, f"{r.elapsed_seconds:.2f}s", f"{r.elapsed_seconds / best:.2f}x",
         human_bytes(r.metrics.bytes_h2d), f"{r.gpu_idle_fraction:.0%}",
         r.iterations]
        for name, r in results.items()
    ]
    print(format_table(
        ["engine", "time", "vs best", "H2D", "GPU idle", "iters"], rows,
        title=f"{args.algo} on {args.dataset} (scale {args.scale:g})",
    ))
    return 0


def _cmd_sweep_ratio(args) -> int:
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    points, subway_s, eq2 = sweep_static_ratio(w, args.ratios, jobs=args.jobs)
    rows = [
        [f"{p.ratio:.2f}", f"{p.total_seconds:.2f}s", f"{p.t_sr:.2f}",
         f"{p.t_filling:.2f}", f"{p.t_transfer:.2f}", f"{p.t_ondemand:.2f}"]
        for p in points
    ]
    print(format_table(
        ["ratio", "total", "Tsr", "Tfilling", "Ttransfer", "Tondemand"], rows,
        title=f"Static-ratio sweep — {args.algo} on {args.dataset}",
    ))
    print("\ntotal over ratio:", sparkline([p.total_seconds for p in points],
                                           width=len(points)))
    print(f"Subway baseline: {subway_s:.2f}s   Eq. 2 pick: {eq2:.2f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis.traces import save_chrome_trace
    from repro.gpusim.events import validate_log

    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    res = run_workload(w, args.engine, record_events=True)
    # The exported trace is only worth looking at if the log is coherent.
    validate_log(res.event_log, metrics=res.metrics,
                 horizon=res.elapsed_seconds)
    out = args.output or f"{args.dataset}_{args.algo}_{args.engine}.trace.json"
    path = save_chrome_trace(out, res)
    print(res.summary())
    print(f"wrote {len(res.event_log.events)} events to {path} "
          "(open in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_chaos(args) -> int:
    import hashlib
    import json

    import numpy as np

    from repro.gpusim.events import validate_log
    from repro.gpusim.faults import standard_plan
    from repro.harness.persistence import result_to_payload

    if args.fleet:
        return _cmd_chaos_fleet(args)
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    baseline = run_workload(w, args.engine)
    chaos = run_workload(w, args.engine, record_events=True,
                         fault_plan=standard_plan(), seed=args.seed)
    validate_log(chaos.event_log, metrics=chaos.metrics,
                 horizon=chaos.elapsed_seconds)
    print(chaos.summary())
    rows = [[k, f"{v:g}"] for k, v in sorted(chaos.extra.items())
            if k.startswith("fault_")]
    rows += [
        ["transfer_retries", f"{chaos.metrics.transfer_retries:g}"],
        ["kernel_aborts", f"{chaos.metrics.kernel_aborts:g}"],
        ["retry_seconds", f"{chaos.metrics.retry_seconds:.4g}"],
        ["slowdown vs fault-free",
         f"{chaos.elapsed_seconds / baseline.elapsed_seconds:.2f}x"],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"Chaos — {args.engine} on "
                             f"{args.dataset}/{args.algo}, seed {args.seed}"))
    blob = json.dumps(result_to_payload(chaos), sort_keys=True,
                      separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    print(f"digest: {digest}")
    if not np.array_equal(chaos.values, baseline.values):
        print("error: chaos run diverged from the fault-free baseline",
              file=sys.stderr)
        return 1
    print("values identical to fault-free baseline")
    return 0


def _cmd_chaos_fleet(args) -> int:
    """``repro chaos --fleet``: device loss under the standard fleet plan.

    Two legs, both against fault-free baselines:

    1. **engine** — an N-device sharded run with one device killed halfway
       (plus a peer-link degradation window); the recovered run's values
       must be bit-identical to the fault-free run or the command exits
       nonzero.
    2. **serve** — the quick fleet load test under the same plan; prints
       the ``degraded`` SLO section and the run digest (what CI's
       fleet-chaos-smoke diffs across two runs).
    """
    import hashlib
    import json
    from dataclasses import replace

    import numpy as np

    from repro.gpusim.events import validate_log
    from repro.gpusim.faults import standard_fleet_plan
    from repro.harness.persistence import result_to_payload
    from repro.serve.fleet import fleet_quick_config, run_fleet_test

    if args.devices < 2:
        raise SystemExit(
            f"error: chaos --fleet needs at least 2 devices "
            f"(n_devices={args.devices})"
        )

    # --- engine leg: kill one device mid-run, demand bit-identity -------
    w = make_workload(args.dataset, args.algo, scale=args.scale,
                      memory_bytes=args.memory_bytes)
    baseline = run_workload(w, "Sharded", devices=args.devices,
                            inner=args.engine)
    half = baseline.elapsed_seconds / 2
    plan = standard_fleet_plan(
        seed=args.seed, n_devices=args.devices, down_at=half,
        degrade_start=baseline.elapsed_seconds * 0.6,
        degrade_end=baseline.elapsed_seconds * 0.8,
    )
    chaos = run_workload(w, "Sharded", devices=args.devices,
                         inner=args.engine, record_events=True,
                         fault_plan=plan, seed=args.seed)
    validate_log(chaos.event_log, metrics=chaos.metrics,
                 horizon=chaos.elapsed_seconds)
    rows = [[k, f"{v:g}"] for k, v in sorted(chaos.extra.items())
            if k.startswith("fault_") or k == "device_losses"]
    rows += [["slowdown vs fault-free",
              f"{chaos.elapsed_seconds / baseline.elapsed_seconds:.2f}x"]]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"Fleet chaos — {args.devices}x Sharded[{args.engine}] on "
              f"{args.dataset}/{args.algo}, device "
              f"{args.seed % args.devices} down at t={half:.2f}s"))
    blob = json.dumps(result_to_payload(chaos), sort_keys=True,
                      separators=(",", ":"))
    print(f"digest: {hashlib.sha256(blob.encode()).hexdigest()[:16]}")
    if not np.array_equal(chaos.values, baseline.values):
        print("error: recovered run diverged from the fault-free baseline",
              file=sys.stderr)
        return 1
    print("values identical to fault-free baseline")

    # --- serve leg: the quick fleet load test under the same plan -------
    config = replace(
        fleet_quick_config(seed=args.seed, n_devices=args.devices),
        fault_plan=standard_fleet_plan(seed=args.seed,
                                       n_devices=args.devices),
    )
    res = run_fleet_test(config)
    report = res.report
    degraded = report.get("degraded", {})
    deg_rows = [
        ["schema", report["schema"]],
        ["degraded seconds", f"{degraded.get('degraded_seconds', 0.0):.2f}"],
        ["retried requests", f"{degraded.get('retried_requests', 0):g}"],
        ["relocated requests",
         f"{degraded.get('relocated_requests', 0):g}"],
        ["goodput under failure",
         f"{degraded.get('goodput_under_failure', 0.0):.4g}/s"],
        ["goodput overall", f"{report['goodput_per_second']:.4g}/s"],
    ]
    for name, d in degraded.get("devices", {}).items():
        deg_rows.append([f"device {name} downtime",
                         f"{d['downtime_seconds']:.2f}s "
                         f"({d['dispatch_failures']:g} failed dispatches)"])
    print(format_table(["quantity", "value"], deg_rows,
                       title="fleet load test under standard_fleet_plan"))
    if args.output:
        payload = res.trace_payload()
        payload["digest"] = res.run_digest()
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    print(f"digest: {res.run_digest()}")
    return 0


def _fabric_from_args(args):
    """A :class:`FabricSpec` from ``--fabric`` JSON or ``--devices`` /
    ``--topology``, turning malformed input into a friendly ``SystemExit``
    that names the offending key instead of a raw traceback."""
    import json

    from repro.gpusim.fabric import FabricSpec

    if getattr(args, "fabric", None):
        try:
            data = json.loads(args.fabric)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: --fabric is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise SystemExit(
                "error: --fabric must be a JSON object of FabricSpec "
                "fields (n_devices, topology, device_mems, ...)"
            )
        try:
            return FabricSpec.from_dict(data)
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"error: invalid --fabric: {exc}")
    if args.devices < 1:
        raise SystemExit(
            f"error: --devices must be >= 1 (n_devices={args.devices})"
        )
    try:
        return FabricSpec(n_devices=args.devices, topology=args.topology)
    except ValueError as exc:
        raise SystemExit(f"error: invalid fabric: {exc}")


def _serve_report_rows(res, config) -> list:
    """The summary rows `serve` and `fleet` share (counts + pool)."""
    report = res.report
    rows = [[k, f"{v:g}"] for k, v in sorted(report["counts"].items())]
    rows += [
        ["shed_rate", f"{report['shed_rate']:.2%}"],
        ["throughput/s", f"{report['throughput_per_second']:.4g}"],
        ["goodput/s", f"{report['goodput_per_second']:.4g}"],
        ["warm hits/misses",
         f"{report['warm']['hits']}/{report['warm']['misses']}"],
        ["skipped fill", human_bytes(res.pool_stats.skipped_fill_bytes)],
        ["refilled", human_bytes(res.pool_stats.refill_bytes)],
    ]
    return rows


def _print_latency(report) -> None:
    lat = report["latency_seconds"]
    lat_rows = [
        [split, f"{lat[split]['p50']:.3f}", f"{lat[split]['p95']:.3f}",
         f"{lat[split]['p99']:.3f}", f"{lat[split]['mean']:.3f}"]
        for split in ("queue", "service", "e2e")
    ]
    print(format_table(["latency (s)", "p50", "p95", "p99", "mean"], lat_rows))


def _print_fleet_result(res, write_to: Optional[str]) -> int:
    import json

    config = res.config
    serve = config.serve
    report = res.report
    rows = _serve_report_rows(res, serve)
    print(format_table(
        ["quantity", "value"], rows,
        title=f"fleet — {config.fabric.n_devices}x {serve.engine} over "
              f"{config.fabric.topology}, {serve.scheduler} scheduler, "
              f"seed {serve.seed} ({res.horizon:.1f}s simulated)",
    ))
    _print_latency(report)
    fleet = report.get("fleet", {})
    dev_rows = [
        [name, f"{d['dispatches']:g}", f"{d['requests']:g}",
         f"{d['busy_seconds']:.2f}s", f"{d['utilization']:.0%}",
         human_bytes(d["exchange_bytes"])]
        for name, d in fleet.get("devices", {}).items()
    ]
    if dev_rows:
        print(format_table(
            ["device", "dispatches", "requests", "busy", "util", "exchange"],
            dev_rows,
            title=f"per-device utilization — "
                  f"{fleet.get('sharded_dispatches', 0):g} of "
                  f"{fleet.get('n_dispatches', 0):g} dispatches fabric-wide",
        ))
    if write_to:
        payload = res.trace_payload()
        payload["digest"] = res.run_digest()
        payload["pool"] = res.pool_stats.as_dict()
        payload["device_pools"] = {
            str(d): stats.as_dict()
            for d, stats in sorted(res.device_pool_stats.items())
        }
        payload["tenant_accounts"] = {
            name: acct.as_dict() for name, acct in sorted(res.tenants.items())
        }
        with open(write_to, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {write_to}")
    print(f"digest: {res.run_digest()}")
    return 0


def _cmd_fleet(args) -> int:
    from repro.serve import ServeConfig
    from repro.serve.fleet import (
        FleetConfig,
        fleet_quick_config,
        run_fleet_test,
    )

    if args.quick:
        # --quick pins the whole config (like `serve --quick`): two
        # devices over PCIe, GS replicated, FK sharded fabric-wide.
        config = fleet_quick_config(seed=args.seed)
    else:
        fabric = _fabric_from_args(args)
        config = FleetConfig(
            serve=ServeConfig(
                seed=args.seed,
                n_requests=args.requests,
                arrival_rate=args.rate,
                graphs=tuple(args.graphs),
                algorithms=tuple(a.upper() for a in args.algos),
                tenants=tuple(args.tenants),
                deadline=args.deadline,
                engine=args.engine,
                scale=args.scale,
                queue_capacity=args.queue_capacity,
                queue_policy=args.queue_policy,
                scheduler=args.scheduler,
                max_batch=args.max_batch,
                max_engines=args.max_engines,
            ),
            fabric=fabric,
            shard_over=args.shard_over,
        )
    return _print_fleet_result(run_fleet_test(config), args.output)


def _cmd_serve(args) -> int:
    import json

    from repro.serve import ServeConfig, quick_config, run_load_test

    if args.devices < 1:
        raise SystemExit(
            f"error: --devices must be >= 1 (n_devices={args.devices})"
        )
    if args.quick:
        config = quick_config(seed=args.seed)
    else:
        config = ServeConfig(
            seed=args.seed,
            n_requests=args.requests,
            arrival_rate=args.rate,
            graphs=tuple(args.graphs),
            algorithms=tuple(a.upper() for a in args.algos),
            tenants=tuple(args.tenants),
            deadline=args.deadline,
            multi_source=args.multi_source,
            engine=args.engine,
            scale=args.scale,
            queue_capacity=args.queue_capacity,
            queue_policy=args.queue_policy,
            scheduler=args.scheduler,
            max_batch=args.max_batch,
            batch_wait=args.batch_wait,
            max_engines=args.max_engines,
        )
    if args.devices > 1 or args.fabric:
        from repro.serve.fleet import FleetConfig, run_fleet_test

        fleet_config = FleetConfig(
            serve=config,
            fabric=_fabric_from_args(args),
            shard_over=args.shard_over,
        )
        return _print_fleet_result(run_fleet_test(fleet_config), args.output)
    res = run_load_test(config)
    report = res.report
    rows = _serve_report_rows(res, config)
    print(format_table(
        ["quantity", "value"], rows,
        title=f"serve — {config.engine} pool, {config.scheduler} scheduler, "
              f"seed {config.seed} ({res.horizon:.1f}s simulated)",
    ))
    _print_latency(report)
    if args.output:
        payload = res.trace_payload()
        payload["digest"] = res.run_digest()
        payload["pool"] = res.pool_stats.as_dict()
        payload["tenant_accounts"] = {
            name: acct.as_dict() for name, acct in sorted(res.tenants.items())
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    print(f"digest: {res.run_digest()}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        all_benchmarks,
        compare_reports,
        default_report_name,
        load_report,
        make_report,
        run_benchmarks,
        write_report,
    )

    benches = all_benchmarks()
    if args.filter:
        benches = [b for b in benches if args.filter in b.name]
    if not benches:
        print(f"no benchmark matches {args.filter!r}", file=sys.stderr)
        return 2
    if args.list_only:
        rows = [[b.name, b.kind, b.description] for b in benches]
        print(format_table(["benchmark", "kind", "description"], rows,
                           title="repro bench — registered benchmarks"))
        return 0

    names = {b.name for b in benches}
    results = run_benchmarks(
        names=names, quick=args.quick,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    rows = []
    for name, r in sorted(results.items()):
        tput = ", ".join(
            f"{v:.3g} {k.replace('_per_second', '/s')}"
            for k, v in sorted(r["throughput"].items())
        )
        rows.append([name, r["kind"], f"{r['best_seconds'] * 1e3:.3f}ms",
                     f"{r['mean_seconds'] * 1e3:.3f}ms", r["repeats"], tput])
    mode = "quick" if args.quick else "full"
    print(format_table(
        ["benchmark", "kind", "best", "mean", "N", "throughput"], rows,
        title=f"repro bench — host wall-clock, {mode} mode",
    ))

    report = make_report(results, quick=args.quick)
    if args.output != "-":
        out = args.output or default_report_name(report)
        write_report(out, report)
        print(f"\nwrote {out} (revision {report['revision']})")

    if args.against:
        baseline = load_report(args.against)
        cmp = compare_reports(baseline, report, threshold=args.threshold)
        rows = [
            [d.name, f"{d.old_seconds * 1e3:.3f}ms",
             f"{d.new_seconds * 1e3:.3f}ms", f"{d.ratio:.2f}x",
             "REGRESSION" if d in cmp.regressions else "ok"]
            for d in cmp.deltas
        ]
        print()
        print(format_table(
            ["benchmark", "baseline", "current", "ratio", "verdict"], rows,
            title=f"vs {args.against} (threshold {cmp.threshold:.0%})",
        ))
        for name in cmp.only_old:
            print(f"note: {name} only in baseline", file=sys.stderr)
        for name in cmp.only_new:
            print(f"note: {name} only in current run", file=sys.stderr)
        if not cmp.ok:
            print(f"error: {len(cmp.regressions)} benchmark(s) regressed "
                  f"beyond {cmp.threshold:.0%}", file=sys.stderr)
            return 1
        print("no regressions")
    return 0


def _cmd_grid(args) -> int:
    engines = tuple(args.engines) if args.engines else registry.available()
    specs = grid_specs(args.datasets, args.algos, engines, scale=args.scale)
    cache = None if args.no_cache else args.cache_dir
    report = run_grid(specs, jobs=args.jobs, cache=cache,
                      timeout=args.timeout, retries=args.retries)
    rows = []
    for cell in report.cells:
        r = cell.result
        rows.append([
            cell.spec.dataset, cell.spec.algorithm, cell.spec.engine,
            cell.status,
            f"{r.elapsed_seconds:.2f}s" if r else "-",
            human_bytes(r.metrics.bytes_h2d) if r else "-",
            r.iterations if r else "-",
        ])
    print(format_table(
        ["dataset", "algo", "engine", "status", "time", "H2D", "iters"], rows,
        title=f"Grid — {len(args.datasets)} dataset(s) x {len(args.algos)} "
              f"algorithm(s) x {len(engines)} engine(s), scale {args.scale:g}",
    ))
    for cell in report.cells:
        if not cell.ok:
            print(f"failed: {cell.spec.label()}: {cell.error}", file=sys.stderr)
    print()
    print(report.summary())
    return 0 if report.n_failed == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse ``argv`` (default ``sys.argv[1:]``) and dispatch."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "engines":
        return _cmd_engines()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep-ratio":
        return _cmd_sweep_ratio(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "grid":
        return _cmd_grid(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
