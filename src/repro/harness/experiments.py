"""Workload construction and single-cell runners.

A *cell* is one (dataset, algorithm, engine) combination — one number in
Tables 4/5.  The harness pins the parameters the paper pins:

* dataset scale (``BENCH_SCALE``; vertex/edge counts *and* GPU capacity
  shrink together, costs are charged at paper scale — see
  :class:`~repro.gpusim.device.SimulatedGPU`);
* traversal sources (the max-out-degree hub);
* SSSP weights (4-byte field, doubling edge bytes, §4.1; small value range
  so re-relaxation volume lands in the paper's regime);
* PR activation threshold (chosen so iteration counts and active fractions
  match Table 1's PR rows).
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Dict, Union

from repro.algorithms import make_program
from repro.algorithms.base import VertexProgram
from repro.engines import registry
from repro.engines.base import Engine, RunResult
from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset, load_dataset
from repro.graph.properties import best_source
from repro.gpusim.device import GPUSpec

if TYPE_CHECKING:  # avoid an import cycle; RunSpec is imported at call time
    from repro.runner.spec import RunSpec

__all__ = [
    "ENGINES",
    "BENCH_SCALE",
    "SSSP_WEIGHT_HIGH",
    "PR_TOL",
    "Workload",
    "make_workload",
    "workload_for_spec",
    "run_workload",
    "run_cell",
    "run_all_engines",
    "clear_dataset_cache",
]

#: Default dataset down-scale for benchmarks: 1/5000 of the paper keeps the
#: full 4×4×4 grid under ~2 minutes while leaving graphs large enough
#: (≈0.4–1.2 M arcs) for stable statistics.
BENCH_SCALE = 2.0e-4

#: SSSP edge weights are uniform in [1, SSSP_WEIGHT_HIGH); the small range
#: keeps frontier-Bellman-Ford's re-relaxation volume in the regime the
#: paper's SSSP transfer volumes imply (Table 5).
SSSP_WEIGHT_HIGH = 3

#: PR activation threshold (relative to teleport mass); yields iteration
#: counts and mean active fractions near Table 1's PR rows.
PR_TOL = 1e-2

class _EngineView(Mapping):
    """Read-only, live dict-shaped view over the engine registry.

    Kept for compatibility: ``ENGINES[name]``, ``name in ENGINES``,
    ``for name in ENGINES`` all keep working, but the contents now track
    :mod:`repro.engines.registry` — engines registered at runtime appear
    here (and on the CLI) automatically.
    """

    def __getitem__(self, name: str) -> Callable[..., Engine]:
        return registry.get(name)

    def __iter__(self):
        return iter(registry.available())

    def __len__(self) -> int:
        return len(registry.available())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ENGINES({', '.join(registry.available())})"


#: Legacy name → factory mapping, now a thin view over the registry.
ENGINES: Mapping = _EngineView()


@dataclass(frozen=True)
class Workload:
    """One (dataset, algorithm) pair, ready to run on any engine."""

    dataset: Dataset
    algorithm: str
    graph: CSRGraph
    spec: GPUSpec
    scale: float
    program_factory: Callable[[], VertexProgram]

    def fresh_program(self) -> VertexProgram:
        return self.program_factory()


#: Serializes dataset loads.  CPython's ``lru_cache`` is safe to *call*
#: concurrently, but on a miss it may run the wrapped loader more than
#: once for the same key and hand different callers *different* Dataset
#: objects — which silently breaks everything keyed on graph object
#: identity (the serve layer's warm Static Region reuse, the frontier
#: cache).  The lock makes a concurrent miss load once and everyone see
#: the same object.  The cache is per-process by design: grid workers
#: each load their own copy (forked workers share the parent's warmed
#: cache pages via :func:`repro.runner.executor._preload_datasets`);
#: nothing here is safe to share *across* processes.
_dataset_lock = threading.Lock()


@lru_cache(maxsize=32)
def _cached_dataset_unlocked(abbr: str, scale: float) -> Dataset:
    return load_dataset(abbr, scale=scale)


def _cached_dataset(abbr: str, scale: float) -> Dataset:
    """Memoized, lock-serialized dataset load (single object per key)."""
    with _dataset_lock:
        return _cached_dataset_unlocked(abbr, scale)


def clear_dataset_cache() -> None:
    """Drop memoized datasets (tests and memory-conscious sweeps)."""
    with _dataset_lock:
        _cached_dataset_unlocked.cache_clear()


def make_workload(
    abbr: str,
    algorithm: str,
    scale: float = BENCH_SCALE,
    memory_bytes: int | None = None,
    dataset: Dataset | None = None,
) -> Workload:
    """Build a workload cell.

    ``memory_bytes`` (scaled) overrides the default paper-matched GPU
    capacity — the lever of Fig. 11's left sweep.  ``dataset`` substitutes
    a pre-built dataset (the RMAT family of Fig. 11's right sweep).
    """
    algorithm = algorithm.upper()
    ds = dataset if dataset is not None else _cached_dataset(abbr, scale)
    graph = ds.graph
    if algorithm in ("SSSP", "SSWP"):
        graph = graph.with_random_weights(high=SSSP_WEIGHT_HIGH)
    if algorithm == "KCORE":
        # k-core is defined on undirected graphs; directed crawls get the
        # weakly-connected view.
        graph = graph.symmetrized()
    spec = GPUSpec(memory_bytes=memory_bytes or ds.gpu_memory_bytes)
    if algorithm in ("BFS", "SSSP", "SSWP"):
        src = best_source(graph)
        factory = lambda: make_program(algorithm, source=src)  # noqa: E731
    elif algorithm in ("PR", "PR-PULL"):
        factory = lambda: make_program(algorithm, tol=PR_TOL)  # noqa: E731
        if algorithm == "PR-PULL":
            # Pull mode gathers over in-edges: stream the reverse CSR.
            graph = graph.reverse()
    else:
        factory = lambda: make_program(algorithm)  # noqa: E731
    return Workload(
        dataset=ds,
        algorithm=algorithm,
        graph=graph,
        spec=spec,
        scale=ds.scale,
        program_factory=factory,
    )


def workload_for_spec(spec: "RunSpec") -> Workload:
    """Materialize the workload a :class:`~repro.runner.spec.RunSpec` names."""
    return make_workload(
        spec.dataset,
        spec.algorithm,
        scale=spec.scale,
        memory_bytes=spec.memory_bytes,
    )


def run_workload(workload: Workload, engine_name: str, checkpoint=None,
                 checkpoint_key: str | None = None, **engine_kwargs) -> RunResult:
    """Run one registered engine on a pre-built workload.

    This is the primitive under :func:`run_cell`; use it directly when the
    workload carries something a spec cannot name (a custom or RMAT
    dataset, a pre-weighted graph).

    ``checkpoint`` (a :class:`~repro.harness.checkpoint.CheckpointStore`)
    with ``checkpoint_key`` enables crash recovery: the engine snapshots
    after every iteration, an existing checkpoint under the key resumes
    the run bit-exactly, and the checkpoint is cleared once the run
    completes.
    """
    engine: Engine = registry.create(
        engine_name, spec=workload.spec, data_scale=workload.scale, **engine_kwargs
    )
    resume = None
    if checkpoint is not None:
        from repro.harness.checkpoint import CheckpointWriter

        if not checkpoint_key:
            raise ValueError("checkpoint requires a checkpoint_key")
        engine.checkpoint = CheckpointWriter(checkpoint, checkpoint_key)
        resume = checkpoint.load(checkpoint_key)
    if resume is not None:
        result = engine.run(workload.graph, workload.fresh_program(),
                            resume_from=resume)
    else:
        # Keep the two-argument call for engines that predate resume
        # support (third-party engines only need run(graph, program)).
        result = engine.run(workload.graph, workload.fresh_program())
    if checkpoint is not None:
        checkpoint.clear(checkpoint_key)
    return result


def run_cell(
    spec: "Union[RunSpec, Workload]", engine_name: str | None = None,
    checkpoint_dir: str | None = None, **engine_kwargs
) -> RunResult:
    """Run one grid cell described by a :class:`~repro.runner.spec.RunSpec`.

    The spec's chaos fields (``fault_plan``/``seed``) are forwarded to the
    engine; ``checkpoint_dir`` enables per-iteration checkpointing keyed by
    the spec's cache key, resuming an interrupted cell bit-exactly.

    .. deprecated:: 1.1
        The old positional form ``run_cell(workload, engine_name, **kw)``
        still works but warns; call :func:`run_workload` (same signature)
        or build a ``RunSpec`` instead.
    """
    from repro.runner.spec import RunSpec

    if isinstance(spec, Workload):
        warnings.warn(
            "run_cell(workload, engine_name, ...) is deprecated; pass a "
            "RunSpec, or use run_workload() for pre-built workloads",
            DeprecationWarning,
            stacklevel=2,
        )
        if engine_name is None:
            raise TypeError("run_cell(workload, ...) requires an engine name")
        return run_workload(spec, engine_name, **engine_kwargs)
    if not isinstance(spec, RunSpec):
        raise TypeError(f"run_cell expects a RunSpec, got {type(spec).__name__}")
    if engine_name is not None or engine_kwargs:
        raise TypeError(
            "run_cell(RunSpec) takes no extra arguments — put engine "
            "options in RunSpec.engine_opts"
        )
    kwargs = spec.engine_kwargs()
    if spec.fault_plan is not None:
        kwargs.setdefault("fault_plan", spec.fault_plan)
        kwargs.setdefault("seed", spec.seed)
    store = None
    if checkpoint_dir is not None:
        from repro.harness.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
    return run_workload(workload_for_spec(spec), spec.engine,
                        checkpoint=store, checkpoint_key=spec.cache_key(),
                        **kwargs)


def run_all_engines(workload: Workload) -> Dict[str, RunResult]:
    """Run every registered engine on one workload (Tables 4/5 cells)."""
    return {name: run_workload(workload, name) for name in ENGINES}
