"""Experiment harness used by ``benchmarks/`` and ``examples/``.

Centralizes the choices every experiment shares — dataset scale, program
parameters, engine registry, platform spec — so each bench regenerates its
table or figure from the same configuration the others use, exactly like
the paper's single test platform (§4.1).

Cell execution at scale (process fan-out, persistent result cache, fault
isolation) lives in :mod:`repro.runner`; this package provides the
building blocks it schedules (:func:`make_workload`, :func:`run_workload`,
:func:`run_cell`) plus the sweeps behind Figures 10/11.
"""

from repro.harness.checkpoint import (
    CheckpointStore,
    CheckpointWriter,
    IterationCheckpoint,
)
from repro.harness.experiments import (
    ENGINES,
    BENCH_SCALE,
    Workload,
    make_workload,
    workload_for_spec,
    run_workload,
    run_cell,
    run_all_engines,
    clear_dataset_cache,
)
from repro.harness.persistence import (
    load_results,
    result_from_payload,
    result_to_dict,
    result_to_payload,
    save_results,
)
from repro.harness.sweeps import (
    RatioPoint,
    sweep_static_ratio,
    MemoryPoint,
    sweep_gpu_memory,
    sweep_rmat_sizes,
)

__all__ = [
    "ENGINES",
    "BENCH_SCALE",
    "Workload",
    "make_workload",
    "workload_for_spec",
    "run_workload",
    "run_cell",
    "run_all_engines",
    "clear_dataset_cache",
    "RatioPoint",
    "sweep_static_ratio",
    "MemoryPoint",
    "sweep_gpu_memory",
    "sweep_rmat_sizes",
    "result_to_dict",
    "result_to_payload",
    "result_from_payload",
    "save_results",
    "load_results",
    "IterationCheckpoint",
    "CheckpointStore",
    "CheckpointWriter",
]
