"""Experiment harness used by ``benchmarks/`` and ``examples/``.

Centralizes the choices every experiment shares — dataset scale, program
parameters, engine registry, platform spec — so each bench regenerates its
table or figure from the same configuration the others use, exactly like
the paper's single test platform (§4.1).
"""

from repro.harness.experiments import (
    ENGINES,
    BENCH_SCALE,
    Workload,
    make_workload,
    run_cell,
    run_all_engines,
    clear_dataset_cache,
)
from repro.harness.persistence import load_results, result_to_dict, save_results
from repro.harness.sweeps import (
    RatioPoint,
    sweep_static_ratio,
    MemoryPoint,
    sweep_gpu_memory,
    sweep_rmat_sizes,
)

__all__ = [
    "ENGINES",
    "BENCH_SCALE",
    "Workload",
    "make_workload",
    "run_cell",
    "run_all_engines",
    "clear_dataset_cache",
    "RatioPoint",
    "sweep_static_ratio",
    "MemoryPoint",
    "sweep_gpu_memory",
    "sweep_rmat_sizes",
    "result_to_dict",
    "save_results",
    "load_results",
]
