"""Iteration checkpoints: resume a faulted cell from its last superstep.

A mid-run crash (a worker killed on timeout, a fault plan exhausting its
retry budget, the host dying) used to lose every completed iteration.  This
module snapshots the *entire* simulation state after each superstep —
vertex values, frontier, iteration index, plus an opaque pickle blob
holding the engine, the simulated device (clock, lanes, event log, memory
allocator), and the fault injector's RNG stream — so
:meth:`repro.engines.base.Engine.run` can continue from the next iteration
and produce a **bit-identical** :class:`~repro.engines.base.RunResult` to
an uninterrupted run (determinism is what makes resume trustworthy: the
resumed half replays no differently than it would have run).

Layout on disk: one pickle file per cell under the store root, keyed by
the cell's :meth:`~repro.runner.spec.RunSpec.cache_key` (or any caller
string).  Writes are atomic (tmp + rename) so a crash mid-write leaves the
previous checkpoint intact; unreadable/corrupt files load as ``None`` —
the runner just starts the cell from scratch.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["IterationCheckpoint", "ShardCheckpoint", "CheckpointStore",
           "CheckpointWriter"]

#: Bumped when the on-disk layout changes; mismatched files load as None.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ShardCheckpoint:
    """One device's slice of a sharded superstep snapshot.

    The sharded engine keeps one of these per device alongside the global
    :class:`IterationCheckpoint`: the shard's global edge range (so a
    recovery can re-tile the dead device's range across survivors) and the
    scaled bytes re-placing this shard's replicated vertex state costs on
    restore.  ``payload`` is an opaque per-shard blob for engine-specific
    restore data.
    """

    device: int
    e_lo: int
    e_hi: int
    restore_bytes: int
    payload: bytes = b""


@dataclass(frozen=True)
class IterationCheckpoint:
    """One superstep's snapshot.

    ``values``/``active``/``iteration`` duplicate the algorithm state in
    inspectable form (tests, debugging, partial-result salvage); ``blob``
    is the authoritative pickle produced by
    :meth:`~repro.engines.base.Engine.snapshot_state`, from which the run
    is actually resumed.  ``shards`` (sharded runs only) carries the
    per-device :class:`ShardCheckpoint` payloads the fleet recovery path
    restores from; the default keeps single-device checkpoints — and every
    v1 file already on disk — loading unchanged.
    """

    engine: str
    algorithm: str
    graph_name: str
    iteration: int
    values: np.ndarray
    active: np.ndarray
    blob: bytes
    shards: Tuple[ShardCheckpoint, ...] = ()


class CheckpointStore:
    """Filesystem-backed checkpoint directory (one pickle per cell key)."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        """The on-disk path backing ``key``."""
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        return os.path.join(self.root, f"{safe}.ckpt")

    def save(self, key: str, checkpoint: IterationCheckpoint) -> str:
        """Atomically persist ``checkpoint`` under ``key``; returns the path."""
        path = self.path_for(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump({"version": CHECKPOINT_VERSION, "checkpoint": checkpoint},
                        fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def load(self, key: str) -> Optional[IterationCheckpoint]:
        """The latest checkpoint for ``key``, or None (missing / corrupt /
        version mismatch) — callers fall back to a from-scratch run."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("version") != CHECKPOINT_VERSION:
            return None
        ckpt = payload.get("checkpoint")
        return ckpt if isinstance(ckpt, IterationCheckpoint) else None

    def clear(self, key: str) -> None:
        """Drop ``key``'s checkpoint (after the cell completes)."""
        try:
            os.remove(self.path_for(key))
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        """Keys with a checkpoint on disk (sorted, extension stripped)."""
        return sorted(
            name[: -len(".ckpt")] for name in os.listdir(self.root)
            if name.endswith(".ckpt")
        )


class CheckpointWriter:
    """Per-run writer an :class:`~repro.engines.base.Engine` calls after
    each superstep (installed on ``engine.checkpoint`` by the harness).

    ``every`` thins the cadence: snapshot every N-th iteration (the last
    snapshot still wins — resume just replays a little more).
    """

    def __init__(self, store: CheckpointStore, key: str, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.store = store
        self.key = key
        self.every = every
        self.n_saved = 0

    def save(self, engine, gpu, graph, program, state, records) -> Optional[str]:
        """Snapshot the run right after an iteration; returns the path
        written (None when thinned out by ``every``)."""
        done = len(records)
        if done % self.every != 0:
            return None
        ckpt = IterationCheckpoint(
            engine=engine.name,
            algorithm=program.name,
            graph_name=graph.name,
            iteration=state.iteration,
            values=np.array(program.values(state), copy=True),
            active=np.array(state.active, copy=True),
            blob=engine.snapshot_state(gpu, state, records),
        )
        self.n_saved += 1
        return self.store.save(self.key, ckpt)
