"""Run-result serialization.

Benchmarks and long sweeps want machine-readable records next to the
human-readable tables: :func:`result_to_dict` flattens a
:class:`~repro.engines.base.RunResult` (without the value array — that is
data, not telemetry), :func:`save_results` / :func:`load_results` round-trip
lists of them as JSON.  ``benchmarks/results/*.json`` are written through
this module.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Union

from repro.engines.base import RunResult

__all__ = ["result_to_dict", "save_results", "load_results"]

PathLike = Union[str, "os.PathLike[str]"]

#: Format marker for forward compatibility.
SCHEMA_VERSION = 1


def result_to_dict(result: RunResult, include_iterations: bool = False) -> Dict:
    """Flatten a run's telemetry to plain JSON-able types."""
    out: Dict = {
        "schema": SCHEMA_VERSION,
        "engine": result.engine,
        "algorithm": result.algorithm,
        "graph": result.graph_name,
        "iterations": result.iterations,
        "elapsed_seconds": result.elapsed_seconds,
        "gpu_idle_fraction": result.gpu_idle_fraction,
        "n_vertices": int(result.values.size),
        "metrics": {k: float(v) for k, v in result.metrics.as_dict().items()},
        "extra": {k: float(v) for k, v in result.extra.items()},
    }
    if include_iterations:
        out["per_iteration"] = [
            {
                "iteration": r.iteration,
                "active_vertices": r.n_active_vertices,
                "active_edges": r.n_active_edges,
                "bytes_h2d": r.bytes_h2d,
                "t_start": r.t_start,
                "t_end": r.t_end,
            }
            for r in result.per_iteration
        ]
    return out


def save_results(
    results: Iterable[RunResult], path: PathLike, include_iterations: bool = False
) -> None:
    """Write a list of runs as a JSON document."""
    payload = [result_to_dict(r, include_iterations) for r in results]
    with open(os.fspath(path), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_results(path: PathLike) -> List[Dict]:
    """Read runs written by :func:`save_results` (as dicts, not objects)."""
    with open(os.fspath(path)) as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError("result file must contain a list of runs")
    for entry in payload:
        if entry.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {entry.get('schema')!r}"
            )
    return payload
