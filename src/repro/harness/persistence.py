"""Run-result serialization.

Benchmarks and long sweeps want machine-readable records next to the
human-readable tables: :func:`result_to_dict` flattens a
:class:`~repro.engines.base.RunResult` (without the value array — that is
data, not telemetry), :func:`save_results` / :func:`load_results` round-trip
lists of them as JSON.  ``benchmarks/results/*.json`` are written through
this module.

The grid runner's persistent cache needs more: :func:`result_to_payload` /
:func:`result_from_payload` round-trip a *complete* ``RunResult`` —
including the value array (raw bytes, base64) and every per-iteration
record — **bit-exactly** (JSON floats use shortest-repr, which round-trips
IEEE-754 doubles exactly), so a replayed cell is indistinguishable from a
recomputed one.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Dict, Iterable, List, Union

import numpy as np

from repro.engines.base import IterationRecord, RunResult
from repro.gpusim.events import EventLog, SimEvent
from repro.gpusim.metrics import Metrics

__all__ = [
    "result_to_dict",
    "save_results",
    "load_results",
    "result_to_payload",
    "result_from_payload",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Format marker for forward compatibility.
SCHEMA_VERSION = 1

#: Format marker for the *full* (cacheable) payload form.
PAYLOAD_VERSION = 1


def result_to_dict(result: RunResult, include_iterations: bool = False) -> Dict:
    """Flatten a run's telemetry to plain JSON-able types."""
    out: Dict = {
        "schema": SCHEMA_VERSION,
        "engine": result.engine,
        "algorithm": result.algorithm,
        "graph": result.graph_name,
        "iterations": result.iterations,
        "elapsed_seconds": result.elapsed_seconds,
        "gpu_idle_fraction": result.gpu_idle_fraction,
        "n_vertices": int(result.values.size),
        "metrics": {k: float(v) for k, v in result.metrics.as_dict().items()},
        "extra": {k: float(v) for k, v in result.extra.items()},
    }
    if include_iterations:
        out["per_iteration"] = [
            {
                "iteration": r.iteration,
                "active_vertices": r.n_active_vertices,
                "active_edges": r.n_active_edges,
                "bytes_h2d": r.bytes_h2d,
                "t_start": r.t_start,
                "t_end": r.t_end,
            }
            for r in result.per_iteration
        ]
    return out


def save_results(
    results: Iterable[RunResult], path: PathLike, include_iterations: bool = False
) -> None:
    """Write a list of runs as a JSON document."""
    payload = [result_to_dict(r, include_iterations) for r in results]
    with open(os.fspath(path), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def _array_to_payload(arr: np.ndarray) -> Dict:
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode("ascii"),
    }


def _array_from_payload(payload: Dict) -> np.ndarray:
    arr = np.frombuffer(
        base64.b64decode(payload["data"]), dtype=np.dtype(payload["dtype"])
    )
    return arr.reshape(payload["shape"]).copy()


def result_to_payload(result: RunResult) -> Dict:
    """Serialize a complete run, value array included, losslessly to JSON types."""
    return {
        "payload_version": PAYLOAD_VERSION,
        "engine": result.engine,
        "algorithm": result.algorithm,
        "graph_name": result.graph_name,
        "values": _array_to_payload(result.values),
        "iterations": result.iterations,
        "elapsed_seconds": result.elapsed_seconds,
        "gpu_idle_fraction": result.gpu_idle_fraction,
        "metrics": {
            "bytes_h2d": result.metrics.bytes_h2d,
            "bytes_d2h": result.metrics.bytes_d2h,
            "h2d_transfers": result.metrics.h2d_transfers,
            "d2h_transfers": result.metrics.d2h_transfers,
            "bytes_direct": result.metrics.bytes_direct,
            "direct_accesses": result.metrics.direct_accesses,
            "page_faults": result.metrics.page_faults,
            "fault_batches": result.metrics.fault_batches,
            "pages_migrated": result.metrics.pages_migrated,
            "pages_evicted": result.metrics.pages_evicted,
            "kernel_launches": result.metrics.kernel_launches,
            "edges_processed": result.metrics.edges_processed,
            "transfer_faults": result.metrics.transfer_faults,
            "transfer_retries": result.metrics.transfer_retries,
            "kernel_aborts": result.metrics.kernel_aborts,
            "retry_seconds": result.metrics.retry_seconds,
            "phase_seconds": dict(result.metrics.phase_seconds),
        },
        "per_iteration": [
            {
                "iteration": r.iteration,
                "n_active_vertices": r.n_active_vertices,
                "n_active_edges": r.n_active_edges,
                "bytes_h2d": r.bytes_h2d,
                "t_start": r.t_start,
                "t_end": r.t_end,
            }
            for r in result.per_iteration
        ],
        "extra": dict(result.extra),
        "events": (
            [e.to_dict() for e in result.event_log.events]
            if result.event_log is not None
            else None
        ),
    }


def result_from_payload(payload: Dict) -> RunResult:
    """Rebuild the exact :class:`RunResult` written by :func:`result_to_payload`."""
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise ValueError(
            f"unsupported result payload version {payload.get('payload_version')!r}"
        )
    m = payload["metrics"]
    metrics = Metrics(
        bytes_h2d=m["bytes_h2d"],
        bytes_d2h=m["bytes_d2h"],
        h2d_transfers=m["h2d_transfers"],
        d2h_transfers=m["d2h_transfers"],
        # Zero-copy counters arrived with the direct-access path; default
        # for payloads written before them.
        bytes_direct=m.get("bytes_direct", 0),
        direct_accesses=m.get("direct_accesses", 0),
        page_faults=m["page_faults"],
        fault_batches=m["fault_batches"],
        pages_migrated=m["pages_migrated"],
        pages_evicted=m["pages_evicted"],
        kernel_launches=m["kernel_launches"],
        edges_processed=m["edges_processed"],
        # Chaos counters arrived after PAYLOAD_VERSION 1; default for
        # payloads written before them.
        transfer_faults=m.get("transfer_faults", 0),
        transfer_retries=m.get("transfer_retries", 0),
        kernel_aborts=m.get("kernel_aborts", 0),
        retry_seconds=m.get("retry_seconds", 0.0),
    )
    for phase, sec in m["phase_seconds"].items():
        metrics.phase_seconds[phase] = sec
    event_log = None
    if payload.get("events") is not None:
        # Re-emitting through a fresh recorded log rebuilds the derived
        # views (folded counters, lane stats) exactly as the live run did.
        event_log = EventLog(record=True)
        for entry in payload["events"]:
            event_log.emit(SimEvent.from_dict(entry))
    return RunResult(
        engine=payload["engine"],
        algorithm=payload["algorithm"],
        graph_name=payload["graph_name"],
        values=_array_from_payload(payload["values"]),
        iterations=payload["iterations"],
        elapsed_seconds=payload["elapsed_seconds"],
        gpu_idle_fraction=payload["gpu_idle_fraction"],
        metrics=metrics,
        per_iteration=[IterationRecord(**r) for r in payload["per_iteration"]],
        extra=dict(payload["extra"]),
        event_log=event_log,
    )


def load_results(path: PathLike) -> List[Dict]:
    """Read runs written by :func:`save_results` (as dicts, not objects)."""
    with open(os.fspath(path)) as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError("result file must contain a list of runs")
    for entry in payload:
        if entry.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {entry.get('schema')!r}"
            )
    return payload
