"""Parameter sweeps behind Figures 10 and 11.

* :func:`sweep_static_ratio` — Fig. 10: force the Static Region share from
  0 to 1 and record total time plus the four component timers
  (Tsr / Tfilling / Ttransfer / Tondemand), with the Subway baseline and
  the Eq. 2 pick marked;
* :func:`sweep_gpu_memory` — Fig. 11 left: shrink the GPU under a fixed
  dataset and compare Ascetic vs Subway;
* :func:`sweep_rmat_sizes` — Fig. 11 right: grow an RMAT dataset past the
  GPU and compare Ascetic vs Subway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.ascetic import AsceticConfig
from repro.core.ratio import static_ratio
from repro.engines.base import RunResult
from repro.graph.datasets import DATASETS, rmat_dataset
from repro.gpusim.device import GPUSpec
from repro.harness.experiments import Workload, make_workload, run_workload

__all__ = [
    "RatioPoint",
    "sweep_static_ratio",
    "MemoryPoint",
    "sweep_gpu_memory",
    "sweep_rmat_sizes",
]


@dataclass(frozen=True)
class RatioPoint:
    """One x-position of Fig. 10."""

    ratio: float
    total_seconds: float
    t_sr: float
    t_filling: float
    t_transfer: float
    t_ondemand: float


def _ratio_point(ratio: float, res: RunResult) -> RatioPoint:
    ph = res.metrics.phase_seconds
    return RatioPoint(
        ratio=float(ratio),
        total_seconds=res.elapsed_seconds,
        t_sr=ph.get("Tsr", 0.0),
        t_filling=ph.get("Tfilling", 0.0),
        t_transfer=ph.get("Ttransfer", 0.0),
        t_ondemand=ph.get("Tondemand", 0.0),
    )


def sweep_static_ratio(
    workload: Workload,
    ratios: Sequence[float],
    config: AsceticConfig | None = None,
    jobs: int = 1,
    cache=None,
) -> tuple[List[RatioPoint], float, float]:
    """Fig. 10: run Ascetic at each forced Static Region ratio.

    Returns (points, subway_seconds, eq2_ratio) — the horizontal Subway
    line and the vertical Eq. 2 marker of the paper's plots.

    With ``jobs > 1`` the ratio points (and the Subway baseline) fan out
    through :func:`repro.runner.run_grid` — results are bit-identical to
    the serial path.  Parallel execution requires a workload built by
    :func:`~repro.harness.experiments.make_workload` on a named dataset;
    custom-dataset workloads fall back to serial.
    """
    cfg = config or AsceticConfig()
    # Fig. 10 isolates the ratio: adaptive repartitioning would move the
    # forced ratio mid-run, so it is pinned off for every point.
    ratio_cfgs = [cfg.with_(forced_ratio=float(r), adaptive=False) for r in ratios]
    if jobs > 1 and workload.dataset.abbr in DATASETS:
        from repro.runner import RunSpec, run_grid

        common = dict(
            dataset=workload.dataset.abbr,
            algorithm=workload.algorithm,
            scale=workload.scale,
            memory_bytes=workload.spec.memory_bytes,
        )
        specs = [
            RunSpec(engine="Ascetic", engine_opts={"config": c}, **common)
            for c in ratio_cfgs
        ]
        specs.append(RunSpec(engine="Subway", **common))
        report = run_grid(specs, jobs=jobs, cache=cache)
        failed = [c for c in report.cells if not c.ok]
        if failed:
            raise RuntimeError(
                "ratio sweep cells failed: "
                + "; ".join(f"{c.spec.label()}: {c.error}" for c in failed)
            )
        points = [
            _ratio_point(r, c.result) for r, c in zip(ratios, report.cells)
        ]
        subway_seconds = report.cells[-1].result.elapsed_seconds
    else:
        points = [
            _ratio_point(r, run_workload(workload, "Ascetic", config=c))
            for r, c in zip(ratios, ratio_cfgs)
        ]
        subway_seconds = run_workload(workload, "Subway").elapsed_seconds
    vertex_state = workload.graph.vertex_state_bytes
    eq2 = static_ratio(
        cfg.k,
        workload.graph.edge_array_bytes,
        max(workload.spec.memory_bytes - vertex_state, 1),
    )
    return points, subway_seconds, eq2


@dataclass(frozen=True)
class MemoryPoint:
    """One x-position of Fig. 11 (either sweep)."""

    label: str
    memory_fraction: float
    ascetic_seconds: float
    subway_seconds: float

    @property
    def speedup(self) -> float:
        return self.subway_seconds / self.ascetic_seconds


def sweep_gpu_memory(
    abbr: str,
    algorithm: str,
    memory_fractions: Sequence[float],
    scale: float,
) -> List[MemoryPoint]:
    """Fig. 11 left: Ascetic vs Subway as GPU memory shrinks.

    ``memory_fractions`` are GPU-capacity : dataset-size ratios (the paper
    sweeps 5–13 GB against a 15 GB Friendster, i.e. 0.33–0.87).
    """
    base = make_workload(abbr, algorithm, scale=scale)
    points: List[MemoryPoint] = []
    for frac in memory_fractions:
        mem = int(base.graph.dataset_bytes * frac)
        w = make_workload(abbr, algorithm, scale=scale, memory_bytes=mem)
        asc = run_workload(w, "Ascetic")
        sub = run_workload(w, "Subway")
        points.append(
            MemoryPoint(
                label=f"{frac:.0%}",
                memory_fraction=float(frac),
                ascetic_seconds=asc.elapsed_seconds,
                subway_seconds=sub.elapsed_seconds,
            )
        )
    return points


def sweep_rmat_sizes(
    algorithm: str,
    paper_edge_counts: Sequence[float],
    scale: float,
    gpu_memory_paper_bytes: float = 16 * 10**9,
) -> List[MemoryPoint]:
    """Fig. 11 right: growing RMAT datasets against a fixed GPU.

    The paper reserves a fixed card (16 GB class) and grows the dataset to
    2.5–12 B edges; the interesting regime is static-region : dataset down
    to ~20 %.
    """
    points: List[MemoryPoint] = []
    for paper_edges in paper_edge_counts:
        ds = rmat_dataset(paper_edges, scale=scale)
        mem = int(gpu_memory_paper_bytes * scale)
        w = make_workload(ds.abbr, algorithm, scale=scale, memory_bytes=mem, dataset=ds)
        asc = run_workload(w, "Ascetic")
        sub = run_workload(w, "Subway")
        points.append(
            MemoryPoint(
                label=ds.abbr,
                memory_fraction=mem / max(ds.graph.dataset_bytes, 1),
                ascetic_seconds=asc.elapsed_seconds,
                subway_seconds=sub.elapsed_seconds,
            )
        )
    return points
