"""Wall-clock performance-regression harness (``repro bench``).

Everything under :mod:`repro.bench` measures **host wall-clock time** of the
simulator's own hot paths — frontier expansion, the Static Region's chunk
accounting, event-log folds, whole engine runs.  This is deliberately a
different axis from ``benchmarks/``, which reproduces the *paper's* numbers
in **modelled (simulated) seconds**: a change can leave every modelled
figure bit-identical while making the simulator itself ten times slower,
and only this harness would notice.

Three pieces:

* :mod:`repro.bench.registry` — the :class:`Benchmark` descriptor and the
  process-wide registry the CLI enumerates;
* :mod:`repro.bench.suite` — the standard benchmark definitions (micro
  host-path kernels plus macro end-to-end engine runs);
* :mod:`repro.bench.report` — schema-versioned JSON reports
  (``BENCH_<rev>.json``) and the regression comparator behind
  ``repro bench --against``.

See ``docs/performance.md`` for the workflow.
"""

from repro.bench.registry import Benchmark, Prepared, all_benchmarks, register
from repro.bench.report import (
    SCHEMA_VERSION,
    Comparison,
    compare_reports,
    default_report_name,
    load_report,
    make_report,
    write_report,
)
from repro.bench.timing import Timing, time_callable

__all__ = [
    "Benchmark",
    "Prepared",
    "all_benchmarks",
    "register",
    "SCHEMA_VERSION",
    "Comparison",
    "compare_reports",
    "default_report_name",
    "load_report",
    "make_report",
    "write_report",
    "Timing",
    "time_callable",
    "run_benchmarks",
]


def run_benchmarks(names=None, quick=False, progress=None):
    """Prepare and time registered benchmarks; returns ``{name: result}``.

    ``names`` filters (exact names); ``quick`` shrinks problem sizes and
    repeat counts for smoke runs; ``progress`` is an optional callable
    receiving each benchmark name before it runs.
    """
    import repro.bench.suite  # noqa: F401  (registers the standard suite)

    out = {}
    for bench in all_benchmarks():
        if names is not None and bench.name not in names:
            continue
        if progress is not None:
            progress(bench.name)
        prepared = bench.prepare(quick)
        repeats, warmup = bench.repeats_for(quick)
        timing = time_callable(prepared.fn, repeats=repeats, warmup=warmup)
        out[bench.name] = {
            "kind": bench.kind,
            "description": bench.description,
            "best_seconds": timing.best,
            "mean_seconds": timing.mean,
            "repeats": timing.repeats,
            "units": dict(prepared.units),
            "throughput": {
                f"{unit}_per_second": (value / timing.best if timing.best > 0 else 0.0)
                for unit, value in prepared.units.items()
            },
        }
    return out
