"""Schema-versioned bench reports and the regression comparator.

A report is a JSON document (``BENCH_<rev>.json`` by default, ``<rev>``
being the :func:`repro.runner.code_version` content hash) carrying the
timings plus enough environment fingerprint to judge comparability —
cross-machine comparisons are only meaningful with a generous threshold,
which is why the CI smoke job uses a far looser one than the local default
(see ``docs/performance.md``).

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "revision": "<code_version hash>",
      "environment": {"python": ..., "numpy": ..., "platform": ...,
                      "cpu_count": ..., "quick": ..., "argv": ...},
      "benchmarks": {
        "<name>": {"kind": ..., "description": ..., "best_seconds": ...,
                   "mean_seconds": ..., "repeats": ...,
                   "units": {"edges": ...}, "throughput": {...}}
      }
    }

The comparator keys on ``best_seconds`` and flags any benchmark whose
fractional slowdown exceeds the threshold.  Benchmarks present on only one
side are reported but never fail the comparison — adding or retiring a
benchmark must not break CI.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "Comparison",
    "Delta",
    "compare_reports",
    "default_report_name",
    "load_report",
    "make_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Default acceptable fractional slowdown for same-machine comparisons.
DEFAULT_THRESHOLD = 0.25


def _environment(quick: bool) -> dict:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "quick": bool(quick),
        "argv": list(sys.argv),
    }


def make_report(results: Dict[str, dict], quick: bool = False) -> dict:
    """Wrap ``run_benchmarks`` output into a schema-versioned document."""
    from repro.runner import code_version

    return {
        "schema_version": SCHEMA_VERSION,
        "revision": code_version(),
        "environment": _environment(quick),
        "benchmarks": results,
    }


def default_report_name(report: dict) -> str:
    """Canonical ``BENCH_<rev>.json`` filename for a report."""
    return f"BENCH_{report['revision']}.json"


def write_report(path: str, report: dict) -> str:
    """Write a report as stable (sorted, indented) JSON; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> dict:
    """Read and schema-check a ``BENCH_*.json`` report."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if "benchmarks" not in report:
        raise ValueError(f"{path}: malformed bench report (no 'benchmarks')")
    return report


@dataclass(frozen=True)
class Delta:
    """One benchmark's old-vs-new timing."""

    name: str
    old_seconds: float
    new_seconds: float

    @property
    def ratio(self) -> float:
        """new/old; > 1 is slower."""
        if self.old_seconds <= 0:
            return float("inf") if self.new_seconds > 0 else 1.0
        return self.new_seconds / self.old_seconds


@dataclass
class Comparison:
    """The comparator's verdict over two reports."""

    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    regressions: List[Delta] = field(default_factory=list)
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_reports(
    old: dict, new: dict, threshold: Optional[float] = None
) -> Comparison:
    """Compare two reports; a benchmark regresses when
    ``new.best > old.best * (1 + threshold)``.
    """
    thr = DEFAULT_THRESHOLD if threshold is None else float(threshold)
    if thr < 0:
        raise ValueError("threshold must be non-negative")
    old_b, new_b = old["benchmarks"], new["benchmarks"]
    cmp = Comparison(threshold=thr)
    cmp.only_old = sorted(set(old_b) - set(new_b))
    cmp.only_new = sorted(set(new_b) - set(old_b))
    for name in sorted(set(old_b) & set(new_b)):
        delta = Delta(
            name=name,
            old_seconds=float(old_b[name]["best_seconds"]),
            new_seconds=float(new_b[name]["best_seconds"]),
        )
        cmp.deltas.append(delta)
        if delta.ratio > 1.0 + thr:
            cmp.regressions.append(delta)
    return cmp
