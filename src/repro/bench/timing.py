"""Best-of-N wall-clock timing.

Best-of (not mean-of) is the standard estimator for CPU micro-benchmarks:
the minimum over repeats approaches the true cost with the least
interference from scheduler noise, frequency ramps and GC pauses, all of
which only ever *add* time.  The mean is reported alongside as a noise
indicator — a mean far above the best flags an untrustworthy run.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable, List

__all__ = ["Timing", "time_callable"]


@dataclass(frozen=True)
class Timing:
    """Wall-clock samples for one benchmark (seconds)."""

    samples: List[float]

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def repeats(self) -> int:
        return len(self.samples)


def time_callable(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> Timing:
    """Time ``fn()`` ``repeats`` times after ``warmup`` untimed calls.

    The warmup absorbs one-time costs (lazy imports, allocator growth,
    dataset caches) that would otherwise pollute the first sample.  GC is
    disabled around each timed call so collection pauses land between
    samples, not inside them.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            gc.collect()
            if was_enabled:
                gc.disable()
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
            if was_enabled:
                gc.enable()
    finally:
        if was_enabled and not gc.isenabled():
            gc.enable()
    return Timing(samples=samples)
