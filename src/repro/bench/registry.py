"""Benchmark descriptors and the process-wide registry.

A benchmark is a *prepare* function: it builds its inputs (graphs, regions,
event logs) outside the timed section and returns a :class:`Prepared` —
a zero-argument callable to time plus the work units it processes per call
(edges, bytes, events…), from which the report derives throughput.

Registration is declarative::

    @register("static_region/chunk_touch_counts", kind="micro",
              description="per-chunk touch counts from an active mask")
    def _bench(quick: bool) -> Prepared:
        ...
        return Prepared(fn=lambda: region.chunk_touch_counts(mask),
                        units={"edges": n_active_edges})

``kind`` steers the repeat policy: ``micro`` benchmarks are cheap and run
many repeats; ``macro`` benchmarks (whole engine runs) are seconds-long and
run few.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

__all__ = ["Prepared", "Benchmark", "register", "all_benchmarks", "clear"]

#: (repeats, warmup) per (kind, quick-mode).
_REPEAT_POLICY = {
    ("micro", False): (7, 2),
    ("micro", True): (3, 1),
    ("macro", False): (3, 1),
    ("macro", True): (2, 0),
}


@dataclass(frozen=True)
class Prepared:
    """A ready-to-time benchmark instance."""

    fn: Callable[[], object]
    units: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: a named, kinded prepare function."""

    name: str
    kind: str
    description: str
    prepare: Callable[[bool], Prepared]

    def repeats_for(self, quick: bool) -> Tuple[int, int]:
        """``(repeats, warmup)`` under the kind's repeat policy."""
        return _REPEAT_POLICY[(self.kind, bool(quick))]


_REGISTRY: Dict[str, Benchmark] = {}


def register(name: str, kind: str, description: str):
    """Decorator: add a prepare function to the registry under ``name``."""
    if kind not in ("micro", "macro"):
        raise ValueError("kind must be 'micro' or 'macro'")

    def deco(prepare: Callable[[bool], Prepared]) -> Callable[[bool], Prepared]:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = Benchmark(
            name=name, kind=kind, description=description, prepare=prepare
        )
        return prepare

    return deco


def all_benchmarks() -> List[Benchmark]:
    """Registered benchmarks in name order (stable across runs)."""
    import repro.bench.suite  # noqa: F401  (registers the standard suite)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def clear() -> None:
    """Empty the registry (tests only)."""
    _REGISTRY.clear()
