"""The standard benchmark suite behind ``repro bench``.

Micro benchmarks cover the host hot paths every simulated iteration pays:
frontier expansion and edge counting (the per-iteration mask walk), the
Static Region's chunk accounting (touch counts, promotion, the
StaticBitmap), and the event-log fold.  Macro benchmarks time whole engine
runs and a small grid, catching regressions the micro kernels miss
(allocation churn, per-iteration overheads, scheduling).

Sizes are fixed per mode (``quick`` vs full) and every input is seeded, so
two runs of the same revision time identical work — the comparator's whole
premise.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.frontier import (
    FrontierCache,
    active_edge_count,
    expand_frontier,
)
from repro.bench.registry import Prepared, register
from repro.core.static_region import StaticRegion
from repro.graph.generators import rmat_graph, web_graph

__all__ = []  # registration happens at import; nothing to re-export

#: Engine-macro dataset scale: full mode matches the harness default
#: (``BENCH_SCALE``); quick mode shrinks a further 4x for CI smoke runs.
_MACRO_SCALE = {False: 2.0e-4, True: 5.0e-5}


def _frontier_inputs(quick: bool):
    scale, n_edges = (14, 150_000) if quick else (17, 1_200_000)
    graph = rmat_graph(scale, n_edges, seed=3)
    rng = np.random.default_rng(11)
    mask = rng.random(graph.n_vertices) < 0.3
    return graph, mask


def _region_inputs(quick: bool, fill: str = "front"):
    n_v, n_e = (8_000, 100_000) if quick else (60_000, 900_000)
    graph = web_graph(n_v, n_e, seed=5)
    region = StaticRegion(graph, capacity_bytes=graph.edge_array_bytes // 2,
                          fill=fill, chunk_bytes=4096)
    rng = np.random.default_rng(13)
    mask = rng.random(graph.n_vertices) < 0.4
    return graph, region, mask


@register("frontier/expand_frontier", kind="micro",
          description="materialize (source, position) pairs for a 30% frontier")
def _bench_expand(quick: bool) -> Prepared:
    graph, mask = _frontier_inputs(quick)
    n_edges = active_edge_count(graph, mask)
    return Prepared(fn=lambda: expand_frontier(graph, mask),
                    units={"edges": float(n_edges)})


@register("frontier/active_edge_count", kind="micro",
          description="count a 30% frontier's edges (uncached walk)")
def _bench_edge_count(quick: bool) -> Prepared:
    graph, mask = _frontier_inputs(quick)
    n_edges = active_edge_count(graph, mask)
    return Prepared(fn=lambda: active_edge_count(graph, mask),
                    units={"edges": float(n_edges)})


@register("frontier/shared_iteration", kind="micro",
          description="one iteration's frontier work through the shared cache"
                      " (count + vertices + expansion, one mask walk)")
def _bench_shared(quick: bool) -> Prepared:
    graph, mask = _frontier_inputs(quick)
    n_edges = active_edge_count(graph, mask)
    cache = FrontierCache()

    def run():
        # What an engine + vertex program pay per iteration post-refactor:
        # the engine's accounting count, then the program's expansion, all
        # served by one walk.  A fresh mask object per call forces the
        # cache to invalidate exactly as a real iteration does.
        m = mask.copy()
        cache.edge_count(graph, m)
        cache.vertices(graph, m)
        return cache.expansion(graph, m)

    return Prepared(fn=run, units={"edges": float(n_edges)})


@register("static_region/chunk_touch_counts", kind="micro",
          description="per-chunk touch counts from a 40% active mask"
                      " (adaptive range-marking, dense regime)")
def _bench_touch_counts(quick: bool) -> Prepared:
    graph, region, mask = _region_inputs(quick)
    n_edges = active_edge_count(graph, mask)
    return Prepared(fn=lambda: region.chunk_touch_counts(mask),
                    units={"edges": float(n_edges),
                           "chunks": float(region.n_chunks)})


@register("static_region/promote_vertices", kind="micro",
          description="lazy-fill promotion of a 40% mask into an empty region")
def _bench_promote(quick: bool) -> Prepared:
    graph, region, mask = _region_inputs(quick, fill="lazy")
    n_edges = active_edge_count(graph, mask)

    def run():
        # Promotion mutates residency; reset so every repeat does the same
        # work.  The reset is a cheap vectorized fill, charged to the
        # benchmark uniformly across revisions.
        region.resident[:] = False
        region._invalidate()
        return region.promote_vertices(mask)

    return Prepared(fn=run, units={"edges": float(n_edges),
                                   "chunks": float(region.capacity_chunks)})


@register("static_region/vertex_static_bitmap", kind="micro",
          description="recompute the vertex-granularity StaticBitmap")
def _bench_bitmap(quick: bool) -> Prepared:
    graph, region, _ = _region_inputs(quick)

    def run():
        region._invalidate()  # as swap()/shrink_to() do
        return region.vertex_static_bitmap()

    return Prepared(fn=run, units={"vertices": float(graph.n_vertices)})


@register("events/fold_metrics", kind="micro",
          description="refold a recorded engine run's event log into Metrics")
def _bench_fold(quick: bool) -> Prepared:
    from repro.gpusim.events import fold_metrics
    from repro.harness.experiments import make_workload, run_workload

    w = make_workload("GS", "BFS", scale=_MACRO_SCALE[quick])
    res = run_workload(w, "Ascetic", record_events=True)
    events = res.event_log.events
    return Prepared(fn=lambda: fold_metrics(events),
                    units={"events": float(len(events))})


def _engine_macro(engine: str, quick: bool) -> Prepared:
    from repro.harness.experiments import make_workload, run_workload

    w = make_workload("GS", "BFS", scale=_MACRO_SCALE[quick])
    run_workload(w, engine)  # warm the dataset/program caches outside timing

    def run():
        return run_workload(w, engine)

    return Prepared(fn=run, units={"edges": float(w.graph.n_edges)})


@register("engine/ascetic_bfs", kind="macro",
          description="full Ascetic BFS run on scaled GS (simulator overhead)")
def _bench_ascetic(quick: bool) -> Prepared:
    return _engine_macro("Ascetic", quick)


@register("engine/subway_bfs", kind="macro",
          description="full Subway BFS run on scaled GS (simulator overhead)")
def _bench_subway(quick: bool) -> Prepared:
    return _engine_macro("Subway", quick)


@register("engine/hybrid_bfs", kind="macro",
          description="full Hybrid BFS run on scaled GS (simulator overhead)")
def _bench_hybrid(quick: bool) -> Prepared:
    return _engine_macro("Hybrid", quick)


@register("engine/sharded_bfs", kind="macro",
          description="full 4-device sharded Ascetic BFS run on scaled GS "
                      "(fabric + exchange overhead)")
def _bench_sharded(quick: bool) -> Prepared:
    return _engine_macro("Sharded", quick)


@register("fleet/router_decide", kind="micro",
          description="router placement decisions over a fleet of warm "
                      "pools (affinity scan + least-loaded tie-break)")
def _bench_router(quick: bool) -> Prepared:
    from repro.gpusim.fabric import FabricSpec
    from repro.serve.fleet import Router
    from repro.serve.pool import EnginePool

    n_devices = 8
    n_keys = 200 if quick else 1_000
    router = Router(FabricSpec(n_devices=n_devices), shard_over=1.0)
    rng = np.random.default_rng(23)
    # Warm pools with a spread of affinity keys; a deterministic key
    # stream mixes warm hits, cold placements, and oversized graphs.
    pools = [EnginePool(max_engines=4) for _ in range(n_devices)]
    for d in range(n_devices):
        for k in range(d % 3 + 1):
            pools[d]._engines[(f"G{(d * 3 + k) % 12}", "plain")] = object()
    keys = [(f"G{rng.integers(0, 16)}", "plain") for _ in range(n_keys)]
    sizes = rng.integers(1_000, 3_000, size=n_keys)
    free = list(range(n_devices))

    def run():
        return [
            router.decide(key, int(size), 2_000, free, pools)
            for key, size in zip(keys, sizes)
        ]

    return Prepared(fn=run, units={"decisions": float(n_keys)})


@register("serve/scheduler_decide", kind="micro",
          description="one affinity-scheduler dispatch decision over a "
                      "deep admission queue")
def _bench_scheduler(quick: bool) -> Prepared:
    from repro.serve.request import generate_requests
    from repro.serve.scheduler import AffinityScheduler

    n = 300 if quick else 1_500
    items = generate_requests(
        n_requests=n, seed=17, arrival_rate=50.0,
        graphs=("GS", "FK", "UK"), algorithms=("BFS", "CC", "SSSP"),
        tenants=("a", "b", "c"), priorities=(0, 1, 2), multi_source=2,
    )
    sched = AffinityScheduler(max_batch=4, aging_seconds=1e9)
    warm = (("GS", "plain"), ("FK", "weighted"))
    now = items[-1].arrival
    return Prepared(fn=lambda: sched.select(items, now, warm),
                    units={"requests": float(n)})


@register("serve/slo_fold", kind="micro",
          description="fold a recorded request-lifecycle event stream into "
                      "the SLO report")
def _bench_slo_fold(quick: bool) -> Prepared:
    from repro.gpusim.events import SimEvent
    from repro.serve.slo import fold_slo

    n = 2_000 if quick else 10_000
    events = []
    for i in range(n):
        t = i * 0.25
        rid = (("request", float(i)), ("deadline", t + 30.0))
        tenant = f"t{i % 4}/GS/BFS"
        events.append(SimEvent("", "request-arrive", tenant, t, t, extra=rid))
        events.append(SimEvent("", "request-admit", tenant, t, t, extra=rid))
        events.append(SimEvent("", "request-start", tenant, t + 1.0, t + 1.0,
                               extra=rid + (("batch", 1.0), ("warm", 1.0))))
        events.append(SimEvent("", "request-complete", tenant, t + 3.0,
                               t + 3.0, extra=rid))
    return Prepared(fn=lambda: fold_slo(events),
                    units={"events": float(len(events))})


@register("runner/grid_serial", kind="macro",
          description="4-cell uncached grid through the runner (jobs=1)")
def _bench_grid(quick: bool) -> Prepared:
    from repro.runner import RunSpec, run_grid

    scale = _MACRO_SCALE[quick]
    specs = [
        RunSpec(dataset="GS", algorithm=algo, engine=eng, scale=scale)
        for algo in ("BFS", "CC")
        for eng in ("Ascetic", "Subway")
    ]

    def run():
        report = run_grid(specs, jobs=1, cache=None)
        if report.n_failed:
            raise RuntimeError("grid benchmark cell failed")
        return report

    run()  # warm dataset caches outside timing
    return Prepared(fn=run, units={"cells": float(len(specs))})
