"""Connected components via min-label propagation.

Every vertex starts labelled with its own id and all vertices start active;
active vertices push their label with atomic min along out-edges, and any
vertex whose label drops becomes active.  On an undirected (symmetrized)
graph this converges to connected components with the component's minimum
vertex id as the label — the classic GPU CC (HookShrink-free variant used by
push frameworks).

On a *directed* graph the fixpoint assigns each vertex the minimum label
that can reach it along directed paths.  The paper runs CC on its directed
web crawls as stored; we match that behaviour and validate directed runs
against a host-side fixpoint of the same recurrence (undirected runs are
validated against networkx components).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["ConnectedComponents", "CCState"]


@dataclass
class CCState(ProgramState):
    labels: np.ndarray = None  # int64


class ConnectedComponents(VertexProgram):
    """Min-label propagation over the stored arcs (see module docstring).

    For weakly connected components of a directed graph, run it on
    ``graph.symmetrized()``.
    """

    name = "CC"
    needs_weights = False
    atomics = True

    def init_state(self, graph: CSRGraph) -> CCState:
        labels = np.arange(graph.n_vertices, dtype=np.int64)
        active = np.ones(graph.n_vertices, dtype=bool)
        return CCState(active=active, labels=labels)

    def step(self, graph: CSRGraph, state: CCState) -> None:
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        nxt = np.zeros(graph.n_vertices, dtype=bool)
        if exp.n_edges:
            dsts = graph.indices[exp.positions]
            pushed = state.labels[exp.sources]
            old = state.labels[dsts].copy()
            np.minimum.at(state.labels, dsts, pushed)
            changed = dsts[state.labels[dsts] < old]
            if changed.size:
                nxt[np.unique(changed)] = True
        state.active = nxt
        state.iteration += 1

    def values(self, state: CCState) -> np.ndarray:
        return state.labels
