"""Single-source shortest paths.

Frontier-driven Bellman-Ford (the standard GPU SSSP): every active vertex
relaxes all its out-edges with atomic min; vertices whose distance improves
become active for the next superstep.  Converges to exact shortest-path
distances for non-negative integer weights.  SSSP carries a 4-byte weight
per edge, doubling edge bytes — the paper sizes its SSSP datasets
accordingly (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["SSSP", "SSSPState", "INF_DIST"]

#: Distance of unreached vertices (fits uint64 without overflow on relax).
INF_DIST = np.uint64(2**63)


@dataclass
class SSSPState(ProgramState):
    dist: np.ndarray = None  # uint64
    #: Delta-stepping state: vertices improved but deferred to a later
    #: bucket, and the current bucket index.
    pending: np.ndarray = None
    bucket: int = 0


class SSSP(VertexProgram):
    """SSSP from ``source`` (default: the max-degree hub).

    ``delta=None`` is plain frontier Bellman-Ford (every improved vertex
    re-relaxes next superstep).  ``delta > 0`` enables delta-stepping: a
    vertex whose tentative distance lands beyond the current bucket
    ``[b·delta, (b+1)·delta)`` is *deferred* until the frontier drains,
    which prunes the re-relaxation cascades long weighted paths cause —
    the standard GPU SSSP optimization, still exact for non-negative
    weights.
    """

    name = "SSSP"
    needs_weights = True
    atomics = True

    def __init__(self, source: int | None = None, delta: int | None = None):
        if delta is not None and delta <= 0:
            raise ValueError("delta must be positive")
        self.source = source
        self.delta = delta

    def _resolve_source(self, graph: CSRGraph) -> int:
        if self.source is not None:
            if not 0 <= self.source < graph.n_vertices:
                raise ValueError(f"source {self.source} out of range")
            return self.source
        from repro.graph.properties import best_source

        return best_source(graph)

    def init_state(self, graph: CSRGraph) -> SSSPState:
        self.validate_graph(graph)
        src = self._resolve_source(graph)
        dist = np.full(graph.n_vertices, INF_DIST, dtype=np.uint64)
        dist[src] = 0
        active = np.zeros(graph.n_vertices, dtype=bool)
        active[src] = True
        pending = np.zeros(graph.n_vertices, dtype=bool)
        return SSSPState(active=active, dist=dist, pending=pending, bucket=0)

    def step(self, graph: CSRGraph, state: SSSPState) -> None:
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        nxt = np.zeros(graph.n_vertices, dtype=bool)
        if exp.n_edges:
            dsts = graph.indices[exp.positions]
            cand = state.dist[exp.sources] + graph.weights[exp.positions].astype(np.uint64)
            old = state.dist[dsts].copy()
            # Atomic-min push, vectorized: scatter-min then diff against old.
            np.minimum.at(state.dist, dsts, cand)
            improved = dsts[state.dist[dsts] < old]
            if improved.size:
                nxt[np.unique(improved)] = True
        if self.delta is None:
            state.active = nxt
            state.iteration += 1
            return
        # Delta-stepping: improved vertices join the pending pool; only the
        # current bucket's slice runs next superstep.
        state.pending |= nxt
        threshold = np.uint64((state.bucket + 1) * self.delta)
        near = state.pending & (state.dist < threshold)
        if not near.any() and state.pending.any():
            # Frontier drained: advance to the first non-empty bucket.
            min_pending = int(state.dist[state.pending].min())
            state.bucket = min_pending // self.delta
            threshold = np.uint64((state.bucket + 1) * self.delta)
            near = state.pending & (state.dist < threshold)
        state.active = near
        state.pending &= ~near
        state.iteration += 1

    def values(self, state: SSSPState) -> np.ndarray:
        return state.dist
