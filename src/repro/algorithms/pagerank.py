"""PageRank, push-based with residuals ("PageRank-Delta").

The paper's framework is push-based (§3.1) and its PR runs dozens of
iterations with ~25–29 % of edges active per iteration (Table 1) — that is
the signature of residual-push PR, the formulation Subway and most
out-of-memory GPU frameworks use:

* every vertex carries an accumulated ``rank`` and a pending ``residual``;
* a vertex is *active* while its residual exceeds ``tol``;
* an active vertex absorbs its residual into its rank and pushes
  ``d · residual / out_degree`` to each out-neighbor's residual (atomic add).

At the fixpoint ``rank`` solves ``r = (1-d)/n + d · Σ_{u→v} r_u / deg_u`` —
the PageRank linear system with dangling mass dropped (the usual GPU
treatment).  Validation solves that exact system with scipy and compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["PageRank", "PageRankState"]


@dataclass
class PageRankState(ProgramState):
    rank: np.ndarray = None  # float64
    residual: np.ndarray = None  # float64


class PageRank(VertexProgram):
    """Residual-push PageRank with damping ``d`` and activation threshold ``tol``.

    ``tol`` is expressed relative to the uniform teleport mass ``(1-d)/n``:
    a vertex activates while ``residual > tol · (1-d)/n``.  The default 1e-3
    yields iteration counts in the paper's range (tens of supersteps) on the
    scaled datasets.
    """

    name = "PR"
    needs_weights = False
    atomics = True
    max_iterations = 500

    def __init__(self, damping: float = 0.85, tol: float = 1e-3):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tol <= 0.0:
            raise ValueError("tol must be positive")
        self.damping = damping
        self.tol = tol

    def init_state(self, graph: CSRGraph) -> PageRankState:
        n = graph.n_vertices
        teleport = (1.0 - self.damping) / max(n, 1)
        rank = np.zeros(n, dtype=np.float64)
        residual = np.full(n, teleport, dtype=np.float64)
        active = residual > self.tol * teleport if n else np.zeros(0, dtype=bool)
        return PageRankState(active=active.copy(), rank=rank, residual=residual)

    def step(self, graph: CSRGraph, state: PageRankState) -> None:
        n = graph.n_vertices
        teleport = (1.0 - self.damping) / max(n, 1)
        threshold = self.tol * teleport
        vs, counts = state.active_vertices(graph)
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        # Absorb residual into rank for every active vertex (including
        # dangling ones, whose push mass is dropped — see module docstring).
        absorbed = state.residual[vs].copy()
        state.rank[vs] += absorbed
        state.residual[vs] = 0.0
        if exp.n_edges:
            deg = np.where(counts > 0, counts, 1).astype(np.float64)
            push = self.damping * absorbed / deg
            # One pushed share per expanded edge, in the same order as the
            # frontier expansion (dangling vertices expand to zero edges).
            per_edge = np.repeat(push, counts)
            dsts = graph.indices[exp.positions]
            np.add.at(state.residual, dsts, per_edge)
        state.active = state.residual > threshold
        state.iteration += 1

    def values(self, state: PageRankState) -> np.ndarray:
        # Residual not yet absorbed still belongs to the fixpoint rank.
        return state.rank + state.residual

    def done(self, state: ProgramState) -> bool:
        return state.iteration >= self.max_iterations
