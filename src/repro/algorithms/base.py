"""The vertex-program contract.

A :class:`VertexProgram` is one algorithm under the paper's push-based
vertex-centric model (§3.1): per superstep, every *active* vertex pushes
along its out-edges; pushes may activate destinations for the next
superstep.  The program owns the numeric state (always GPU-resident in the
paper — vertex arrays are small); the *engine* owns how the edge data
reaches the GPU and is charged for it.

Engines drive the loop:

    state = prog.init_state(graph)
    while state.active.any() and not prog.done(state):
        ...account/move the edges of state.active...
        prog.step(graph, state)        # consumes state.active, replaces it

``step`` must be a pure function of (graph, state): given the same inputs it
produces the same outputs on every engine — the cross-engine equivalence
tests rely on that.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["ProgramState", "VertexProgram"]


@dataclass
class ProgramState:
    """Mutable per-run state shared by all programs.

    ``active`` is the frontier consumed by the *next* call to ``step``.
    Subclasses add the value arrays (levels, distances, labels, ranks).
    """

    active: np.ndarray
    iteration: int = 0
    #: Edges processed so far, accumulated by ``step`` (for reports).
    edges_relaxed: int = field(default=0)

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))


class VertexProgram(abc.ABC):
    """One algorithm in the push-based vertex-centric model."""

    #: Paper abbreviation (BFS/SSSP/CC/PR).
    name: str = "?"
    #: Whether edges must carry weights (doubles edge bytes; SSSP).
    needs_weights: bool = False
    #: Cost-model hint: kernel dominated by atomic scatter updates.
    atomics: bool = False
    #: Hard iteration cap (safety net; PR uses it as its budget too).
    max_iterations: int = 10_000

    @abc.abstractmethod
    def init_state(self, graph: CSRGraph) -> ProgramState:
        """Allocate value arrays and the initial frontier."""

    @abc.abstractmethod
    def step(self, graph: CSRGraph, state: ProgramState) -> None:
        """Run one superstep: consume ``state.active``, update values,
        install the next frontier, and bump ``state.iteration``."""

    @abc.abstractmethod
    def values(self, state: ProgramState) -> np.ndarray:
        """The result array (levels / distances / labels / ranks)."""

    def done(self, state: ProgramState) -> bool:
        """Termination test beyond an empty frontier."""
        return state.iteration >= self.max_iterations

    def validate_graph(self, graph: CSRGraph) -> None:
        """Raise if the graph cannot run this program."""
        if self.needs_weights and not graph.is_weighted:
            raise ValueError(f"{self.name} requires edge weights")

    def run_reference(self, graph: CSRGraph) -> np.ndarray:
        """Run the program to completion host-side (no engine, no costs).

        This is the oracle the engine tests compare against, and the
        cheapest way to get exact per-iteration frontiers for the analysis
        tooling.
        """
        self.validate_graph(graph)
        state = self.init_state(graph)
        while state.active.any() and not self.done(state):
            self.step(graph, state)
        return self.values(state)
