"""The vertex-program contract.

A :class:`VertexProgram` is one algorithm under the paper's push-based
vertex-centric model (§3.1): per superstep, every *active* vertex pushes
along its out-edges; pushes may activate destinations for the next
superstep.  The program owns the numeric state (always GPU-resident in the
paper — vertex arrays are small); the *engine* owns how the edge data
reaches the GPU and is charged for it.

Engines drive the loop:

    state = prog.init_state(graph)
    while state.active.any() and not prog.done(state):
        ...account/move the edges of state.active...
        prog.step(graph, state)        # consumes state.active, replaces it

``step`` must be a pure function of (graph, state): given the same inputs it
produces the same outputs on every engine — the cross-engine equivalence
tests rely on that.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.frontier import FrontierCache, FrontierExpansion
from repro.graph.csr import CSRGraph

__all__ = ["ProgramState", "VertexProgram"]


@dataclass
class ProgramState:
    """Mutable per-run state shared by all programs.

    ``active`` is the frontier consumed by the *next* call to ``step``.
    Subclasses add the value arrays (levels, distances, labels, ranks).

    The state also carries the per-iteration :class:`FrontierCache`: the
    engine run loop, the engine's data-movement accounting, and the
    program's ``step`` all walk the *same* active mask, so the walk is
    memoized here and happens at most once per superstep.  The cache is
    transparent — every accessor is a pure function of ``(graph, active)``
    — and is dropped on pickling (checkpoints recompute it).
    """

    active: np.ndarray
    iteration: int = 0
    #: Edges processed so far, accumulated by ``step`` (for reports).
    edges_relaxed: int = field(default=0)

    def __post_init__(self) -> None:
        self._frontier = FrontierCache()

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))

    # --------------------------------------------------- shared frontier
    def frontier(self, graph: CSRGraph) -> FrontierExpansion:
        """The expansion of the current active mask, computed at most once.

        Valid as long as ``active`` is replaced (never mutated in place)
        between supersteps — which every engine and program does.
        """
        return self._frontier.expansion(graph, self.active)

    def active_edges(self, graph: CSRGraph) -> int:
        """Out-edge count of the current active mask, computed at most once."""
        return self._frontier.edge_count(graph, self.active)

    def active_vertices(self, graph: CSRGraph):
        """``(ids, out_degrees)`` of the active vertices (memoized walk)."""
        return self._frontier.vertices(graph, self.active)

    # ------------------------------------------------------------ pickling
    def __getstate__(self):
        # The frontier cache holds derived arrays only; keep checkpoint
        # blobs lean and let a restored run rebuild it on first use.
        state = dict(self.__dict__)
        state["_frontier"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("_frontier") is None:
            self._frontier = FrontierCache()


class VertexProgram(abc.ABC):
    """One algorithm in the push-based vertex-centric model."""

    #: Paper abbreviation (BFS/SSSP/CC/PR).
    name: str = "?"
    #: Whether edges must carry weights (doubles edge bytes; SSSP).
    needs_weights: bool = False
    #: Cost-model hint: kernel dominated by atomic scatter updates.
    atomics: bool = False
    #: Hard iteration cap (safety net; PR uses it as its budget too).
    max_iterations: int = 10_000

    @abc.abstractmethod
    def init_state(self, graph: CSRGraph) -> ProgramState:
        """Allocate value arrays and the initial frontier."""

    @abc.abstractmethod
    def step(self, graph: CSRGraph, state: ProgramState) -> None:
        """Run one superstep: consume ``state.active``, update values,
        install the next frontier, and bump ``state.iteration``."""

    @abc.abstractmethod
    def values(self, state: ProgramState) -> np.ndarray:
        """The result array (levels / distances / labels / ranks)."""

    def done(self, state: ProgramState) -> bool:
        """Termination test beyond an empty frontier."""
        return state.iteration >= self.max_iterations

    def validate_graph(self, graph: CSRGraph) -> None:
        """Raise if the graph cannot run this program."""
        if self.needs_weights and not graph.is_weighted:
            raise ValueError(f"{self.name} requires edge weights")

    def run_reference(self, graph: CSRGraph) -> np.ndarray:
        """Run the program to completion host-side (no engine, no costs).

        This is the oracle the engine tests compare against, and the
        cheapest way to get exact per-iteration frontiers for the analysis
        tooling.
        """
        self.validate_graph(graph)
        state = self.init_state(graph)
        while state.active.any() and not self.done(state):
            self.step(graph, state)
        return self.values(state)
