"""Reference oracles.

Every program has an independent ground truth computed with networkx/scipy
(different code path, different algorithm), used by the test suite and by
``examples/quickstart.py`` to prove the engines compute real answers, not
just move simulated bytes around.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import UNREACHED
from repro.algorithms.sssp import INF_DIST
from repro.graph.csr import CSRGraph

__all__ = [
    "reference_bfs_levels",
    "reference_sssp_distances",
    "reference_cc_labels",
    "reference_pagerank",
    "reference_sswp_widths",
    "assert_allclose_ranks",
]


def reference_bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS levels by scipy's breadth_first_order-free BFS via sparse matvecs."""
    import networkx as nx

    g = graph.to_networkx()
    levels = np.full(graph.n_vertices, UNREACHED, dtype=np.int32)
    for v, depth in nx.single_source_shortest_path_length(g, source).items():
        levels[v] = depth
    return levels


def reference_sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra distances via scipy.sparse.csgraph (exact for uint weights)."""
    from scipy.sparse.csgraph import dijkstra

    mat = graph.to_scipy()
    d = dijkstra(mat, directed=True, indices=source)
    out = np.full(graph.n_vertices, INF_DIST, dtype=np.uint64)
    finite = np.isfinite(d)
    out[finite] = d[finite].astype(np.uint64)
    return out


def reference_cc_labels(graph: CSRGraph) -> np.ndarray:
    """Min-id component labels.

    Undirected graphs: networkx connected components.  Directed graphs:
    host-side fixpoint of the same min-label recurrence the program uses
    (see :mod:`repro.algorithms.cc`), iterated to convergence with a dense
    per-sweep minimum — an independent implementation of the same semantics.
    """
    if not graph.directed:
        import networkx as nx

        g = graph.to_networkx()
        labels = np.arange(graph.n_vertices, dtype=np.int64)
        for comp in nx.connected_components(g):
            members = np.fromiter(comp, dtype=np.int64)
            labels[members] = members.min()
        return labels

    labels = np.arange(graph.n_vertices, dtype=np.int64)
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    while True:
        prev = labels.copy()
        np.minimum.at(labels, dst, labels[src])
        if np.array_equal(prev, labels):
            return labels


def reference_pagerank(graph: CSRGraph, damping: float = 0.85) -> np.ndarray:
    """Solve the exact fixpoint system the push program converges to.

    ``r = (1-d)/n + d · Aᵀ D⁻¹ r`` with dangling mass dropped (module
    docstring of :mod:`repro.algorithms.pagerank`), solved directly with
    scipy's sparse solver.
    """
    from scipy.sparse import identity
    from scipy.sparse.linalg import spsolve

    n = graph.n_vertices
    if n == 0:
        return np.zeros(0)
    a = graph.to_scipy()
    deg = np.asarray(a.sum(axis=1)).ravel()
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    # P[u, v] = 1/deg(u) for each edge u→v; solve (I - d·Pᵀ) r = (1-d)/n.
    p = a.multiply(inv_deg[:, None]).tocsr()
    system = (identity(n, format="csr") - damping * p.T).tocsc()
    teleport = np.full(n, (1.0 - damping) / n)
    return spsolve(system, teleport)


def reference_sswp_widths(graph: CSRGraph, source: int) -> np.ndarray:
    """Widest-path widths via a dense Bellman-Ford on the max-min semiring.

    Independent oracle for :class:`repro.algorithms.sswp.SSWP`: relax every
    edge simultaneously until the fixpoint (at most |V| sweeps).
    """
    from repro.algorithms.sswp import SOURCE_WIDTH

    width = np.zeros(graph.n_vertices, dtype=np.uint64)
    width[source] = SOURCE_WIDTH
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    w = graph.weights.astype(np.uint64)
    for _ in range(graph.n_vertices):
        prev = width.copy()
        np.maximum.at(width, dst, np.minimum(width[src], w))
        if np.array_equal(prev, width):
            break
    return width


def assert_allclose_ranks(
    measured: np.ndarray, reference: np.ndarray, rtol: float = 5e-3
) -> None:
    """Assert PageRank agreement: elementwise within ``rtol`` of the reference.

    Residual-push PR stops when residuals drop below threshold, so values
    undershoot the fixpoint slightly; ``rtol`` absorbs that truncation.
    """
    denom = np.maximum(np.abs(reference), 1e-300)
    err = np.max(np.abs(measured - reference) / denom)
    if err > rtol:
        raise AssertionError(f"pagerank max relative error {err:.2e} > rtol {rtol:.0e}")
