"""Frontier expansion: from an active-vertex mask to its out-edges.

Every push-based superstep starts the same way: take the vertices marked
active this iteration and enumerate their out-edges.  This module does that
expansion fully vectorized (no per-vertex Python loop) — the classic
ranges-to-indices trick: with per-vertex CSR ranges ``[starts, ends)``,

    positions = repeat(starts, counts) + (arange(total) - repeat(cum, counts))

where ``cum`` is the exclusive prefix sum of counts.  All engines use the
same expansion, so every engine processes exactly the same edge set and
produces bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["FrontierExpansion", "expand_frontier", "active_edge_count"]


@dataclass(frozen=True)
class FrontierExpansion:
    """All out-edges of the active vertices, in CSR order.

    ``sources[i]`` is the owning vertex of edge ``positions[i]``;
    ``positions`` indexes into ``graph.indices`` / ``graph.weights``.
    """

    sources: np.ndarray  # int64, one per active edge
    positions: np.ndarray  # int64, one per active edge

    @property
    def n_edges(self) -> int:
        return self.positions.size


def expand_frontier(graph: CSRGraph, active: np.ndarray) -> FrontierExpansion:
    """Enumerate the out-edges of every vertex set in the boolean mask ``active``."""
    if active.shape != (graph.n_vertices,):
        raise ValueError(
            f"active mask shape {active.shape} != ({graph.n_vertices},)"
        )
    vs = np.nonzero(active)[0]
    starts = graph.indptr[vs]
    counts = graph.indptr[vs + 1] - starts
    nz = counts > 0
    vs, starts, counts = vs[nz], starts[nz], counts[nz]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return FrontierExpansion(sources=empty, positions=empty)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
    sources = np.repeat(vs, counts)
    return FrontierExpansion(sources=sources, positions=positions)


def active_edge_count(graph: CSRGraph, active: np.ndarray) -> int:
    """Number of out-edges of the active vertices (no materialization)."""
    vs = np.nonzero(active)[0]
    if vs.size == 0:
        return 0
    return int((graph.indptr[vs + 1] - graph.indptr[vs]).sum())
