"""Frontier expansion: from an active-vertex mask to its out-edges.

Every push-based superstep starts the same way: take the vertices marked
active this iteration and enumerate their out-edges.  This module does that
expansion fully vectorized (no per-vertex Python loop) — the classic
ranges-to-indices trick: with per-vertex CSR ranges ``[starts, ends)``,

    positions = repeat(starts, counts) + (arange(total) - repeat(cum, counts))

where ``cum`` is the exclusive prefix sum of counts.  All engines use the
same expansion, so every engine processes exactly the same edge set and
produces bit-identical results.

Within one engine iteration the same mask is walked several times — the run
loop counts its edges for telemetry, the engine's data-movement accounting
counts them again, and the program's ``step`` finally materializes the full
expansion.  :class:`FrontierCache` memoizes that work per ``(graph, mask)``
pair so each walk happens at most once per iteration (the
``state.frontier()`` / ``state.active_edges()`` API on
:class:`~repro.algorithms.base.ProgramState` fronts it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "FrontierExpansion",
    "FrontierCache",
    "expand_frontier",
    "active_edge_count",
    "numba_walk_enabled",
]

#: Set to ``1`` to compile the expansion walk with numba (needs the
#: ``[speed]`` extra).  Off by default: the compiled walk is opt-in and the
#: pure-NumPy path below is always the fallback — with bit-identical
#: outputs, which the oracle test pins.
_NUMBA_ENV = "REPRO_NUMBA"


def _fill_expansion(vs, starts, counts, sources, positions) -> None:
    """The expansion walk as a scalar kernel (what numba compiles).

    Writes ``sources``/``positions`` in CSR order — the same int64 values
    the vectorized repeat/arange path produces, by construction.
    """
    k = 0
    for i in range(vs.size):
        v = vs[i]
        s = starts[i]
        for j in range(counts[i]):
            sources[k] = v
            positions[k] = s + j
            k += 1


def _load_numba_fill():
    """Compile the walk when opted in *and* numba is importable, else None."""
    if os.environ.get(_NUMBA_ENV, "").lower() not in ("1", "true", "yes", "on"):
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba.njit(cache=True)(_fill_expansion)


_numba_fill = _load_numba_fill()


def numba_walk_enabled() -> bool:
    """Whether the compiled frontier walk is active in this process."""
    return _numba_fill is not None


@dataclass(frozen=True)
class FrontierExpansion:
    """All out-edges of the active vertices, in CSR order.

    ``sources[i]`` is the owning vertex of edge ``positions[i]``;
    ``positions`` indexes into ``graph.indices`` / ``graph.weights``.
    """

    sources: np.ndarray  # int64, one per active edge
    positions: np.ndarray  # int64, one per active edge

    @property
    def n_edges(self) -> int:
        return self.positions.size


def _walk_mask(graph: CSRGraph, active: np.ndarray):
    """The per-mask walk shared by counting and expansion.

    Returns ``(vs, starts, counts)`` over *all* set vertices (zero-degree
    ones included — PageRank needs them for its dangling-mass accounting).
    """
    vs = np.nonzero(active)[0]
    starts = graph.indptr[vs]
    counts = graph.indptr[vs + 1] - starts
    return vs, starts, counts


def _expand(vs: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> FrontierExpansion:
    """Materialize the expansion from a mask walk's intermediates."""
    nz = counts > 0
    vs, starts, counts = vs[nz], starts[nz], counts[nz]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return FrontierExpansion(sources=empty, positions=empty)
    if _numba_fill is not None:
        sources = np.empty(total, dtype=np.int64)
        positions = np.empty(total, dtype=np.int64)
        _numba_fill(np.ascontiguousarray(vs, dtype=np.int64),
                    np.ascontiguousarray(starts, dtype=np.int64),
                    np.ascontiguousarray(counts, dtype=np.int64),
                    sources, positions)
        return FrontierExpansion(sources=sources, positions=positions)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
    sources = np.repeat(vs, counts)
    return FrontierExpansion(sources=sources, positions=positions)


def expand_frontier(graph: CSRGraph, active: np.ndarray) -> FrontierExpansion:
    """Enumerate the out-edges of every vertex set in the boolean mask ``active``."""
    if active.shape != (graph.n_vertices,):
        raise ValueError(
            f"active mask shape {active.shape} != ({graph.n_vertices},)"
        )
    return _expand(*_walk_mask(graph, active))


def active_edge_count(graph: CSRGraph, active: np.ndarray) -> int:
    """Number of out-edges of the active vertices (no materialization)."""
    vs = np.nonzero(active)[0]
    if vs.size == 0:
        return 0
    return int((graph.indptr[vs + 1] - graph.indptr[vs]).sum())


class FrontierCache:
    """Memoized frontier work for one ``(graph, mask)`` pair at a time.

    Keys on *object identity*: the cache is valid only while the caller
    keeps handing in the very same graph and mask objects, and the mask
    must not be mutated in place (engines and programs replace the active
    mask wholesale each superstep, so both hold in practice).  A different
    graph or mask simply recomputes — correctness never depends on a hit.
    """

    __slots__ = ("_graph", "_mask", "_vs", "_starts", "_counts",
                 "_count", "_expansion")

    def __init__(self) -> None:
        self._graph = None
        self._mask = None
        self._vs = self._starts = self._counts = None
        self._count: int | None = None
        self._expansion: FrontierExpansion | None = None

    def _walk(self, graph: CSRGraph, active: np.ndarray):
        if self._graph is not graph or self._mask is not active:
            if active.shape != (graph.n_vertices,):
                raise ValueError(
                    f"active mask shape {active.shape} != ({graph.n_vertices},)"
                )
            self._vs, self._starts, self._counts = _walk_mask(graph, active)
            self._graph, self._mask = graph, active
            self._count = None
            self._expansion = None
        return self._vs, self._starts, self._counts

    def vertices(self, graph: CSRGraph, active: np.ndarray):
        """``(vs, out_degrees)`` of the set vertices, zero-degree included."""
        vs, _, counts = self._walk(graph, active)
        return vs, counts

    def edge_count(self, graph: CSRGraph, active: np.ndarray) -> int:
        """Memoized :func:`active_edge_count`."""
        if self._expansion is not None and self._graph is graph \
                and self._mask is active:
            return self._expansion.n_edges
        _, _, counts = self._walk(graph, active)
        if self._count is None:
            self._count = int(counts.sum())
        return self._count

    def expansion(self, graph: CSRGraph, active: np.ndarray) -> FrontierExpansion:
        """Memoized :func:`expand_frontier`."""
        vs, starts, counts = self._walk(graph, active)
        if self._expansion is None:
            self._expansion = _expand(vs, starts, counts)
        return self._expansion
