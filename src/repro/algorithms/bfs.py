"""Breadth-first search.

Level-synchronous push BFS: the frontier pushes ``level + 1`` to every
unvisited out-neighbor.  Each vertex's edges are read in exactly one
iteration — the reason the paper finds "basically no data reuse in the
Static Region in BFS" (§4.3) yet still measures a saving (the static slice
needs no transfer at all the one time it *is* read).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["BFS", "BFSState", "UNREACHED"]

#: Level marker for vertices never reached.
UNREACHED = np.int32(-1)


@dataclass
class BFSState(ProgramState):
    levels: np.ndarray = None  # int32, -1 = unreached


class BFS(VertexProgram):
    """BFS from ``source`` (default: chosen by the engine via ``best_source``)."""

    name = "BFS"
    needs_weights = False
    atomics = False

    def __init__(self, source: int | None = None):
        self.source = source

    def _resolve_source(self, graph: CSRGraph) -> int:
        if self.source is not None:
            if not 0 <= self.source < graph.n_vertices:
                raise ValueError(f"source {self.source} out of range")
            return self.source
        from repro.graph.properties import best_source

        return best_source(graph)

    def init_state(self, graph: CSRGraph) -> BFSState:
        src = self._resolve_source(graph)
        levels = np.full(graph.n_vertices, UNREACHED, dtype=np.int32)
        levels[src] = 0
        active = np.zeros(graph.n_vertices, dtype=bool)
        active[src] = True
        return BFSState(active=active, levels=levels)

    def step(self, graph: CSRGraph, state: BFSState) -> None:
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        nxt = np.zeros(graph.n_vertices, dtype=bool)
        if exp.n_edges:
            dsts = graph.indices[exp.positions]
            fresh = dsts[state.levels[dsts] == UNREACHED]
            if fresh.size:
                fresh = np.unique(fresh)
                state.levels[fresh] = state.iteration + 1
                nxt[fresh] = True
        state.active = nxt
        state.iteration += 1

    def values(self, state: BFSState) -> np.ndarray:
        return state.levels
