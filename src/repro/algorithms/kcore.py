"""k-core decomposition by peeling — a sixth algorithm for the framework.

Coreness of a vertex: the largest k such that it belongs to a subgraph
where every vertex has degree ≥ k.  The classic peeling computation maps
cleanly onto the push model: the frontier is the set of vertices being
*removed* this superstep, and each removal pushes a degree decrement to
its neighbors — possibly knocking them below the threshold and into the
next frontier.  When a level drains, the threshold k advances.

Like CC, it is defined on undirected graphs (run directed graphs through
``graph.symmetrized()``).  Data-movement-wise it is interesting for
out-of-memory engines: activity starts at the sparse fringe (low-degree
vertices) and ends at the dense core — the reverse of a BFS's profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["KCore", "KCoreState"]


@dataclass
class KCoreState(ProgramState):
    remaining_degree: np.ndarray = None  # int64
    core: np.ndarray = None  # int64, valid once removed
    removed: np.ndarray = None  # bool
    k: int = 1


class KCore(VertexProgram):
    """Peeling k-core decomposition (undirected graphs)."""

    name = "KCORE"
    needs_weights = False
    atomics = True  # degree decrements are scatter-atomics

    def validate_graph(self, graph: CSRGraph) -> None:
        super().validate_graph(graph)
        if graph.directed:
            raise ValueError(
                "k-core is defined on undirected graphs; use graph.symmetrized()"
            )

    def _advance(self, state: KCoreState) -> None:
        """Move k forward until some unremoved vertex falls below it."""
        alive = ~state.removed
        if not alive.any():
            state.active = np.zeros(state.removed.size, dtype=bool)
            return
        while True:
            below = alive & (state.remaining_degree < state.k)
            if below.any():
                state.active = below
                return
            state.k += 1

    def init_state(self, graph: CSRGraph) -> KCoreState:
        self.validate_graph(graph)
        n = graph.n_vertices
        state = KCoreState(
            active=np.zeros(n, dtype=bool),
            remaining_degree=graph.out_degree().astype(np.int64).copy(),
            core=np.zeros(n, dtype=np.int64),
            removed=np.zeros(n, dtype=bool),
            k=1,
        )
        if n:
            self._advance(state)
        return state

    def step(self, graph: CSRGraph, state: KCoreState) -> None:
        removing = state.active
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        # A vertex removed while the threshold is k has coreness k - 1.
        state.core[removing] = state.k - 1
        state.removed |= removing
        if exp.n_edges:
            dsts = graph.indices[exp.positions]
            dec = np.bincount(dsts, minlength=graph.n_vertices)
            state.remaining_degree -= dec
        # Newly sub-threshold survivors peel next; else advance k.
        nxt = ~state.removed & (state.remaining_degree < state.k)
        if nxt.any():
            state.active = nxt
        else:
            self._advance(state)
        state.iteration += 1

    def values(self, state: KCoreState) -> np.ndarray:
        return state.core
