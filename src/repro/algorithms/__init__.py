"""Push-based vertex-centric graph algorithms.

The paper evaluates BFS, SSSP, CC and PageRank under a push-based
vertex-centric model with all vertices resident in GPU memory (§3.1).  The
programs here implement that model exactly — level-synchronous supersteps
over an *active* frontier, pushing along out-edges — in fully vectorized
NumPy, and are shared by every engine: engines decide how the active edges
reach the (simulated) GPU, the programs decide what the edges mean.
"""

from repro.algorithms.base import VertexProgram, ProgramState
from repro.algorithms.frontier import expand_frontier, active_edge_count, FrontierExpansion
from repro.algorithms.bfs import BFS
from repro.algorithms.sssp import SSSP
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sswp import SSWP
from repro.algorithms.pagerank_pull import PageRankPull
from repro.algorithms.kcore import KCore

__all__ = [
    "VertexProgram",
    "ProgramState",
    "expand_frontier",
    "active_edge_count",
    "FrontierExpansion",
    "BFS",
    "SSSP",
    "ConnectedComponents",
    "PageRank",
    "SSWP",
    "PageRankPull",
    "KCore",
    "make_program",
    "PROGRAMS",
]

#: Factory registry keyed by the paper's algorithm abbreviations.
PROGRAMS = {
    "BFS": BFS,
    "SSSP": SSSP,
    "CC": ConnectedComponents,
    "PR": PageRank,
    # Extensions beyond the paper's four: widest path (max-min semiring)
    # and pull-mode PageRank (run it on graph.reverse(); see its module
    # docstring for why the paper's frameworks push instead).
    "SSWP": SSWP,
    "PR-PULL": PageRankPull,
    "KCORE": KCore,
}


def make_program(name: str, **kwargs) -> VertexProgram:
    """Instantiate a program by its abbreviation (BFS/SSSP/CC/PR, or the
    SSWP / PR-PULL extensions)."""
    try:
        cls = PROGRAMS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown algorithm {name!r}; choose from {sorted(PROGRAMS)}")
    return cls(**kwargs)
