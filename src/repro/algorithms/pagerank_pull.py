"""Pull-based PageRank — the road not taken in §3.1, implemented.

The paper "chooses the push-based vertex-centric programming model"; this
program is the classic alternative: topology-driven *pull* (Jacobi power
iteration), where every vertex recomputes its rank each round by gathering
``rank/out_degree`` from its in-neighbors.  Same fixpoint as
:class:`~repro.algorithms.pagerank.PageRank` (the validation oracle is
shared), but every vertex is active every iteration — so an out-of-memory
engine must stream the *whole* edge array per round.  Running it under the
engines quantifies exactly why out-of-memory frameworks push:
``benchmarks/bench_push_vs_pull.py``.

Run it on the **reversed** graph (``graph.reverse()``): a pull over
in-edges is a scan over the reverse CSR's out-edges, which is the array an
engine would stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["PageRankPull", "PageRankPullState"]


@dataclass
class PageRankPullState(ProgramState):
    rank: np.ndarray = None  # float64
    #: Original out-degrees (in-degrees of the reversed graph), the
    #: normalization of each pulled contribution.
    push_degree: np.ndarray = None


class PageRankPull(VertexProgram):
    """Topology-driven pull PR with damping ``d``; stops at max-delta < tol.

    ``tol`` is relative to the uniform teleport mass, like the push
    variant's.  The input graph must be the *reverse* of the graph whose
    PageRank is wanted.
    """

    name = "PR-PULL"
    needs_weights = False
    atomics = False  # gather, no scatter contention
    max_iterations = 500

    def __init__(self, damping: float = 0.85, tol: float = 1e-3):
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tol <= 0.0:
            raise ValueError("tol must be positive")
        self.damping = damping
        self.tol = tol

    def init_state(self, reversed_graph: CSRGraph) -> PageRankPullState:
        n = reversed_graph.n_vertices
        rank = np.full(n, 1.0 / max(n, 1), dtype=np.float64)
        # Original out-degree of u = number of reversed arcs arriving at u.
        push_degree = np.bincount(
            reversed_graph.indices, minlength=n
        ).astype(np.float64)
        active = np.ones(n, dtype=bool) if n else np.zeros(0, dtype=bool)
        return PageRankPullState(active=active, rank=rank, push_degree=push_degree)

    def step(self, reversed_graph: CSRGraph, state: PageRankPullState) -> None:
        n = reversed_graph.n_vertices
        teleport = (1.0 - self.damping) / max(n, 1)
        exp = state.frontier(reversed_graph)
        state.edges_relaxed += exp.n_edges
        new_rank = np.full(n, teleport, dtype=np.float64)
        if exp.n_edges:
            srcs = reversed_graph.indices[exp.positions]  # original sources
            contrib = state.rank[srcs] / np.maximum(state.push_degree[srcs], 1.0)
            np.add.at(new_rank, exp.sources, self.damping * contrib)
        delta = float(np.max(np.abs(new_rank - state.rank))) if n else 0.0
        state.rank = new_rank
        # Topology-driven: everyone stays active until global convergence.
        if delta <= self.tol * teleport:
            state.active = np.zeros(n, dtype=bool)
        else:
            state.active = np.ones(n, dtype=bool)
        state.iteration += 1

    def values(self, state: PageRankPullState) -> np.ndarray:
        return state.rank
