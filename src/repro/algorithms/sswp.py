"""Single-source widest path (bottleneck shortest path).

An extension algorithm demonstrating the framework's generality: the same
push-based frontier machinery computes the *widest* path — the maximum,
over paths from the source, of the minimum edge weight along the path
(max-min semiring instead of SSSP's min-plus).  Used in network-capacity
and routing analytics; data-movement behaviour is SSSP-like (weighted
edges, frontier-driven relaxation), so it exercises every engine the same
way the paper's four algorithms do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProgramState, VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["SSWP", "SSWPState", "SOURCE_WIDTH"]

#: Width of the source vertex ("infinite" capacity into itself).
SOURCE_WIDTH = np.uint64(2**63)


@dataclass
class SSWPState(ProgramState):
    width: np.ndarray = None  # uint64, 0 = unreached


class SSWP(VertexProgram):
    """Widest path from ``source`` (default: the max-degree hub)."""

    name = "SSWP"
    needs_weights = True
    atomics = True

    def __init__(self, source: int | None = None):
        self.source = source

    def _resolve_source(self, graph: CSRGraph) -> int:
        if self.source is not None:
            if not 0 <= self.source < graph.n_vertices:
                raise ValueError(f"source {self.source} out of range")
            return self.source
        from repro.graph.properties import best_source

        return best_source(graph)

    def init_state(self, graph: CSRGraph) -> SSWPState:
        self.validate_graph(graph)
        src = self._resolve_source(graph)
        width = np.zeros(graph.n_vertices, dtype=np.uint64)
        width[src] = SOURCE_WIDTH
        active = np.zeros(graph.n_vertices, dtype=bool)
        active[src] = True
        return SSWPState(active=active, width=width)

    def step(self, graph: CSRGraph, state: SSWPState) -> None:
        exp = state.frontier(graph)
        state.edges_relaxed += exp.n_edges
        nxt = np.zeros(graph.n_vertices, dtype=bool)
        if exp.n_edges:
            dsts = graph.indices[exp.positions]
            # Path width through u over edge (u, v): min(width[u], w(u, v)).
            cand = np.minimum(
                state.width[exp.sources],
                graph.weights[exp.positions].astype(np.uint64),
            )
            old = state.width[dsts].copy()
            np.maximum.at(state.width, dsts, cand)
            widened = dsts[state.width[dsts] > old]
            if widened.size:
                nxt[np.unique(widened)] = True
        state.active = nxt
        state.iteration += 1

    def values(self, state: SSWPState) -> np.ndarray:
        return state.width
