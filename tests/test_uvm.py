"""Tests for the UVM demand-paging model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.uvm import UVMMemory


def make(managed_pages=100, capacity_pages=10, page=64):
    return UVMMemory(managed_pages * page, capacity_pages * page, page_size=page)


class TestBasics:
    def test_geometry(self):
        u = make(100, 10, page=64)
        assert u.n_pages == 100
        assert u.capacity_pages == 10

    def test_partial_tail_page(self):
        u = UVMMemory(100, 1000, page_size=64)
        assert u.n_pages == 2  # 100 bytes → 2 pages of 64

    def test_empty_managed(self):
        u = UVMMemory(0, 1000)
        assert u.n_pages == 0
        out = u.touch(np.array([], dtype=np.int64))
        assert out.n_faults == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            UVMMemory(-1, 10)
        with pytest.raises(ValueError):
            UVMMemory(10, 10, page_size=0)

    def test_pages_of_byte_range(self):
        u = make(page=64)
        assert list(u.pages_of_byte_range(0, 64)) == [0]
        assert list(u.pages_of_byte_range(0, 65)) == [0, 1]
        assert list(u.pages_of_byte_range(63, 129)) == [0, 1, 2]
        assert u.pages_of_byte_range(10, 10).size == 0

    def test_out_of_range_page_rejected(self):
        u = make(10, 5)
        with pytest.raises(IndexError):
            u.touch(np.array([10]))


class TestFaulting:
    def test_first_touch_faults(self):
        u = make()
        out = u.touch(np.arange(5))
        assert out.n_faults == 5
        assert out.bytes_migrated == 5 * u.page_size
        assert u.resident_pages == 5

    def test_second_touch_hits(self):
        u = make()
        u.touch(np.arange(5))
        out = u.touch(np.arange(5))
        assert out.n_faults == 0
        assert out.n_evicted == 0

    def test_duplicates_coalesce(self):
        u = make()
        out = u.touch(np.array([3, 3, 3, 4]))
        assert out.n_touched == 2
        assert out.n_faults == 2

    def test_lru_evicts_oldest(self):
        u = make(100, 3)
        u.touch(np.array([0]))
        u.touch(np.array([1]))
        u.touch(np.array([2]))
        u.touch(np.array([0]))  # refresh page 0
        out = u.touch(np.array([5]))  # must evict page 1 (oldest)
        assert out.n_evicted == 1
        assert u.is_resident(np.array([0]))[0]
        assert not u.is_resident(np.array([1]))[0]

    def test_capacity_never_exceeded(self):
        u = make(100, 4)
        for i in range(0, 100, 7):
            u.touch(np.arange(i, min(i + 3, 100)))
            assert u.resident_pages <= u.capacity_pages


class TestCyclicScanThrash:
    def test_scan_larger_than_memory_always_faults(self):
        """The Fig. 1 pathology: cyclic scan + LRU = 100 % miss."""
        u = make(20, 10)
        for _ in range(3):
            out = u.touch(np.arange(20))
            assert out.n_faults == 20

    def test_scan_fitting_in_memory_hits(self):
        u = make(20, 10)
        u.touch(np.arange(8))
        out = u.touch(np.arange(8))
        assert out.n_faults == 0

    def test_tail_survives_scan(self):
        u = make(20, 10)
        u.touch(np.arange(20))
        assert u.is_resident(np.arange(10, 20)).all()
        assert not u.is_resident(np.arange(0, 10)).any()


class TestPinning:
    def test_pin_prefetches(self):
        u = make(100, 10)
        moved = u.advise_pin(np.arange(4))
        assert moved == 4 * u.page_size
        assert u.is_resident(np.arange(4)).all()

    def test_pin_idempotent(self):
        u = make(100, 10)
        u.advise_pin(np.arange(4))
        assert u.advise_pin(np.arange(4)) == 0

    def test_pinned_never_evicted(self):
        u = make(100, 5)
        u.advise_pin(np.arange(3))
        for i in range(3, 60):
            u.touch(np.array([i]))
        assert u.is_resident(np.arange(3)).all()

    def test_pin_beyond_capacity_rejected(self):
        u = make(100, 5)
        with pytest.raises(ValueError):
            u.advise_pin(np.arange(6))

    def test_pinned_pages_hit_during_thrash(self):
        u = make(30, 10)
        u.advise_pin(np.arange(4))
        out = u.touch(np.arange(30))
        # Only the 26 unpinned pages fault; the pinned prefix hits.
        assert out.n_faults == 26

    def test_pin_out_of_range(self):
        u = make(10, 5)
        with pytest.raises(IndexError):
            u.advise_pin(np.array([99]))


@given(
    st.lists(
        st.lists(st.integers(0, 49), min_size=1, max_size=30),
        min_size=1,
        max_size=25,
    )
)
def test_property_residency_invariants(touch_batches):
    """Any touch sequence keeps residency within capacity and consistent."""
    u = UVMMemory(50 * 64, 12 * 64, page_size=64)
    for batch in touch_batches:
        out = u.touch(np.array(batch, dtype=np.int64))
        assert out.n_faults >= 0 and out.n_evicted >= 0
        assert u.resident_pages <= u.capacity_pages
        assert u.resident_pages == int(np.count_nonzero(u._resident))
        assert out.bytes_migrated == out.n_faults * u.page_size


class TestPrefetch:
    def test_prefetch_migrates_missing(self):
        u = make(100, 20)
        moved = u.prefetch(np.arange(5))
        assert moved == 5 * u.page_size
        assert u.is_resident(np.arange(5)).all()

    def test_prefetch_skips_resident(self):
        u = make(100, 20)
        u.touch(np.arange(5))
        assert u.prefetch(np.arange(5)) == 0

    def test_prefetch_backs_off_under_pressure(self):
        u = make(100, 5)
        u.advise_pin(np.arange(4))
        moved = u.prefetch(np.arange(10, 20))
        # Only one unpinned slot: at most one page prefetched, never a raise.
        assert moved <= u.page_size
        assert u.resident_pages <= u.capacity_pages

    def test_prefetch_out_of_range(self):
        u = make(10, 5)
        with pytest.raises(IndexError):
            u.prefetch(np.array([99]))

    def test_prefetch_empty(self):
        u = make(10, 5)
        assert u.prefetch(np.array([], dtype=np.int64)) == 0
