"""Behavioural tests for the three baseline engines."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.algorithms.validate import reference_bfs_levels
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.engines.uvm_engine import UVMEngine
from repro.graph.properties import best_source
from repro.gpusim.device import GPUSpec
from repro.gpusim.memory import GPUOutOfMemory

from conftest import TEST_SCALE, make_spec_for


def bfs_for(graph):
    return make_program("BFS", source=best_source(graph))


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", [PartitionEngine, UVMEngine, SubwayEngine])
    def test_values_correct(self, cls, small_social):
        spec = make_spec_for(small_social)
        res = cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))
        ref = reference_bfs_levels(small_social, best_source(small_social))
        assert np.array_equal(res.values, ref)

    @pytest.mark.parametrize("cls", [PartitionEngine, UVMEngine, SubwayEngine])
    def test_deterministic(self, cls, small_social):
        spec = make_spec_for(small_social)
        a = cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))
        b = cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.metrics.bytes_h2d == b.metrics.bytes_h2d

    @pytest.mark.parametrize("cls", [PartitionEngine, UVMEngine, SubwayEngine])
    def test_time_and_bytes_positive(self, cls, small_social):
        spec = make_spec_for(small_social)
        res = cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))
        assert res.elapsed_seconds > 0
        assert res.metrics.bytes_h2d > 0
        assert res.iterations > 1

    @pytest.mark.parametrize("cls", [PartitionEngine, UVMEngine, SubwayEngine])
    def test_per_iteration_records(self, cls, small_social):
        spec = make_spec_for(small_social)
        res = cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))
        assert len(res.per_iteration) == res.iterations
        for rec in res.per_iteration:
            assert rec.t_end >= rec.t_start
            assert rec.n_active_vertices > 0

    @pytest.mark.parametrize("cls", [PartitionEngine, UVMEngine, SubwayEngine])
    def test_oom_when_vertex_state_does_not_fit(self, cls, small_social):
        spec = GPUSpec(memory_bytes=1024)
        with pytest.raises(GPUOutOfMemory):
            cls(spec=spec, data_scale=TEST_SCALE).run(small_social, bfs_for(small_social))

    def test_invalid_data_scale(self, small_social):
        with pytest.raises(ValueError):
            SubwayEngine(data_scale=0.0)
        with pytest.raises(ValueError):
            SubwayEngine(data_scale=1.5)


class TestPartitionEngine:
    def test_moves_whole_partitions(self, small_social):
        """PT re-ships touched partitions every iteration — bytes ≫ active."""
        spec = make_spec_for(small_social, edge_fraction=0.4)
        pt = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        sub = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert pt.metrics.bytes_h2d > 2 * sub.metrics.bytes_h2d

    def test_reports_partition_count(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.3)
        res = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert res.extra["n_partitions"] >= 3

    def test_single_partition_when_fits(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=1.5)
        res = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert res.extra["n_partitions"] == 1


class TestSubwayEngine:
    def test_transfers_only_active_edges(self, small_social):
        """Subway's total BFS traffic ≈ one pass over reached edges."""
        spec = make_spec_for(small_social)
        res = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        # Per-edge-once property of BFS: processing bytes ≲ 1.3× dataset.
        assert res.transfer_over_dataset < 1.5

    def test_gpu_idles_through_gather(self, small_social):
        spec = make_spec_for(small_social)
        res = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert res.gpu_idle_fraction > 0.3  # §2.2's sequential-pipeline idle

    def test_avg_iteration_bytes_reported(self, small_social):
        spec = make_spec_for(small_social)
        res = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert res.extra["avg_iteration_bytes"] > 0
        # Table 2's point: far below device memory (paper scale).
        assert res.extra["avg_iteration_bytes"] < spec.memory_bytes / TEST_SCALE

    def test_rounds_when_staging_overflows(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.02)
        res = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        # Iteration 1 activates everything: must split into rounds yet
        # still finish correctly.
        assert res.iterations > 1


class TestUVMEngine:
    def test_faults_counted(self, small_social):
        spec = make_spec_for(small_social)
        res = UVMEngine(spec=spec, data_scale=TEST_SCALE, pin_fraction=0.0).run(
            small_social, bfs_for(small_social)
        )
        assert res.metrics.page_faults > 0
        assert res.metrics.fault_batches > 0
        assert res.metrics.pages_migrated == res.metrics.page_faults

    def test_pinning_reduces_faults(self, small_social):
        spec = make_spec_for(small_social)
        prog = make_program("CC")
        none = UVMEngine(spec=spec, data_scale=TEST_SCALE, pin_fraction=0.0).run(
            small_social, prog
        )
        pinned = UVMEngine(spec=spec, data_scale=TEST_SCALE, pin_fraction=0.5).run(
            small_social, make_program("CC")
        )
        assert pinned.metrics.page_faults < none.metrics.page_faults

    def test_invalid_pin_fraction(self):
        with pytest.raises(ValueError):
            UVMEngine(pin_fraction=1.5)

    def test_trace_hook_records(self, small_social):
        from repro.analysis.traces import AccessTrace

        spec = make_spec_for(small_social)
        eng = UVMEngine(spec=spec, data_scale=TEST_SCALE)
        eng.trace = AccessTrace()
        res = eng.run(small_social, bfs_for(small_social))
        assert eng.trace.n_iterations == res.iterations

    def test_page_geometry_scaled(self, small_social):
        spec = make_spec_for(small_social)
        eng = UVMEngine(spec=spec, data_scale=TEST_SCALE)
        eng.run(small_social, bfs_for(small_social))
        assert eng._uvm.page_size == int(spec.uvm_page_size * TEST_SCALE)


class TestUVMPrefetch:
    def test_sequential_prefetch_reduces_faults_on_local_graph(self, small_web):
        """The wavefront of an id-local BFS touches adjacent pages next
        iteration — sequential prefetch turns those faults into hits."""
        from repro.gpusim.device import GPUSpec
        from dataclasses import replace

        base = make_spec_for(small_web, edge_fraction=0.6)
        spec_pf = replace(base, uvm_prefetch_pages=4)
        prog = lambda: bfs_for(small_web)
        plain = UVMEngine(spec=base, data_scale=TEST_SCALE, pin_fraction=0.0).run(
            small_web, prog()
        )
        prefetched = UVMEngine(
            spec=spec_pf, data_scale=TEST_SCALE, pin_fraction=0.0
        ).run(small_web, prog())
        assert prefetched.metrics.page_faults < plain.metrics.page_faults
        assert np.array_equal(prefetched.values, plain.values)

    def test_prefetch_counts_bytes(self, small_web):
        from dataclasses import replace

        base = make_spec_for(small_web, edge_fraction=0.6)
        spec_pf = replace(base, uvm_prefetch_pages=8)
        res = UVMEngine(spec=spec_pf, data_scale=TEST_SCALE, pin_fraction=0.0).run(
            small_web, bfs_for(small_web)
        )
        # Prefetched bytes ride along in H2D accounting.
        assert res.metrics.bytes_h2d > 0
