"""Tests for the SSWP (widest path) extension algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import SSWP, make_program
from repro.algorithms.sswp import SOURCE_WIDTH
from repro.algorithms.validate import reference_sswp_widths
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.properties import best_source


class TestSSWP:
    def test_registered(self):
        assert make_program("SSWP").name == "SSWP"

    def test_requires_weights(self, tiny_path):
        with pytest.raises(ValueError):
            SSWP(source=0).run_reference(tiny_path)

    def test_path_bottleneck(self):
        g = path_graph(4).with_weights([5, 2, 9])
        w = SSWP(source=0).run_reference(g)
        assert w[0] == SOURCE_WIDTH
        assert list(w[1:]) == [5, 2, 2]  # min edge weight along the path

    def test_wider_detour_wins(self):
        # 0→2 direct width 1; 0→1→2 width min(5, 4) = 4.
        g = CSRGraph.from_edges([0, 0, 1], [2, 1, 2], 3, weights=[1, 5, 4])
        w = SSWP(source=0).run_reference(g)
        assert w[2] == 4

    def test_unreached_is_zero(self):
        g = path_graph(4).with_weights([1, 1, 1])
        w = SSWP(source=2).run_reference(g)
        assert w[0] == 0 and w[1] == 0

    def test_invalid_source(self, tiny_path):
        with pytest.raises(ValueError):
            SSWP(source=99).init_state(tiny_path.with_random_weights())

    def test_against_reference(self, small_social):
        g = small_social.with_random_weights(seed=8)
        src = best_source(g)
        assert np.array_equal(
            SSWP(source=src).run_reference(g), reference_sswp_widths(g, src)
        )

    @given(st.integers(0, 500))
    @settings(max_examples=15)
    def test_property_random_graphs(self, seed):
        g = erdos_renyi_graph(40, 180, seed=seed).with_random_weights(seed=seed)
        src = seed % g.n_vertices
        assert np.array_equal(
            SSWP(source=src).run_reference(g), reference_sswp_widths(g, src)
        )

    @given(st.integers(0, 500))
    @settings(max_examples=10)
    def test_property_width_bounded_by_max_weight(self, seed):
        g = erdos_renyi_graph(30, 120, seed=seed).with_random_weights(
            low=1, high=7, seed=seed
        )
        src = 0
        w = SSWP(source=src).run_reference(g)
        reached = (w > 0) & (np.arange(g.n_vertices) != src)
        if reached.any():
            assert w[reached].max() < 7
            assert w[reached].min() >= 1


class TestSSWPOnEngines:
    def test_runs_under_every_engine(self, small_social):
        from conftest import TEST_SCALE, make_spec_for
        from repro.core.ascetic import AsceticEngine
        from repro.engines.partition_based import PartitionEngine
        from repro.engines.subway import SubwayEngine
        from repro.engines.uvm_engine import UVMEngine

        g = small_social.with_random_weights(seed=4)
        src = best_source(g)
        ref = reference_sswp_widths(g, src)
        spec = make_spec_for(g)
        for cls in (PartitionEngine, UVMEngine, SubwayEngine, AsceticEngine):
            res = cls(spec=spec, data_scale=TEST_SCALE).run(
                g, make_program("SSWP", source=src)
            )
            assert np.array_equal(res.values, ref), cls.name
