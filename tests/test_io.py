"""Tests for graph serialization."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import load_csr, load_edgelist, save_csr, save_edgelist


@pytest.fixture()
def weighted_graph():
    return CSRGraph.from_edges(
        [0, 0, 1, 3], [1, 2, 2, 0], 4, weights=[5, 6, 7, 8], name="wg"
    )


class TestNpz:
    def test_roundtrip(self, tmp_path, small_rmat):
        p = tmp_path / "g.npz"
        save_csr(small_rmat, p)
        g = load_csr(p)
        assert np.array_equal(g.indptr, small_rmat.indptr)
        assert np.array_equal(g.indices, small_rmat.indices)
        assert g.directed == small_rmat.directed
        assert g.name == small_rmat.name

    def test_roundtrip_weighted(self, tmp_path, weighted_graph):
        p = tmp_path / "g.npz"
        save_csr(weighted_graph, p)
        g = load_csr(p)
        assert np.array_equal(g.weights, weighted_graph.weights)

    def test_unweighted_has_no_weights(self, tmp_path, tiny_path):
        p = tmp_path / "g.npz"
        save_csr(tiny_path, p)
        assert load_csr(p).weights is None


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_rmat):
        p = tmp_path / "g.txt"
        save_edgelist(small_rmat, p)
        g = load_edgelist(p, directed=True, n_vertices=small_rmat.n_vertices)
        assert g.n_edges == small_rmat.n_edges
        a = sorted(zip(small_rmat.edge_sources().tolist(), small_rmat.indices.tolist()))
        b = sorted(zip(g.edge_sources().tolist(), g.indices.tolist()))
        assert a == b

    def test_roundtrip_weighted(self, tmp_path, weighted_graph):
        p = tmp_path / "g.txt"
        save_edgelist(weighted_graph, p)
        g = load_edgelist(p, weighted=True)
        assert sorted(g.weights.tolist()) == sorted(weighted_graph.weights.tolist())

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n% konect header\n0 1\n1 2\n")
        g = load_edgelist(p)
        assert g.n_edges == 2
        assert g.n_vertices == 3

    def test_weighted_missing_column_raises(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        with pytest.raises(ValueError):
            load_edgelist(p, weighted=True)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# nothing\n")
        g = load_edgelist(p, n_vertices=4)
        assert g.n_edges == 0
        assert g.n_vertices == 4

    def test_n_vertices_inferred(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 7\n")
        assert load_edgelist(p).n_vertices == 8


class TestFuzzRoundTrip:
    def test_property_npz_round_trip(self, tmp_path):
        from hypothesis import given, settings, strategies as st
        from repro.graph.generators import erdos_renyi_graph

        # hypothesis-free fuzz (tmp_path fixture + @given do not compose):
        # a spread of sizes/seeds, weighted and not.
        for seed in range(8):
            n = 5 + seed * 13
            m = 3 + seed * 29
            g = erdos_renyi_graph(n, m, seed=seed, directed=bool(seed % 2))
            if seed % 3 == 0:
                g = g.with_random_weights(seed=seed)
            p = tmp_path / f"g{seed}.npz"
            save_csr(g, p)
            g2 = load_csr(p)
            assert np.array_equal(g2.indptr, g.indptr)
            assert np.array_equal(g2.indices, g.indices)
            assert (g2.weights is None) == (g.weights is None)
