"""Tests for graph sharding: exact edge tiling, mega-vertices, halos, budgets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph, star_graph
from repro.graph.shard import (
    GraphShard,
    halo_map,
    per_shard_budgets,
    shard_graph,
)


def assert_tiles_exactly(graph, shards):
    """Shards must reproduce the global edge array exactly, in order."""
    assert shards[0].e_lo == 0
    assert shards[-1].e_hi == graph.n_edges
    for a, b in zip(shards, shards[1:]):
        assert a.e_hi == b.e_lo
    rebuilt = np.concatenate([s.graph.indices for s in shards]) \
        if shards else np.array([], dtype=graph.indices.dtype)
    assert np.array_equal(rebuilt, graph.indices)
    # Per-vertex degrees sum across shards to the global degree — the
    # mega-vertex property: a vertex split mid-edge-list contributes part
    # of its degree to each side, never dropping or duplicating an edge.
    deg_sum = np.sum([s.local_degree() for s in shards], axis=0)
    assert np.array_equal(deg_sum, graph.out_degree())


class TestShardGraph:
    def test_every_shard_keeps_full_vertex_set(self, small_rmat):
        shards = shard_graph(small_rmat, 4)
        assert len(shards) == 4
        for s in shards:
            assert s.graph.n_vertices == small_rmat.n_vertices
            assert s.n_shards == 4

    def test_tiles_exactly(self, small_rmat):
        assert_tiles_exactly(small_rmat, shard_graph(small_rmat, 4))

    def test_single_shard_is_whole_graph(self, small_rmat):
        (s,) = shard_graph(small_rmat, 1)
        assert s.n_local_edges == small_rmat.n_edges
        assert np.array_equal(s.graph.indices, small_rmat.indices)
        assert s.boundary_vertices.size == 0

    def test_shard_names_are_distinct(self, small_rmat):
        names = {s.graph.name for s in shard_graph(small_rmat, 3)}
        assert len(names) == 3

    def test_weighted_graph_keeps_weights_aligned(self, small_rmat):
        weighted = small_rmat.with_random_weights(high=64)
        shards = shard_graph(weighted, 3)
        rebuilt = np.concatenate([s.graph.weights for s in shards])
        assert np.array_equal(rebuilt, weighted.weights)

    def test_mega_vertex_regression(self):
        """A star hub whose edge list dwarfs every shard slice must split
        mid-edge-list without dropping or duplicating a single edge."""
        hub = star_graph(40)  # vertex 0 owns ~all edges
        shards = shard_graph(hub, 4)
        assert_tiles_exactly(hub, shards)
        # The hub appears (with partial degree) in several shards...
        holders = [s for s in shards if s.local_degree()[0] > 0]
        assert len(holders) > 1
        # ...and is a boundary (halo) vertex of each shard it crosses.
        for s in holders:
            assert 0 in s.boundary_vertices

    def test_local_degree_is_slice_overlap(self, small_rmat):
        starts = small_rmat.indptr[:-1]
        ends = small_rmat.indptr[1:]
        for s in shard_graph(small_rmat, 4):
            # A vertex's local degree is exactly how much of its global
            # edge interval falls inside [e_lo, e_hi) — zero for foreign
            # vertices, so global frontier masks self-filter per shard.
            expected = (np.clip(ends, s.e_lo, s.e_hi)
                        - np.clip(starts, s.e_lo, s.e_hi))
            assert np.array_equal(s.local_degree(), expected)

    @given(st.integers(1, 12), st.integers(0, 3))
    def test_property_tiles_for_any_shard_count(self, n_shards, seed):
        graph = rmat_graph(7, 900 + 137 * seed, seed=seed)
        shards = shard_graph(graph, n_shards)
        assert len(shards) == n_shards
        assert_tiles_exactly(graph, shards)

    def test_rejects_invalid_count(self, small_rmat):
        with pytest.raises(ValueError):
            shard_graph(small_rmat, 0)


class TestPerShardBudgets:
    def test_budgets_sum_to_total(self, small_rmat):
        shards = shard_graph(small_rmat, 4)
        budgets = per_shard_budgets(shards, 1_000_003)
        assert sum(budgets) == 1_000_003
        assert all(b >= 1 for b in budgets)

    def test_budgets_track_shard_size(self, small_rmat):
        shards = shard_graph(small_rmat, 3)
        budgets = per_shard_budgets(shards, 999_999)
        sizes = [s.local_edge_bytes for s in shards]
        # Proportionality within the integer-rounding slack.
        for b, size in zip(budgets, sizes):
            expected = size / sum(sizes) * 999_999
            assert abs(b - expected) <= len(shards) + 1

    def test_deterministic(self, small_rmat):
        shards = shard_graph(small_rmat, 5)
        assert per_shard_budgets(shards, 12345) == \
            per_shard_budgets(shards, 12345)

    def test_rejects_nonpositive_total(self, small_rmat):
        shards = shard_graph(small_rmat, 2)
        with pytest.raises(ValueError):
            per_shard_budgets(shards, 0)


class TestHaloMap:
    def test_maps_every_shard(self, small_rmat):
        shards = shard_graph(small_rmat, 4)
        halos = halo_map(shards)
        assert sorted(halos) == [0, 1, 2, 3]
        for s in shards:
            assert np.array_equal(halos[s.shard_id], s.boundary_vertices)

    def test_boundary_vertices_cross_slice_edges(self, small_rmat):
        for s in shard_graph(small_rmat, 4):
            starts = small_rmat.indptr[:-1]
            ends = small_rmat.indptr[1:]
            for v in s.boundary_vertices:
                # The global edge extent sticks out of [e_lo, e_hi)...
                assert starts[v] < s.e_lo or ends[v] > s.e_hi
                # ...while the vertex still owns local edges here.
                assert s.local_degree()[v] > 0
