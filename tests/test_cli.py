"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "XX", "--algo", "BFS"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "FK", "--algo", "BFS", "--engine", "CUDA"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "FK", "--algo", "BFS"])
        assert args.engine == "Ascetic"
        assert args.ratio is None


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for abbr in ("GS", "FK", "FS", "UK"):
            assert abbr in out

    def test_run(self, capsys):
        rc = main(
            ["run", "--dataset", "FK", "--algo", "BFS", "--scale", "5e-5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Ascetic" in out
        assert "static_ratio" in out

    def test_run_with_ascetic_flags(self, capsys):
        rc = main(
            [
                "run", "--dataset", "FK", "--algo", "CC", "--scale", "5e-5",
                "--fill", "lazy", "--no-overlap",
            ]
        )
        assert rc == 0
        assert "static_prefill_bytes" in capsys.readouterr().out

    def test_run_forced_ratio(self, capsys):
        rc = main(
            ["run", "--dataset", "FK", "--algo", "BFS", "--scale", "5e-5",
             "--ratio", "0.5"]
        )
        assert rc == 0
        assert "0.5" in capsys.readouterr().out

    def test_run_other_engine(self, capsys):
        rc = main(
            ["run", "--dataset", "FK", "--algo", "BFS", "--scale", "5e-5",
             "--engine", "Subway"]
        )
        assert rc == 0
        assert "Subway" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--dataset", "FK", "--algo", "BFS", "--scale", "5e-5"])
        assert rc == 0
        out = capsys.readouterr().out
        for engine in ("PT", "UVM", "Subway", "Ascetic"):
            assert engine in out

    def test_sweep_ratio(self, capsys):
        rc = main(
            ["sweep-ratio", "--dataset", "FK", "--algo", "CC", "--scale", "5e-5",
             "--ratios", "0.0", "0.9"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Eq. 2" in out
        assert "Subway baseline" in out

    def test_compare_parallel_matches_serial(self, capsys):
        assert main(["compare", "--dataset", "FK", "--algo", "BFS",
                     "--scale", "5e-5"]) == 0
        serial = capsys.readouterr().out
        assert main(["compare", "--dataset", "FK", "--algo", "BFS",
                     "--scale", "5e-5", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_sweep_ratio_parallel(self, capsys):
        rc = main(
            ["sweep-ratio", "--dataset", "FK", "--algo", "CC", "--scale", "5e-5",
             "--ratios", "0.0", "0.9", "--jobs", "2"]
        )
        assert rc == 0
        assert "Subway baseline" in capsys.readouterr().out


class TestGridCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["grid"])
        assert args.jobs == 1
        assert args.datasets == ["GS", "FK", "FS", "UK"]
        assert args.algos == ["BFS", "SSSP", "CC", "PR"]
        assert args.engines is None
        assert not args.no_cache

    def test_grid_runs_and_caches(self, capsys, tmp_path):
        argv = ["grid", "--datasets", "FK", "--algos", "BFS", "--scale", "5e-5",
                "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "6 computed" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "6 cached" in warm
        assert "6 hit(s)" in warm

    def test_grid_no_cache(self, capsys, tmp_path):
        rc = main(["grid", "--datasets", "FK", "--algos", "BFS",
                   "--engines", "Subway", "--scale", "5e-5", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 computed" in out
        assert "cache:" not in out


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "FK", "BFS"])
        assert args.engine == "Ascetic"
        assert args.seed == 0

    def test_chaos_passes_and_prints_digest(self, capsys):
        rc = main(["chaos", "GS", "BFS", "--engine", "Subway",
                   "--seed", "7", "--scale", "5e-5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "digest: " in out
        assert "identical to fault-free baseline" in out

    def test_chaos_digest_deterministic(self, capsys):
        argv = ["chaos", "GS", "BFS", "--engine", "Ascetic",
                "--seed", "7", "--scale", "5e-5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        digest = [ln for ln in first.splitlines() if ln.startswith("digest:")]
        assert digest == [ln for ln in second.splitlines()
                          if ln.startswith("digest:")]

    def test_chaos_seed_changes_digest(self, capsys):
        base = ["chaos", "GS", "BFS", "--engine", "Subway", "--scale", "2e-4"]
        assert main(base + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        second = capsys.readouterr().out
        d1 = [ln for ln in first.splitlines() if ln.startswith("digest:")]
        d2 = [ln for ln in second.splitlines() if ln.startswith("digest:")]
        assert d1 != d2


class TestFleetChaosCommand:
    ARGV = ["chaos", "GS", "BFS", "--fleet", "--scale", "5e-5"]

    def test_fleet_chaos_recovers_and_degrades(self, capsys, tmp_path):
        report = tmp_path / "degraded.json"
        rc = main(self.ARGV + ["-o", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "identical to fault-free baseline" in out
        assert "device_losses" in out
        assert "repro.serve/3-degraded" in out
        import json
        payload = json.loads(report.read_text())
        assert payload["report"]["degraded"]["relocated_requests"] > 0
        assert payload["digest"] in out

    def test_fleet_chaos_twice_run_digests_identical(self, capsys):
        assert main(self.ARGV) == 0
        first = capsys.readouterr().out
        assert main(self.ARGV) == 0
        second = capsys.readouterr().out
        d1 = [ln for ln in first.splitlines() if ln.startswith("digest:")]
        d2 = [ln for ln in second.splitlines() if ln.startswith("digest:")]
        assert len(d1) == 2  # one per leg: engine recovery + fleet load
        assert d1 == d2

    def test_fleet_chaos_needs_two_devices(self):
        with pytest.raises(SystemExit, match="at least 2 devices"):
            main(self.ARGV + ["--devices", "1"])


class TestFabricValidation:
    """Malformed fabrics exit with a friendly message naming the key."""

    def test_serve_rejects_zero_devices(self):
        with pytest.raises(SystemExit, match="n_devices=0"):
            main(["serve", "--quick", "--devices", "0"])

    def test_fleet_rejects_zero_devices(self):
        with pytest.raises(SystemExit, match="n_devices=0"):
            main(["fleet", "--devices", "0"])

    def test_fleet_rejects_malformed_fabric_json(self):
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["fleet", "--fabric", "{oops"])

    def test_fleet_rejects_unknown_fabric_key(self):
        with pytest.raises(SystemExit, match="bogus_key"):
            main(["fleet", "--fabric", '{"n_devices": 2, "bogus_key": 1}'])

    def test_serve_rejects_non_object_fabric(self):
        with pytest.raises(SystemExit, match="JSON object"):
            main(["serve", "--quick", "--fabric", '["not", "a", "dict"]'])

    def test_fleet_accepts_explicit_fabric(self, capsys):
        rc = main(["fleet", "--requests", "4", "--scale", "5e-5",
                   "--fabric", '{"n_devices": 2, "topology": "nvlink"}'])
        assert rc == 0
        assert "digest: " in capsys.readouterr().out
