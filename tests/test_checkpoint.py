"""Iteration checkpoints: store round-trip, thinning, bit-exact resume."""

import pickle

import numpy as np
import pytest

from repro.engines import registry
from repro.gpusim.faults import FaultPlan
from repro.harness.checkpoint import (
    CheckpointStore,
    CheckpointWriter,
    IterationCheckpoint,
)
from repro.harness.experiments import make_workload, run_workload

SCALE = 5e-5

#: Chaos plan for the resume tests: the injector's RNG stream must survive
#: the checkpoint round-trip for these runs to stay bit-identical.
PLAN = FaultPlan(transfer_fail_rate=0.1, max_retries=8)


def _fingerprint(result):
    return (
        result.values.tobytes(),
        result.iterations,
        result.elapsed_seconds,
        result.gpu_idle_fraction,
        tuple(sorted(result.metrics.as_dict().items())),
        tuple(tuple(sorted(r.__dict__.items())) for r in result.per_iteration),
        tuple(tuple(sorted(e.to_dict().items(), key=lambda kv: kv[0]))
              for e in result.event_log.events),
    )


def _make_engine(name, w, **kw):
    return registry.create(name, spec=w.spec, data_scale=w.scale,
                           record_events=True, fault_plan=PLAN, seed=5, **kw)


def _dummy_checkpoint(iteration=3):
    return IterationCheckpoint(
        engine="Subway", algorithm="BFS", graph_name="g",
        iteration=iteration, values=np.arange(4.0),
        active=np.array([True, False, True, False]), blob=b"opaque",
    )


class _Interrupt(RuntimeError):
    pass


class TestStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        ckpt = _dummy_checkpoint()
        store.save("cell-1", ckpt)
        loaded = store.load("cell-1")
        assert loaded.engine == "Subway"
        assert loaded.iteration == 3
        assert np.array_equal(loaded.values, ckpt.values)
        assert np.array_equal(loaded.active, ckpt.active)
        assert loaded.blob == b"opaque"

    def test_missing_key_loads_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load("nope") is None

    def test_corrupt_file_loads_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("cell", _dummy_checkpoint())
        with open(store.path_for("cell"), "wb") as fh:
            fh.write(b"not a pickle")
        assert store.load("cell") is None

    def test_version_mismatch_loads_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.path_for("cell"), "wb") as fh:
            pickle.dump({"version": -1, "checkpoint": _dummy_checkpoint()}, fh)
        assert store.load("cell") is None

    def test_clear_and_keys(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("a", _dummy_checkpoint())
        store.save("b", _dummy_checkpoint())
        assert store.keys() == ["a", "b"]
        store.clear("a")
        store.clear("a")  # idempotent
        assert store.keys() == ["b"]

    def test_keys_are_sanitized_for_the_filesystem(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("FK/BFS:Subway", _dummy_checkpoint())
        assert store.load("FK/BFS:Subway") is not None
        assert "/" not in store.keys()[0][2:]


class TestWriter:
    def test_every_thins_cadence(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(ValueError):
            CheckpointWriter(store, "k", every=0)
        w = make_workload("GS", "BFS", scale=SCALE)
        engine = _make_engine("Subway", w)
        engine.checkpoint = CheckpointWriter(store, "k", every=3)
        result = engine.run(w.graph, w.fresh_program())
        assert result.iterations >= 3
        assert engine.checkpoint.n_saved == result.iterations // 3
        loaded = store.load("k")
        assert loaded is not None
        # The last snapshot is the last multiple of `every`.
        assert loaded.iteration == (result.iterations // 3) * 3


class TestResume:
    def _interrupted_store(self, w, engine_name, tmp_path, stop_at=3):
        store = CheckpointStore(str(tmp_path))
        engine = _make_engine(engine_name, w)
        engine.checkpoint = CheckpointWriter(store, "cell")

        def bomb(engine_, gpu, graph, state):
            if state.iteration == stop_at:
                raise _Interrupt

        engine.iteration_hook = bomb
        with pytest.raises(_Interrupt):
            engine.run(w.graph, w.fresh_program())
        return store

    @pytest.mark.parametrize("engine_name", ("Subway", "Ascetic"))
    def test_resume_is_bit_identical(self, engine_name, tmp_path):
        w = make_workload("GS", "BFS", scale=SCALE)
        uninterrupted = _make_engine(engine_name, w).run(
            w.graph, w.fresh_program())
        assert uninterrupted.iterations > 4  # the interruption is mid-run

        store = self._interrupted_store(w, engine_name, tmp_path)
        ckpt = store.load("cell")
        assert ckpt is not None and ckpt.iteration == 3

        fresh = _make_engine(engine_name, w)
        resumed = fresh.run(w.graph, w.fresh_program(), resume_from=ckpt)
        assert fresh.resumed_iteration == 3
        assert _fingerprint(resumed) == _fingerprint(uninterrupted)

    def test_run_workload_resumes_and_clears(self, tmp_path):
        w = make_workload("GS", "BFS", scale=SCALE)
        store = self._interrupted_store(w, "Subway", tmp_path)
        assert store.keys() == ["cell"]
        baseline = run_workload(w, "Subway", record_events=True,
                                fault_plan=PLAN, seed=5)
        result = run_workload(w, "Subway", record_events=True,
                              fault_plan=PLAN, seed=5,
                              checkpoint=store, checkpoint_key="cell")
        assert _fingerprint(result) == _fingerprint(baseline)
        assert store.keys() == []  # cleared on success

    def test_checkpoint_requires_key(self, tmp_path):
        w = make_workload("GS", "BFS", scale=SCALE)
        with pytest.raises(ValueError, match="checkpoint_key"):
            run_workload(w, "Subway", checkpoint=CheckpointStore(str(tmp_path)))
