"""Tests for the experiment harness and sweeps."""

import pytest

from repro.core.ascetic import AsceticConfig
from repro.harness.experiments import (
    ENGINES,
    clear_dataset_cache,
    make_workload,
    run_all_engines,
    run_cell,
    run_workload,
)
from repro.harness.sweeps import sweep_gpu_memory, sweep_rmat_sizes, sweep_static_ratio

SCALE = 5e-5  # tiny but structurally faithful


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestWorkloads:
    def test_engine_registry(self):
        assert set(ENGINES) == {"PT", "UVM", "Subway", "Ascetic", "Hybrid", "Sharded"}

    def test_make_workload_basic(self):
        w = make_workload("FK", "BFS", scale=SCALE)
        assert w.algorithm == "BFS"
        assert w.graph.n_vertices > 0
        assert w.spec.memory_bytes == w.dataset.gpu_memory_bytes

    def test_sssp_gets_weights(self):
        w = make_workload("FK", "SSSP", scale=SCALE)
        assert w.graph.is_weighted
        assert not make_workload("FK", "BFS", scale=SCALE).graph.is_weighted

    def test_fresh_program_independent(self):
        w = make_workload("FK", "PR", scale=SCALE)
        assert w.fresh_program() is not w.fresh_program()

    def test_memory_override(self):
        w = make_workload("FK", "BFS", scale=SCALE, memory_bytes=123456)
        assert w.spec.memory_bytes == 123456

    def test_dataset_cached(self):
        a = make_workload("FK", "BFS", scale=SCALE)
        b = make_workload("FK", "CC", scale=SCALE)
        assert a.dataset is b.dataset


class TestRunCell:
    def test_all_engines_complete(self):
        w = make_workload("FK", "BFS", scale=SCALE)
        results = run_all_engines(w)
        assert set(results) == set(ENGINES)
        for res in results.values():
            assert res.elapsed_seconds > 0

    def test_engine_kwargs_forwarded(self):
        w = make_workload("FK", "BFS", scale=SCALE)
        res = run_workload(w, "Ascetic", config=AsceticConfig(overlap=False))
        assert res.engine == "Ascetic"

    def test_run_cell_accepts_runspec(self):
        from repro.runner import RunSpec

        res = run_cell(RunSpec("FK", "BFS", "Subway", scale=SCALE))
        assert res.engine == "Subway"
        assert res.algorithm == "BFS"

    def test_run_cell_runspec_rejects_extra_args(self):
        from repro.runner import RunSpec

        with pytest.raises(TypeError):
            run_cell(RunSpec("FK", "BFS", "Subway", scale=SCALE), "Ascetic")

    def test_run_cell_workload_shim_warns_and_matches(self):
        import numpy as np

        w = make_workload("FK", "BFS", scale=SCALE)
        with pytest.warns(DeprecationWarning):
            old = run_cell(w, "Subway")
        new = run_workload(w, "Subway")
        assert np.array_equal(old.values, new.values)
        assert old.elapsed_seconds == new.elapsed_seconds


class TestSweeps:
    def test_static_ratio_sweep(self):
        w = make_workload("FK", "CC", scale=SCALE)
        points, subway_s, eq2 = sweep_static_ratio(w, [0.0, 0.5, 0.9])
        assert [p.ratio for p in points] == [0.0, 0.5, 0.9]
        assert subway_s > 0
        assert 0.0 <= eq2 <= 1.0
        # More static region ⇒ more static compute, less transfer.
        assert points[-1].t_sr > points[0].t_sr
        assert points[-1].t_transfer < points[0].t_transfer

    def test_static_ratio_sweep_parallel_matches_serial(self):
        w = make_workload("FK", "CC", scale=SCALE)
        serial = sweep_static_ratio(w, [0.0, 0.9])
        parallel = sweep_static_ratio(w, [0.0, 0.9], jobs=2)
        assert serial == parallel  # RatioPoints are frozen dataclasses

    def test_memory_sweep(self):
        points = sweep_gpu_memory("FK", "CC", [0.4, 0.8], scale=SCALE)
        assert len(points) == 2
        for p in points:
            assert p.ascetic_seconds > 0 and p.subway_seconds > 0
            assert p.speedup > 0

    def test_rmat_sweep(self):
        points = sweep_rmat_sizes("CC", [2.5e9, 5e9], scale=2e-5)
        assert len(points) == 2
        assert points[0].memory_fraction > points[1].memory_fraction


class TestExtensionWorkloads:
    def test_sswp_gets_weights_and_source(self):
        w = make_workload("FK", "SSWP", scale=SCALE)
        assert w.graph.is_weighted
        prog = w.fresh_program()
        assert prog.name == "SSWP"
        res = run_workload(w, "Ascetic")
        assert res.algorithm == "SSWP"

    def test_pr_pull_streams_reverse_graph(self):
        fwd = make_workload("UK", "PR", scale=SCALE)
        pull = make_workload("UK", "PR-PULL", scale=SCALE)
        assert pull.graph.n_edges == fwd.graph.n_edges
        # Reverse CSR: out-degrees differ from the forward graph's.
        import numpy as np

        assert not np.array_equal(pull.graph.out_degree(), fwd.graph.out_degree())
        res = run_workload(pull, "Subway")
        assert res.iterations > 1


class TestPersistenceIntegration:
    def test_grid_cell_round_trips(self, tmp_path):
        from repro.harness.persistence import load_results, save_results

        w = make_workload("FK", "BFS", scale=SCALE)
        res = run_workload(w, "Ascetic")
        p = tmp_path / "cell.json"
        save_results([res], p, include_iterations=True)
        loaded = load_results(p)[0]
        assert loaded["algorithm"] == "BFS"
        assert loaded["extra"]["static_ratio"] == res.extra["static_ratio"]
        assert len(loaded["per_iteration"]) == res.iterations


class TestDatasetCacheConcurrency:
    """The memoized dataset load is lock-serialized: a concurrent miss must
    run the loader once and hand every caller the *same* Dataset object —
    object identity is what the serve layer's warm-region validity and the
    frontier cache key on, so a duplicate load is silent breakage."""

    def test_concurrent_miss_loads_once_and_shares_the_object(self, monkeypatch):
        import threading
        import time

        from repro.harness import experiments

        calls = []
        real_load = experiments.load_dataset

        def slow_counting_load(abbr, scale):
            calls.append(abbr)
            time.sleep(0.05)  # widen the race window lru_cache alone loses
            return real_load(abbr, scale=scale)

        monkeypatch.setattr(experiments, "load_dataset", slow_counting_load)
        clear_dataset_cache()
        try:
            results = [None] * 8
            barrier = threading.Barrier(len(results))

            def worker(i):
                barrier.wait()
                results[i] = experiments._cached_dataset("GS", SCALE)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert calls == ["GS"]  # loaded exactly once
            assert all(r is results[0] for r in results)  # one shared object
        finally:
            clear_dataset_cache()  # drop the monkeypatched-loader's product
