"""Tests for the metrics counter bundle."""

import pytest

from repro.gpusim.metrics import Metrics


class TestMetrics:
    def test_defaults_zero(self):
        m = Metrics()
        assert m.bytes_h2d == 0
        assert m.page_faults == 0
        assert dict(m.phase_seconds) == {}

    def test_add_phase_accumulates(self):
        m = Metrics()
        m.add_phase("Tsr", 1.0)
        m.add_phase("Tsr", 0.5)
        assert m.phase_seconds["Tsr"] == 1.5

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            Metrics().add_phase("Tsr", -0.1)

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.bytes_h2d, b.bytes_h2d = 10, 20
        a.page_faults, b.page_faults = 1, 2
        a.add_phase("Tsr", 1.0)
        b.add_phase("Tsr", 2.0)
        b.add_phase("Tfilling", 3.0)
        out = a.merge(b)
        assert out is a
        assert a.bytes_h2d == 30
        assert a.page_faults == 3
        assert a.phase_seconds["Tsr"] == 3.0
        assert a.phase_seconds["Tfilling"] == 3.0

    def test_as_dict(self):
        m = Metrics()
        m.bytes_h2d = 42
        m.add_phase("Tondemand", 1.0)
        d = m.as_dict()
        assert d["bytes_h2d"] == 42
        assert d["phase:Tondemand"] == 1.0
        assert "kernel_launches" in d

    def test_as_dict_phase_keys_sorted(self):
        m = Metrics()
        m.add_phase("b", 1.0)
        m.add_phase("a", 1.0)
        keys = [k for k in m.as_dict() if k.startswith("phase:")]
        assert keys == sorted(keys)
