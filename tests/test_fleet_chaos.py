"""Fleet fault tolerance: device loss, re-shard recovery, and degradation.

The two acceptance pins of the fault-tolerance PR live here:

* **engine** — a 4-device :class:`~repro.engines.sharded.ShardedEngine`
  BFS with one device killed mid-run completes with values bit-identical
  to the fault-free run, and the recovery cost (re-shard + checkpoint
  restore H2D) appears in the event log as typed markers;
* **serve** — under :func:`~repro.gpusim.faults.standard_fleet_plan`, a
  4-device fleet keeps goodput strictly above the 1-device fault-free
  baseline, the SLO report carries a ``degraded`` section with nonzero
  relocated-request counts, and the chaos run replays bit for bit.

Around them: the hypothesis determinism property (twice-run digests are
identical under *any* seeded device-fault plan), the late-loss regression
(a device dying after the final superstep changes no values and no
digest), router circuit-breaker units, and the per-device fault folds /
Chrome-trace counter surfacing.
"""

import hashlib
import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_program
from repro.analysis.traces import chrome_trace_events
from repro.engines import registry
from repro.engines.sharded import DeviceLostError, ShardedEngine
from repro.gpusim.fabric import Fabric, FabricSpec
from repro.gpusim.faults import (
    DeviceFault,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    standard_fleet_plan,
)
from repro.gpusim.events import fold_device_faults
from repro.graph.properties import best_source
from repro.harness.persistence import result_to_payload
from repro.serve import (
    SLO_SCHEMA_DEGRADED,
    SLO_SCHEMA_FLEET,
    FleetConfig,
    Router,
    fleet_quick_config,
    run_fleet_test,
    run_load_test,
)

from conftest import TEST_SCALE, make_spec_for


def payload_digest(result) -> str:
    blob = json.dumps(result_to_payload(result), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def run_sharded(graph, program_factory, *, devices=4, **opts):
    engine = registry.create("Sharded", spec=make_spec_for(graph),
                             data_scale=TEST_SCALE, devices=devices, **opts)
    return engine.run(graph, program_factory())


def bfs_factory(graph):
    source = best_source(graph)
    return lambda: make_program("BFS", source=source)


def mid_run_plan(baseline, seed=0, devices=4):
    """The standard fleet plan retimed inside ``baseline``'s sim horizon."""
    t = baseline.elapsed_seconds
    return standard_fleet_plan(seed=seed, n_devices=devices, down_at=t / 2,
                               degrade_start=t * 0.6, degrade_end=t * 0.8)


class TestShardedRecovery:
    """The engine-layer acceptance pin and its satellites."""

    @pytest.fixture(scope="class")
    def baseline(self, small_social):
        return run_sharded(small_social, bfs_factory(small_social))

    @pytest.fixture(scope="class")
    def chaos(self, small_social, baseline):
        return run_sharded(small_social, bfs_factory(small_social),
                           fault_plan=mid_run_plan(baseline), seed=0,
                           record_events=True)

    def test_values_bit_identical_after_device_loss(self, baseline, chaos):
        assert chaos.extra["device_losses"] == 1.0
        assert np.array_equal(baseline.values, chaos.values)
        assert baseline.iterations == chaos.iterations

    def test_recovery_cost_is_typed_markers(self, chaos):
        kinds = {e.kind for e in chaos.event_log.events}
        assert {"device-down", "reshard", "ckpt-restore"} <= kinds
        restores = [e for e in chaos.event_log.events
                    if e.kind == "ckpt-restore" and e.device is not None]
        # Every survivor restores vertex state from the barrier checkpoint.
        assert len(restores) == 3
        assert all(dict(e.extra).get("bytes", 0) > 0 for e in restores)

    def test_recovery_surfaces_in_extras(self, chaos):
        assert chaos.extra["fault_device_down"] == 1.0
        # The victim (seed 0 → device 0) owns the down/reshard markers ...
        assert chaos.extra["device0_fault_device_down"] == 1.0
        assert chaos.extra["device0_fault_reshard"] == 1.0
        # ... and each survivor owns one checkpoint restore.
        for d in (1, 2, 3):
            assert chaos.extra[f"device{d}_fault_ckpt_restore"] == 1.0

    def test_loss_after_final_superstep_changes_nothing(self, small_social,
                                                        baseline):
        # Regression pin: a device death scheduled beyond the run's horizon
        # must not perturb values, extras, or digest in any way.
        late = standard_fleet_plan(
            seed=0, n_devices=4, down_at=baseline.elapsed_seconds * 10,
            degrade_start=baseline.elapsed_seconds * 11,
            degrade_end=baseline.elapsed_seconds * 12)
        res = run_sharded(small_social, bfs_factory(small_social),
                          fault_plan=late, seed=0)
        assert np.array_equal(baseline.values, res.values)
        assert "device_losses" not in res.extra
        assert payload_digest(res) == payload_digest(baseline)

    def test_all_devices_lost_raises(self, small_social, baseline):
        t = baseline.elapsed_seconds / 2
        plan = FaultPlan(device_faults=tuple(
            DeviceFault(device=d, start=t) for d in range(2)))
        with pytest.raises(DeviceLostError):
            run_sharded(small_social, bfs_factory(small_social),
                        devices=2, fault_plan=plan, seed=0)


class TestChaosDeterminism:
    """Twice-run digests are identical under any seeded device-fault plan."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), victim=st.integers(0, 2),
           down_frac=st.floats(0.05, 2.0))
    def test_twice_run_digest_identical(self, seed, victim, down_frac):
        graph = _property_graph()
        base = run_sharded(graph, bfs_factory(graph), devices=3)
        plan = FaultPlan(
            device_faults=(DeviceFault(
                device=victim,
                start=base.elapsed_seconds * down_frac),),
            peer_degradations=(LinkDegradation(
                start=base.elapsed_seconds * down_frac,
                end=base.elapsed_seconds * (down_frac + 0.2),
                factor=0.5),),
        )
        first = run_sharded(graph, bfs_factory(graph), devices=3,
                            fault_plan=plan, seed=seed)
        second = run_sharded(graph, bfs_factory(graph), devices=3,
                             fault_plan=plan, seed=seed)
        assert payload_digest(first) == payload_digest(second)
        # Faults cost virtual time, never correctness.
        assert np.array_equal(base.values, first.values)


_PROPERTY_GRAPH = None


def _property_graph():
    # One small shared graph keeps the hypothesis examples fast; built
    # lazily so collection stays cheap.
    global _PROPERTY_GRAPH
    if _PROPERTY_GRAPH is None:
        from repro.graph.generators import social_graph
        _PROPERTY_GRAPH = social_graph(400, 4000, seed=11)
    return _PROPERTY_GRAPH


class TestFabricHealth:
    def make_fabric(self, plan, n=2):
        spec = FabricSpec(n_devices=n)
        return Fabric(spec, record_events=True,
                      faults=FaultInjector(plan, seed=0))

    def test_device_down_marker_and_alive(self):
        plan = FaultPlan(device_faults=(DeviceFault(device=1, start=1.0),))
        fab = self.make_fabric(plan)
        assert fab.check_health(0.5) == []
        assert fab.alive() == [0, 1]
        assert fab.check_health(2.0) == [(1, "down")]
        assert fab.alive() == [0]
        assert fab.health[1] == "down"
        downs = [e for e in fab.events.events if e.kind == "device-down"]
        assert len(downs) == 1 and downs[0].device == 1
        # Health transitions are edge-triggered: re-checking emits nothing.
        assert fab.check_health(3.0) == []
        assert len([e for e in fab.events.events
                    if e.kind == "device-down"]) == 1

    def test_transient_stall_recovers(self):
        plan = FaultPlan(device_faults=(
            DeviceFault(device=0, start=1.0, end=2.0),))
        fab = self.make_fabric(plan)
        fab.check_health(1.5)
        assert fab.health[0] == "stalled"
        fab.check_health(2.5)
        assert fab.health[0] == "up"
        kinds = [e.kind for e in fab.events.events
                 if e.kind in ("device-down", "device-up")]
        assert kinds == ["device-down", "device-up"]

    def test_peer_degradation_slows_transfer(self):
        window = LinkDegradation(start=0.0, end=100.0, factor=0.25)
        degraded = self.make_fabric(FaultPlan(peer_degradations=(window,)))
        clean = self.make_fabric(FaultPlan())
        payload = 1 << 20
        slow = degraded.transfer(0, 1, payload, label="x")
        fast = clean.transfer(0, 1, payload, label="x")
        assert slow > fast


class TestRouterBreaker:
    def make(self, threshold=2, probe=5.0):
        return Router(FabricSpec(n_devices=4), breaker_threshold=threshold,
                      probe_interval=probe)

    def test_opens_at_threshold(self):
        router = self.make()
        assert not router.note_failure(1, t=1.0)
        assert router.note_failure(1, t=2.0)  # second strike opens
        assert not router.usable(1, 3.0)

    def test_half_open_probe_after_interval(self):
        router = self.make()
        router.note_failure(1, t=1.0)
        router.note_failure(1, t=2.0)
        assert not router.usable(1, 6.9)
        assert router.usable(1, 7.0)  # opened at 2.0 + probe 5.0

    def test_success_closes_and_resets(self):
        router = self.make()
        router.note_failure(1, t=1.0)
        router.note_failure(1, t=2.0)
        assert router.note_success(1)  # closes
        assert router.usable(1, 2.5)
        # The strike count reset with the close.
        assert not router.note_failure(1, t=3.0)

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            self.make(threshold=0)
        with pytest.raises(ValueError):
            self.make(probe=0.0)


class TestFleetDegraded:
    """The serve-layer acceptance pin: goodput survives a device loss."""

    @pytest.fixture(scope="class")
    def chaos_config(self):
        return replace(fleet_quick_config(seed=0, n_devices=4),
                       fault_plan=standard_fleet_plan(seed=0, n_devices=4))

    @pytest.fixture(scope="class")
    def chaos_result(self, chaos_config):
        return run_fleet_test(chaos_config)

    def test_goodput_beats_single_device_baseline(self, chaos_config,
                                                  chaos_result):
        single = run_load_test(chaos_config.serve)
        assert (chaos_result.report["goodput_per_second"]
                > single.report["goodput_per_second"])

    def test_degraded_section_and_schema(self, chaos_result):
        report = chaos_result.report
        assert report["schema"] == SLO_SCHEMA_DEGRADED
        degraded = report["degraded"]
        assert degraded["relocated_requests"] > 0
        assert degraded["retried_requests"] > 0
        assert degraded["degraded_seconds"] > 0
        victim = degraded["devices"]["0"]
        assert victim["downtime_seconds"] > 0
        assert victim["dispatch_failures"] > 0

    def test_retries_surface_on_responses(self, chaos_result):
        retried = [r for r in chaos_result.responses if r.retries]
        assert retried
        # A retried completion landed on a device that was not the victim.
        assert all(r.device != 0 for r in retried if r.completed)

    def test_twice_run_digest_identical(self, chaos_config, chaos_result):
        again = run_fleet_test(chaos_config)
        assert chaos_result.run_digest() == again.run_digest()

    def test_fault_free_fleet_keeps_fleet_schema(self):
        report = run_fleet_test(fleet_quick_config(seed=0)).report
        assert report["schema"] == SLO_SCHEMA_FLEET
        assert "degraded" not in report

    def test_plan_with_no_observed_faults_keeps_digest(self):
        # A fault plan whose device loss fires after the load test's
        # horizon must not disturb the report or the digest... except for
        # the config fingerprint, which legitimately differs — so compare
        # the SLO reports instead.
        base = run_fleet_test(fleet_quick_config(seed=0, n_devices=4))
        late = replace(
            fleet_quick_config(seed=0, n_devices=4),
            fault_plan=standard_fleet_plan(seed=0, n_devices=4,
                                           down_at=1e9,
                                           degrade_start=2e9,
                                           degrade_end=3e9))
        res = run_fleet_test(late)
        assert res.report["schema"] == SLO_SCHEMA_FLEET
        assert "degraded" not in res.report
        assert res.report == base.report


class TestFaultObservability:
    """Per-device fault folds and the Chrome-trace counter surfacing."""

    def test_fold_device_faults_fault_free_is_empty(self, small_social):
        res = run_sharded(small_social, bfs_factory(small_social),
                          record_events=True)
        assert fold_device_faults(res.event_log.events) == {}

    def test_fold_device_faults_keys_by_device(self, small_social):
        base = run_sharded(small_social, bfs_factory(small_social))
        res = run_sharded(small_social, bfs_factory(small_social),
                          fault_plan=mid_run_plan(base), seed=0,
                          record_events=True)
        folds = fold_device_faults(res.event_log.events)
        assert folds[0]["fault_device_down"] == 1
        assert folds[0]["fault_reshard"] == 1
        for d in (1, 2, 3):
            assert folds[d]["fault_ckpt_restore"] == 1

    def test_chaos_counters_in_chrome_trace(self, small_social):
        base = run_sharded(small_social, bfs_factory(small_social))
        res = run_sharded(small_social, bfs_factory(small_social),
                          fault_plan=mid_run_plan(base), seed=0,
                          record_events=True)
        events = chrome_trace_events(res)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "fault counter track missing from fabric trace"
        victim = [e for e in counters if e["pid"] == 0]
        assert any(e["args"].get("fault_device_down") == 1 for e in victim)

    def test_single_device_trace_stays_byte_identical(self, small_social):
        # The single-device export path must not grow counter events (or
        # anything else): same log in, byte-identical JSON out.
        factory = bfs_factory(small_social)
        engine = registry.create("Ascetic", spec=make_spec_for(small_social),
                                 data_scale=TEST_SCALE, record_events=True)
        res = engine.run(small_social, factory())
        first = json.dumps(chrome_trace_events(res), sort_keys=True)
        second = json.dumps(chrome_trace_events(res), sort_keys=True)
        assert first == second
        assert not [e for e in json.loads(first) if e["ph"] == "C"]


class TestPlanSerialization:
    def test_standard_fleet_plan_round_trips(self):
        plan = standard_fleet_plan(seed=3, n_devices=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_device_fields_omitted(self):
        # Fingerprint stability: plans without device faults serialize
        # exactly as they did before the fleet-chaos fields existed.
        d = FaultPlan(transfer_fail_rate=0.1).to_dict()
        assert "device_faults" not in d
        assert "peer_degradations" not in d

    def test_victim_follows_seed(self):
        assert standard_fleet_plan(seed=1, n_devices=4).device_faults[0].device == 1
        assert standard_fleet_plan(seed=6, n_devices=4).device_faults[0].device == 2
