"""Tests for RunSpec: normalization, serialization, cache keys."""

import pytest

from repro.core.ascetic import AsceticConfig
from repro.harness.experiments import BENCH_SCALE
from repro.runner import RunSpec


class TestNormalization:
    def test_algorithm_uppercased(self):
        assert RunSpec("FK", "bfs", "Ascetic").algorithm == "BFS"

    def test_default_scale_is_bench_scale(self):
        assert RunSpec("FK", "BFS", "Ascetic").scale == BENCH_SCALE

    def test_explicit_scale_matches_default(self):
        # None and the explicit benchmark value must hash identically.
        a = RunSpec("FK", "BFS", "Ascetic")
        b = RunSpec("FK", "BFS", "Ascetic", scale=BENCH_SCALE)
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_engine_opts_accepts_mapping(self):
        s = RunSpec("FK", "BFS", "Ascetic", engine_opts={"b": 1, "a": 2})
        assert s.engine_opts == (("a", 2), ("b", 1))
        assert s.opts == {"a": 2, "b": 1}
        assert s.engine_kwargs() == {"a": 2, "b": 1}

    def test_hashable(self):
        cfg = AsceticConfig(overlap=False)
        s = RunSpec("FK", "BFS", "Ascetic", engine_opts={"config": cfg})
        assert len({s, RunSpec("FK", "BFS", "Ascetic", engine_opts={"config": cfg})}) == 1

    def test_unserializable_opt_rejected(self):
        with pytest.raises(TypeError):
            RunSpec("FK", "BFS", "Ascetic", engine_opts={"cb": lambda: None})

    def test_label(self):
        assert RunSpec("FK", "bfs", "Subway").label() == "FK/BFS/Subway"


class TestSerialization:
    def test_round_trip_plain(self):
        s = RunSpec("GS", "PR", "UVM", scale=1e-4, memory_bytes=1 << 20)
        assert RunSpec.from_dict(s.to_dict()) == s

    def test_round_trip_with_config(self):
        cfg = AsceticConfig(fill="lazy", forced_ratio=0.5, adaptive=False)
        s = RunSpec("FK", "CC", "Ascetic", engine_opts={"config": cfg})
        back = RunSpec.from_dict(s.to_dict())
        assert back == s
        assert back.opts["config"] == cfg

    def test_unknown_tagged_opt_rejected(self):
        d = RunSpec("FK", "BFS", "Ascetic").to_dict()
        d["engine_opts"] = {"config": {"__kind__": "Mystery"}}
        with pytest.raises(ValueError):
            RunSpec.from_dict(d)

    def test_config_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            AsceticConfig.from_dict({"k": 0.1, "warp_size": 32})

    def test_config_round_trip(self):
        cfg = AsceticConfig(k=0.25, replacement=False)
        assert AsceticConfig.from_dict(cfg.to_dict()) == cfg


class TestCacheKey:
    def test_stable(self):
        s = RunSpec("FK", "BFS", "Ascetic")
        assert s.cache_key() == RunSpec("FK", "BFS", "Ascetic").cache_key()

    @pytest.mark.parametrize(
        "other",
        [
            RunSpec("GS", "BFS", "Ascetic"),
            RunSpec("FK", "CC", "Ascetic"),
            RunSpec("FK", "BFS", "Subway"),
            RunSpec("FK", "BFS", "Ascetic", scale=1e-4),
            RunSpec("FK", "BFS", "Ascetic", memory_bytes=1 << 20),
            RunSpec("FK", "BFS", "Ascetic", engine_opts={"config": AsceticConfig(k=0.2)}),
        ],
    )
    def test_differs_when_any_field_differs(self, other):
        assert RunSpec("FK", "BFS", "Ascetic").cache_key() != other.cache_key()
