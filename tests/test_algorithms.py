"""Correctness tests for the four vertex programs against independent oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    PROGRAMS,
    ConnectedComponents,
    PageRank,
    SSSP,
    make_program,
)
from repro.algorithms.bfs import UNREACHED
from repro.algorithms.sssp import INF_DIST
from repro.algorithms.validate import (
    assert_allclose_ranks,
    reference_bfs_levels,
    reference_cc_labels,
    reference_pagerank,
    reference_sssp_distances,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.properties import best_source


class TestRegistry:
    def test_paper_programs_plus_extensions(self):
        assert {"BFS", "SSSP", "CC", "PR"} <= set(PROGRAMS)
        assert "SSWP" in PROGRAMS  # extension algorithm

    def test_make_program_case_insensitive(self):
        assert make_program("bfs").name == "BFS"

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            make_program("DFS")


class TestBFS:
    def test_path_levels(self):
        g = path_graph(6)
        levels = BFS(source=0).run_reference(g)
        assert np.array_equal(levels, np.arange(6, dtype=np.int32))

    def test_unreachable(self):
        g = path_graph(6)
        levels = BFS(source=3).run_reference(g)
        assert np.all(levels[:3] == UNREACHED)
        assert np.array_equal(levels[3:], [0, 1, 2])

    def test_star(self):
        levels = BFS(source=0).run_reference(star_graph(8))
        assert levels[0] == 0 and np.all(levels[1:] == 1)

    def test_cycle(self):
        levels = BFS(source=0).run_reference(cycle_graph(5))
        assert levels.max() == 4

    def test_default_source_is_hub(self, small_rmat):
        levels = BFS().run_reference(small_rmat)
        assert levels[best_source(small_rmat)] == 0

    def test_invalid_source(self, tiny_path):
        with pytest.raises(ValueError):
            BFS(source=99).init_state(tiny_path)

    def test_against_networkx(self, small_rmat, small_web, small_social):
        for g in (small_rmat, small_web, small_social):
            src = best_source(g)
            assert np.array_equal(
                BFS(source=src).run_reference(g), reference_bfs_levels(g, src)
            )

    @given(st.integers(0, 1000))
    @settings(max_examples=15)
    def test_property_random_graphs(self, seed):
        g = erdos_renyi_graph(60, 300, seed=seed)
        src = seed % g.n_vertices
        assert np.array_equal(
            BFS(source=src).run_reference(g), reference_bfs_levels(g, src)
        )


class TestSSSP:
    def test_requires_weights(self, tiny_path):
        with pytest.raises(ValueError):
            SSSP(source=0).run_reference(tiny_path)

    def test_path_distances(self):
        g = path_graph(5).with_weights([2, 3, 4, 5])
        d = SSSP(source=0).run_reference(g)
        assert list(d) == [0, 2, 5, 9, 14]

    def test_unreachable_is_inf(self):
        g = path_graph(4).with_weights([1, 1, 1])
        d = SSSP(source=2).run_reference(g)
        assert d[0] == INF_DIST and d[1] == INF_DIST

    def test_grid_against_dijkstra(self, tiny_grid):
        g = tiny_grid.with_random_weights(seed=5)
        src = 0
        assert np.array_equal(
            SSSP(source=src).run_reference(g), reference_sssp_distances(g, src)
        )

    def test_against_dijkstra(self, small_rmat, small_social):
        for base in (small_rmat, small_social):
            g = base.with_random_weights(seed=6)
            src = best_source(g)
            assert np.array_equal(
                SSSP(source=src).run_reference(g), reference_sssp_distances(g, src)
            )

    def test_shorter_path_wins_over_fewer_hops(self):
        # 0→2 direct costs 10; 0→1→2 costs 2+3=5.
        g = CSRGraph.from_edges([0, 0, 1], [2, 1, 2], 3, weights=[10, 2, 3])
        d = SSSP(source=0).run_reference(g)
        assert d[2] == 5

    @given(st.integers(0, 1000))
    @settings(max_examples=15)
    def test_property_random_graphs(self, seed):
        g = erdos_renyi_graph(50, 250, seed=seed).with_random_weights(seed=seed)
        src = seed % g.n_vertices
        assert np.array_equal(
            SSSP(source=src).run_reference(g), reference_sssp_distances(g, src)
        )


class TestCC:
    def test_undirected_components(self):
        g = CSRGraph.from_edges([0, 2, 4], [1, 3, 5], 6, directed=False)
        labels = ConnectedComponents().run_reference(g)
        assert list(labels) == [0, 0, 2, 2, 4, 4]

    def test_isolated_vertices_self_labelled(self):
        g = CSRGraph.from_edges([], [], 4)
        labels = ConnectedComponents().run_reference(g)
        assert list(labels) == [0, 1, 2, 3]

    def test_grid_single_component(self, tiny_grid):
        labels = ConnectedComponents().run_reference(tiny_grid)
        assert np.all(labels == 0)

    def test_directed_min_reaching_label(self):
        # 2→0: 0 adopts label 0? No: labels flow along edges, so 0 gets
        # min(0, 2)=0; 2 keeps 2 (nothing reaches it).
        g = CSRGraph.from_edges([2], [0], 3)
        labels = ConnectedComponents().run_reference(g)
        assert list(labels) == [0, 1, 2]

    def test_directed_chain_propagates(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3)
        labels = ConnectedComponents().run_reference(g)
        assert list(labels) == [0, 0, 0]

    def test_against_references(self, small_rmat, small_web, small_social):
        for g in (small_rmat, small_web, small_social):
            assert np.array_equal(
                ConnectedComponents().run_reference(g), reference_cc_labels(g)
            )

    @given(st.integers(0, 1000))
    @settings(max_examples=15)
    def test_property_random_graphs(self, seed):
        directed = bool(seed % 2)
        g = erdos_renyi_graph(40, 80, directed=directed, seed=seed)
        assert np.array_equal(
            ConnectedComponents().run_reference(g), reference_cc_labels(g)
        )


class TestPageRank:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)
        with pytest.raises(ValueError):
            PageRank(tol=0)

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 0)
        assert PageRank().run_reference(g).size == 0

    def test_uniform_on_cycle(self):
        g = cycle_graph(8)
        r = PageRank(tol=1e-6).run_reference(g)
        assert np.allclose(r, r[0])

    def test_mass_conservation_without_dangling(self):
        g = cycle_graph(10)
        r = PageRank(tol=1e-8).run_reference(g)
        assert r.sum() == pytest.approx(1.0, rel=1e-4)

    def test_hub_ranks_higher(self, small_rmat):
        r = PageRank(tol=1e-4).run_reference(small_rmat)
        hub = best_source(small_rmat)
        assert r[hub] > np.median(r) * 2

    def test_against_linear_system(self, small_rmat, small_web):
        for g in (small_rmat, small_web):
            r = PageRank(tol=1e-5).run_reference(g)
            assert_allclose_ranks(r, reference_pagerank(g), rtol=5e-3)

    def test_tighter_tol_closer_to_fixpoint(self, small_social):
        ref = reference_pagerank(small_social)
        loose = PageRank(tol=1e-2).run_reference(small_social)
        tight = PageRank(tol=1e-5).run_reference(small_social)
        err = lambda x: np.max(np.abs(x - ref) / np.maximum(np.abs(ref), 1e-300))
        assert err(tight) < err(loose)

    @given(st.integers(0, 1000))
    @settings(max_examples=10)
    def test_property_random_graphs(self, seed):
        g = erdos_renyi_graph(40, 200, seed=seed)
        r = PageRank(tol=1e-6).run_reference(g)
        assert_allclose_ranks(r, reference_pagerank(g), rtol=1e-2)


class TestProgramContract:
    """Every program honours the VertexProgram contract."""

    @pytest.mark.parametrize("name", ["BFS", "SSSP", "CC", "PR"])
    def test_step_is_deterministic(self, name, small_social):
        g = small_social.with_random_weights() if name == "SSSP" else small_social
        runs = []
        for _ in range(2):
            p = make_program(name, **({"source": 0} if name in ("BFS", "SSSP") else {}))
            runs.append(p.run_reference(g))
        assert np.array_equal(runs[0], runs[1])

    @pytest.mark.parametrize("name", ["BFS", "SSSP", "CC", "PR"])
    def test_iteration_counter_advances(self, name, tiny_grid):
        g = tiny_grid.with_random_weights() if name == "SSSP" else tiny_grid
        p = make_program(name, **({"source": 0} if name in ("BFS", "SSSP") else {}))
        state = p.init_state(g)
        p.step(g, state)
        assert state.iteration == 1

    def test_max_iterations_caps_pr(self, small_social):
        p = PageRank(tol=1e-12)
        p.max_iterations = 3
        state = p.init_state(small_social)
        while state.active.any() and not p.done(state):
            p.step(small_social, state)
        assert state.iteration == 3
