"""Tests for the persistent result cache: hits, misses, invalidation."""

import json

import numpy as np
import pytest

from repro.harness.experiments import run_cell
from repro.runner import ResultCache, RunSpec, code_version

SCALE = 5e-5

SPEC = RunSpec("FK", "BFS", "Subway", scale=SCALE)


@pytest.fixture(scope="module")
def result():
    return run_cell(SPEC)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert cache.lookup(SPEC) is None
        assert cache.stats.misses == 1
        cache.store(SPEC, result)
        assert cache.stats.stores == 1
        replay = cache.lookup(SPEC)
        assert replay is not None
        assert cache.stats.hits == 1
        assert np.array_equal(replay.values, result.values)
        assert replay.elapsed_seconds == result.elapsed_seconds
        assert replay.metrics.as_dict() == result.metrics.as_dict()
        assert replay.extra == result.extra
        assert [r.__dict__ for r in replay.per_iteration] == [
            r.__dict__ for r in result.per_iteration
        ]

    def test_persists_across_instances(self, tmp_path, result):
        ResultCache(tmp_path).store(SPEC, result)
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(SPEC) is not None
        assert fresh.stats.hits == 1

    def test_distinct_specs_do_not_collide(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(SPEC, result)
        other = RunSpec("FK", "BFS", "Subway", scale=SCALE, memory_bytes=1 << 22)
        assert cache.lookup(other) is None


class TestInvalidation:
    def test_code_version_mismatch_counts(self, tmp_path, result):
        ResultCache(tmp_path, version="v1").store(SPEC, result)
        cache = ResultCache(tmp_path, version="v2")
        assert cache.lookup(SPEC) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        # Recompute + store under v2 makes it a hit again.
        cache.store(SPEC, result)
        assert cache.lookup(SPEC) is not None
        assert cache.stats.hits == 1

    def test_corrupt_entry_counts(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.store(SPEC, result)
        path.write_text("{not json")
        assert cache.lookup(SPEC) is None
        assert cache.stats.invalidations == 1

    def test_entry_names_spec_for_inspection(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.store(SPEC, result)
        entry = json.loads(path.read_text())
        assert entry["spec"]["dataset"] == "FK"
        assert entry["spec"]["engine"] == "Subway"
        assert entry["code_version"] == code_version()

    def test_default_version_is_code_version(self, tmp_path):
        assert ResultCache(tmp_path).version == code_version()
