"""Tests for the algorithm extensions: delta-stepping SSSP and pull PR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRankPull, SSSP, make_program
from repro.algorithms.frontier import active_edge_count
from repro.algorithms.validate import (
    assert_allclose_ranks,
    reference_pagerank,
    reference_sssp_distances,
)
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.properties import best_source


def total_relaxed(graph, program):
    state = program.init_state(graph)
    total = 0
    while state.active.any() and not program.done(state):
        total += active_edge_count(graph, state.active)
        program.step(graph, state)
    return total, program.values(state), state.iteration


class TestDeltaStepping:
    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            SSSP(delta=0)

    def test_exactness(self, small_web):
        g = small_web.with_random_weights(high=32, seed=5)
        src = best_source(g)
        ref = reference_sssp_distances(g, src)
        for delta in (1, 8, 64):
            _, values, _ = total_relaxed(g, SSSP(source=src, delta=delta))
            assert np.array_equal(values, ref), delta

    def test_prunes_relaxations_on_weighted_deep_graph(self, small_web):
        g = small_web.with_random_weights(high=32, seed=5)
        src = best_source(g)
        plain, _, _ = total_relaxed(g, SSSP(source=src))
        stepped, _, _ = total_relaxed(g, SSSP(source=src, delta=8))
        assert stepped < 0.6 * plain

    def test_huge_delta_degenerates_to_bellman_ford(self, small_web):
        g = small_web.with_random_weights(high=4, seed=5)
        src = best_source(g)
        plain, _, it_plain = total_relaxed(g, SSSP(source=src))
        huge, _, it_huge = total_relaxed(g, SSSP(source=src, delta=10**9))
        assert huge == plain
        assert it_huge == it_plain

    def test_unreachable_stays_inf(self):
        from repro.algorithms.sssp import INF_DIST

        g = path_graph(5).with_weights([1, 1, 1, 1])
        _, values, _ = total_relaxed(g, SSSP(source=2, delta=2))
        assert values[0] == INF_DIST and values[1] == INF_DIST

    @given(st.integers(0, 300), st.integers(1, 40))
    @settings(max_examples=15)
    def test_property_exact_for_any_delta(self, seed, delta):
        g = erdos_renyi_graph(40, 200, seed=seed).with_random_weights(
            high=16, seed=seed
        )
        src = seed % g.n_vertices
        _, values, _ = total_relaxed(g, SSSP(source=src, delta=delta))
        assert np.array_equal(values, reference_sssp_distances(g, src))

    def test_runs_under_engines(self, small_web):
        from conftest import TEST_SCALE, make_spec_for
        from repro.core.ascetic import AsceticEngine

        g = small_web.with_random_weights(high=16, seed=3)
        src = best_source(g)
        res = AsceticEngine(spec=make_spec_for(g), data_scale=TEST_SCALE).run(
            g, SSSP(source=src, delta=8)
        )
        assert np.array_equal(res.values, reference_sssp_distances(g, src))


class TestPageRankPull:
    def test_registered(self):
        assert make_program("PR-PULL").name == "PR-PULL"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageRankPull(damping=0.0)
        with pytest.raises(ValueError):
            PageRankPull(tol=-1)

    def test_matches_linear_system(self, small_social):
        rev = small_social.reverse()
        r = PageRankPull(tol=1e-5).run_reference(rev)
        assert_allclose_ranks(r, reference_pagerank(small_social), rtol=5e-3)

    def test_matches_push_variant(self, small_web):
        push = make_program("PR", tol=1e-5).run_reference(small_web)
        pull = PageRankPull(tol=1e-5).run_reference(small_web.reverse())
        assert np.allclose(push, pull, rtol=1e-2, atol=1e-9)

    def test_everything_active_every_iteration(self, small_social):
        """The pull mode's defining (and damning) property."""
        rev = small_social.reverse()
        p = PageRankPull(tol=1e-3)
        state = p.init_state(rev)
        assert state.active.all()
        p.step(rev, state)
        if state.active.any():
            assert state.active.all()

    def test_pull_streams_more_than_push(self, small_social):
        """Why the paper pushes (§3.1): pull's full-scan iterations move
        far more data through an out-of-memory engine."""
        from conftest import TEST_SCALE, make_spec_for
        from repro.engines.subway import SubwayEngine

        spec = make_spec_for(small_social, edge_fraction=0.4)
        push = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("PR", tol=1e-2)
        )
        pull = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social.reverse(), make_program("PR-PULL", tol=1e-2)
        )
        per_iter_push = push.metrics.bytes_h2d / push.iterations
        per_iter_pull = pull.metrics.bytes_h2d / pull.iterations
        assert per_iter_pull > per_iter_push
