"""Cross-device determinism: sharded runs match single-device bit for bit.

The acceptance tests of the fleet refactor's engine layer live here: a
4-device :class:`~repro.engines.sharded.ShardedEngine` run produces value
arrays and run digests bit-identical to the single-device engines (for
both Ascetic and Hybrid inners), twice-run digests are identical, and a
graph whose edge array exceeds every single device's capacity still
completes on the fabric.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.engines import registry
from repro.engines.sharded import ShardedEngine
from repro.gpusim.fabric import FabricSpec
from repro.graph.properties import best_source
from repro.harness.persistence import result_to_payload

from conftest import TEST_SCALE, make_spec_for


def run_engine(name, graph, program_factory, **opts):
    engine = registry.create(name, spec=make_spec_for(graph),
                             data_scale=TEST_SCALE, **opts)
    return engine.run(graph, program_factory())


def payload_digest(result) -> str:
    blob = json.dumps(result_to_payload(result), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class TestConstruction:
    def test_defaults(self):
        eng = ShardedEngine()
        assert eng.fabric_spec.n_devices == 2
        assert eng.inner == "Ascetic"

    def test_shorthand_and_spec_agree(self):
        eng = ShardedEngine(devices=4, topology="nvlink")
        assert eng.fabric_spec == FabricSpec(n_devices=4, topology="nvlink")

    def test_fabric_dict_accepted(self):
        eng = ShardedEngine(fabric={"n_devices": 3, "topology": "nvlink"})
        assert eng.fabric_spec.n_devices == 3

    def test_contradictory_shorthand_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(fabric=FabricSpec(n_devices=2), devices=4)

    def test_rejects_sharded_inner(self):
        with pytest.raises(ValueError):
            ShardedEngine(inner="Sharded")

    def test_accepts_fault_plan(self):
        # Chaos mode used to be rejected; fleet fault tolerance made the
        # plan a first-class constructor argument.
        from repro.gpusim.faults import standard_plan
        eng = ShardedEngine(fault_plan=standard_plan())
        assert eng.fault_plan is not None

    def test_registered_with_opts(self):
        info = registry.describe("Sharded")
        assert not info.supports_warm_start
        assert set(info.supported_engine_opts) >= {
            "fabric", "devices", "topology", "inner"}

    def test_unknown_opt_rejected_by_registry(self):
        with pytest.raises(TypeError, match="chunk_bytes"):
            registry.create("Sharded", chunk_bytes=4096)


class TestCrossDeviceDeterminism:
    """4-device runs are bit-identical to 1-device runs, Ascetic + Hybrid."""

    @pytest.mark.parametrize("algo", ["BFS", "PR"])
    def test_matches_single_device_ascetic(self, small_social, algo):
        if algo == "BFS":
            factory = lambda: make_program(
                "BFS", source=best_source(small_social))
        else:
            factory = lambda: make_program("PR", tol=1e-3)
        single = run_engine("Ascetic", small_social, factory)
        sharded = run_engine("Sharded", small_social, factory,
                             devices=4, inner="Ascetic")
        assert np.array_equal(single.values, sharded.values)
        assert single.iterations == sharded.iterations

    def test_sssp_matches_single_device_hybrid(self, small_social):
        weighted = small_social.with_random_weights(high=64)
        factory = lambda: make_program(
            "SSSP", source=best_source(weighted))
        single = run_engine("Hybrid", weighted, factory)
        sharded = run_engine("Sharded", weighted, factory,
                             devices=4, inner="Hybrid")
        assert np.array_equal(single.values, sharded.values)

    def test_hybrid_and_ascetic_inners_agree(self, small_web):
        factory = lambda: make_program("CC")
        a = run_engine("Sharded", small_web, factory,
                       devices=4, inner="Ascetic")
        h = run_engine("Sharded", small_web, factory,
                       devices=4, inner="Hybrid")
        assert np.array_equal(a.values, h.values)

    def test_twice_run_digest_identical(self, small_social):
        factory = lambda: make_program(
            "BFS", source=best_source(small_social))
        d1 = payload_digest(run_engine("Sharded", small_social, factory,
                                       devices=4))
        d2 = payload_digest(run_engine("Sharded", small_social, factory,
                                       devices=4))
        assert d1 == d2

    def test_single_device_fabric_degenerates(self, small_social):
        factory = lambda: make_program(
            "BFS", source=best_source(small_social))
        single = run_engine("Ascetic", small_social, factory)
        one_dev = run_engine("Sharded", small_social, factory,
                             devices=1)
        assert np.array_equal(single.values, one_dev.values)


class TestShardedRunShape:
    def test_extras_and_exchange_accounting(self, small_social):
        factory = lambda: make_program(
            "BFS", source=best_source(small_social))
        res = run_engine("Sharded", small_social, factory, devices=4)
        assert res.extra["n_devices"] == 4.0
        assert res.extra["exchange_bytes"] > 0
        per_dev = [res.extra[f"device{d}_exchange_bytes"] for d in range(4)]
        assert sum(per_dev) == pytest.approx(res.extra["exchange_bytes"])
        for d in range(4):
            frac = res.extra[f"device{d}_gpu_busy_frac"]
            assert 0.0 <= frac <= 1.0
        assert "Texchange" in res.metrics.phase_seconds
        assert res.metrics.phase_seconds["Texchange"] > 0

    def test_resume_not_supported(self, small_social):
        eng = ShardedEngine(spec=make_spec_for(small_social),
                            data_scale=TEST_SCALE)
        program = make_program("BFS", source=0)
        with pytest.raises(NotImplementedError):
            eng.run(small_social, program, resume_from=object())


class TestOutOfSingleDeviceCapacity:
    """The capacity claim: a graph whose edge array exceeds *every* single
    device still completes when sharded across the fabric."""

    def test_completes_beyond_single_device_capacity(self, small_social):
        g = small_social
        # Each device can hold vertex state plus ~40% of the edges — the
        # whole edge array fits no single device.
        cap = g.vertex_state_bytes + int(g.edge_array_bytes * 0.4)
        fabric = FabricSpec(n_devices=4, device_mems=(cap,) * 4)
        assert g.edge_array_bytes > cap  # the premise
        factory = lambda: make_program("BFS", source=best_source(g))

        reference = run_engine("Ascetic", g, factory)
        engine = registry.create("Sharded", spec=make_spec_for(g),
                                 data_scale=TEST_SCALE, fabric=fabric)
        res = engine.run(g, factory())
        assert np.array_equal(reference.values, res.values)
        # Every shard's slice actually fit its device (the extra is at
        # paper scale; cap is in scaled units like device_mems).
        assert res.extra["max_shard_edge_bytes"] * TEST_SCALE <= cap

        # Twice-run digests are bit-identical (the acceptance pin).
        engine2 = registry.create("Sharded", spec=make_spec_for(g),
                                  data_scale=TEST_SCALE, fabric=fabric)
        assert payload_digest(res) == payload_digest(engine2.run(g, factory()))
