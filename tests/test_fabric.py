"""Tests for the multi-device fabric: specs, topology, and shared-log charging."""

import pytest

from repro.gpusim.device import GPUSpec
from repro.gpusim.events import fold_device_metrics, lane_key, validate_log
from repro.gpusim.fabric import (
    NVLINK_BANDWIDTH,
    NVLINK_LATENCY,
    Fabric,
    FabricSpec,
    FabricTopology,
    LinkSpec,
    fold_exchange_bytes,
)


class TestFabricSpec:
    def test_defaults(self):
        spec = FabricSpec()
        assert spec.n_devices == 1
        assert spec.topology == "pcie"
        assert spec.device_mems is None

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError, match="topology"):
            FabricSpec(topology="infiniband")

    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError, match="n_devices"):
            FabricSpec(n_devices=0)

    def test_rejects_mismatched_device_mems(self):
        with pytest.raises(ValueError, match="device_mems"):
            FabricSpec(n_devices=3, device_mems=(100, 200))

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError, match="positive"):
            FabricSpec(n_devices=2, device_mems=(100, 0))

    def test_roundtrip(self):
        spec = FabricSpec(n_devices=4, topology="nvlink",
                          device_mems=(10, 20, 30, 40),
                          d2d_bandwidth=1e9, d2d_latency=1e-6,
                          h2d_bandwidth=2e9)
        assert FabricSpec.from_dict(spec.to_dict()) == spec

    def test_default_roundtrip_is_compact(self):
        spec = FabricSpec(n_devices=2)
        d = spec.to_dict()
        assert d == {"n_devices": 2, "topology": "pcie"}
        assert FabricSpec.from_dict(d) == spec

    def test_heterog_style_dict(self):
        # The HeteroG config idiom: device memories as floats, both link
        # bandwidths as one [d2d, h2d] pair in MB/s, often strings.
        spec = FabricSpec.from_dict({
            "device_mems": [13e9, 13e9, 10e9, 10e9],
            "bandwidth": ["10000", "747"],
            "topology": "nvlink",
        })
        assert spec.n_devices == 4  # inferred from device_mems
        assert spec.device_mems == (int(13e9), int(13e9),
                                    int(10e9), int(10e9))
        assert spec.d2d_bandwidth == pytest.approx(10000 * 1e6)
        assert spec.h2d_bandwidth == pytest.approx(747 * 1e6)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FabricSpec.from_dict({"n_devices": 2, "nvlinks": 4})

    def test_memory_of_and_scaled(self):
        spec = FabricSpec(n_devices=2, device_mems=(1000, 2000))
        assert spec.memory_of(1, default=7) == 2000
        assert FabricSpec(n_devices=2).memory_of(1, default=7) == 7
        shrunk = spec.scaled(0.5)
        assert shrunk.device_mems == (500, 1000)
        assert FabricSpec(n_devices=2).scaled(0.5).device_mems is None


class TestLinkSpec:
    def test_transfer_seconds(self):
        link = LinkSpec(kind="pcie", bandwidth=1e9, latency=1e-5)
        assert link.transfer_seconds(0) == 0.0
        assert link.transfer_seconds(1_000_000) == pytest.approx(
            1e-5 + 1_000_000 / 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(kind="pcie", bandwidth=0.0, latency=0.0)
        with pytest.raises(ValueError):
            LinkSpec(kind="pcie", bandwidth=1.0, latency=-1.0)


class TestFabricTopology:
    def test_pcie_peer_link_bounces_through_host(self):
        base = GPUSpec()
        topo = FabricTopology(FabricSpec(n_devices=2, topology="pcie"), base)
        assert topo.device_link.kind == "pcie"
        assert topo.device_link.bandwidth == pytest.approx(
            topo.host_link.bandwidth / 2)
        assert topo.device_link.latency == pytest.approx(
            topo.host_link.latency * 2)

    def test_nvlink_defaults(self):
        topo = FabricTopology(FabricSpec(n_devices=2, topology="nvlink"),
                              GPUSpec())
        assert topo.device_link.kind == "nvlink"
        assert topo.device_link.bandwidth == NVLINK_BANDWIDTH
        assert topo.device_link.latency == NVLINK_LATENCY
        # NVLink-class peers are an order of magnitude above host PCIe.
        assert topo.device_link.bandwidth > topo.host_link.bandwidth

    def test_link_selection(self):
        topo = FabricTopology(FabricSpec(n_devices=2), GPUSpec())
        assert topo.link(-1, 0) is topo.host_link
        assert topo.link(0, -1) is topo.host_link
        assert topo.link(0, 1) is topo.device_link
        with pytest.raises(ValueError, match="itself"):
            topo.link(1, 1)

    def test_per_device_gpu_spec(self):
        spec = FabricSpec(n_devices=2, device_mems=(111_111, 222_222),
                          h2d_bandwidth=5e8)
        topo = FabricTopology(spec, GPUSpec())
        assert topo.gpu_spec(0).memory_bytes == 111_111
        assert topo.gpu_spec(1).memory_bytes == 222_222
        assert topo.gpu_spec(0).pcie.bandwidth == pytest.approx(5e8)


class TestFabric:
    def make(self, n=2, **kw):
        kw.setdefault("record_events", True)
        return Fabric(FabricSpec(n_devices=n), **kw)

    def test_devices_share_clock_and_log(self):
        fab = self.make()
        assert fab.devices[0].clock is fab.devices[1].clock is fab.clock
        assert fab.devices[0].events is fab.devices[1].events is fab.events

    def test_lane_keys_are_device_qualified(self):
        fab = self.make()
        fab.devices[0].h2d(1000, label="a")
        fab.devices[1].edge_kernel(500, label="b")
        keys = set(fab.events.lane_stats)
        assert "copy@0" in keys
        assert "gpu@1" in keys

    def test_transfer_charges_sender_link_port(self):
        fab = self.make()
        end = fab.transfer(0, 1, 10_000, label="halo")
        assert end > 0
        (e,) = [e for e in fab.events.events if e.kind == "d2d"]
        assert e.device == 0  # the sender's port
        assert lane_key(e) == "link@0"
        assert dict(e.extra)["bytes"] == 10_000.0
        assert dict(e.extra)["dst"] == 1.0
        assert fab.exchange_bytes == 10_000
        assert fab.exchange_bytes_of(0) == 10_000
        assert fab.exchange_bytes_of(1) == 0

    def test_transfer_charge_scale(self):
        fab = Fabric(FabricSpec(n_devices=2), charge_scale=100.0,
                     record_events=True)
        fab.transfer(0, 1, 10)
        assert fab.exchange_bytes == 1000  # scaled-bytes x charge_scale

    def test_zero_byte_transfer_is_free(self):
        fab = self.make()
        fab.transfer(0, 1, 0)
        assert fab.exchange_bytes == 0
        assert not [e for e in fab.events.events if e.kind == "d2d"]

    def test_fold_exchange_matches_incremental(self):
        fab = self.make(n=3)
        fab.all_exchange({(0, 1): 100, (1, 2): 250, (2, 0): 50})
        folded = fold_exchange_bytes(fab.events.events)
        assert folded == {0: 100, 1: 250, 2: 50}
        assert sum(folded.values()) == fab.exchange_bytes

    def test_senders_overlap_but_each_port_serializes(self):
        fab = self.make(n=2)
        # Two sends from the same port serialize; sends from different
        # ports start together.
        t1 = fab.transfer(0, 1, 1_000_000)
        t2 = fab.transfer(0, 1, 1_000_000)
        assert t2 == pytest.approx(2 * t1)
        t3 = fab.transfer(1, 0, 1_000_000)
        assert t3 == pytest.approx(t1)

    def test_sync_all_advances_clock(self):
        fab = self.make()
        fab.devices[1].edge_kernel(10_000, label="k")
        end = fab.transfer(0, 1, 1_000_000)
        horizon = fab.sync_all()
        assert horizon >= end
        assert fab.elapsed == horizon

    def test_phase_attribution(self):
        fab = self.make()
        with fab.phase("Texchange", iteration=3):
            fab.transfer(0, 1, 1000)
        (e,) = [e for e in fab.events.events if e.kind == "d2d"]
        assert e.phase == "Texchange"
        assert e.iteration == 3

    def test_per_device_metrics_fold(self):
        fab = self.make()
        fab.devices[0].h2d(1_000_000, label="fill")
        fab.devices[1].h2d(64_000, label="fill")
        per_dev = fold_device_metrics(fab.events.events)
        # Each device's slice of the shared log folds independently
        # (sizes round up to the transfer granule, so compare, not pin).
        assert per_dev[0].h2d_transfers == 1
        assert per_dev[1].h2d_transfers == 1
        assert per_dev[0].bytes_h2d >= 1_000_000
        assert per_dev[1].bytes_h2d < per_dev[0].bytes_h2d

    def test_log_validates(self):
        fab = self.make()
        fab.devices[0].h2d(4096, label="fill")
        fab.devices[1].edge_kernel(100, label="k")
        fab.transfer(0, 1, 500)
        horizon = fab.sync_all()
        validate_log(fab.events, horizon=horizon)

    def test_gpu_idle_fraction_per_device(self):
        fab = self.make()
        fab.devices[0].edge_kernel(10_000, label="k")
        fab.sync_all()
        assert fab.gpu_idle_fraction(0) < 1.0
        assert fab.gpu_idle_fraction(1) == pytest.approx(1.0)
