"""Tests for SubCSR materialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_program
from repro.engines.subway import OFFSET_BYTES_PER_ACTIVE_VERTEX, SubwayEngine
from repro.graph.generators import rmat_graph
from repro.graph.subgraph import extract_subgraph
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


class TestExtraction:
    def test_empty_mask(self, small_rmat):
        sub = extract_subgraph(small_rmat, np.zeros(small_rmat.n_vertices, bool))
        assert sub.n_vertices == 0 and sub.n_edges == 0
        assert sub.nbytes == 0

    def test_full_mask_is_whole_graph(self, small_rmat):
        sub = extract_subgraph(small_rmat, np.ones(small_rmat.n_vertices, bool))
        assert sub.n_edges == small_rmat.n_edges
        assert np.array_equal(sub.indices, small_rmat.indices)
        sub.validate_against(small_rmat)

    def test_partial_mask(self, small_rmat):
        rng = np.random.default_rng(5)
        mask = rng.random(small_rmat.n_vertices) < 0.3
        sub = extract_subgraph(small_rmat, mask)
        sub.validate_against(small_rmat)
        assert np.array_equal(sub.vertices, np.nonzero(mask)[0])
        # Compacted adjacency equals per-vertex slices of the original.
        for i, v in enumerate(sub.vertices[:20]):
            got = sub.indices[sub.indptr[i] : sub.indptr[i + 1]]
            assert np.array_equal(got, small_rmat.neighbors(v))

    def test_weighted(self, small_rmat):
        g = small_rmat.with_random_weights(seed=2)
        mask = np.zeros(g.n_vertices, dtype=bool)
        mask[:50] = True
        sub = extract_subgraph(g, mask)
        sub.validate_against(g)
        assert sub.weights is not None

    def test_nbytes_matches_cost_formula(self, small_rmat):
        """The materialized buffer is byte-for-byte what the model charges."""
        rng = np.random.default_rng(7)
        for frac in (0.05, 0.4, 1.0):
            mask = rng.random(small_rmat.n_vertices) < frac
            sub = extract_subgraph(small_rmat, mask)
            expect = (
                sub.n_edges * small_rmat.bytes_per_edge
                + int(mask.sum()) * OFFSET_BYTES_PER_ACTIVE_VERTEX
            )
            assert sub.nbytes == expect

    def test_shape_mismatch(self, tiny_path):
        with pytest.raises(ValueError):
            extract_subgraph(tiny_path, np.zeros(2, bool))

    def test_validate_catches_corruption(self, small_rmat):
        mask = np.ones(small_rmat.n_vertices, dtype=bool)
        sub = extract_subgraph(small_rmat, mask)
        sub.indices[0] += 1
        with pytest.raises(AssertionError):
            sub.validate_against(small_rmat)

    @given(st.integers(0, 2**20 - 1))
    @settings(max_examples=20)
    def test_property_roundtrip(self, bits):
        g = rmat_graph(6, 500, seed=23, directed=True)
        mask = np.array([(bits >> (i % 20)) & 1 for i in range(g.n_vertices)],
                        dtype=bool)
        sub = extract_subgraph(g, mask)
        sub.validate_against(g)
        assert sub.degree().sum() == sub.n_edges
        assert np.all(np.diff(sub.positions) > 0)  # CSR order preserved


class TestMaterializedSubway:
    def test_same_accounting_as_costed_mode(self, small_social):
        """materialize=True must charge the identical bytes and produce the
        identical timeline — the cost model is exactly the materialization."""
        spec = make_spec_for(small_social, edge_fraction=0.4)
        prog = lambda: make_program("BFS", source=best_source(small_social))
        costed = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, prog()
        )
        staged = SubwayEngine(
            spec=spec, data_scale=TEST_SCALE, materialize=True
        ).run(small_social, prog())
        assert staged.metrics.bytes_h2d == costed.metrics.bytes_h2d
        assert staged.elapsed_seconds == costed.elapsed_seconds
        assert np.array_equal(staged.values, costed.values)
