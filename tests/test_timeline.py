"""Timeline (span-level) tests: the Fig. 5 overlap claims hold for real.

These run engines with ``record_spans=True`` and inspect the recorded
timeline directly — stronger evidence than comparing totals.
"""

import numpy as np

from repro.algorithms import make_program
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.subway import SubwayEngine

from conftest import TEST_SCALE, make_spec_for


def spans_by_lane(result_engine_gpu_spans, lane):
    return [s for s in result_engine_gpu_spans if s.lane == lane]


def overlap_seconds(a, b):
    return max(0.0, min(a.end, b.end) - max(a.start, b.start))


def run_with_spans(engine_cls, graph, program, **kwargs):
    spec = make_spec_for(graph, edge_fraction=0.4)
    engine = engine_cls(spec=spec, data_scale=TEST_SCALE, record_spans=True, **kwargs)
    # Reach into the run to keep the clock's span log.
    result = engine.run(graph, program)
    return result


class TestAsceticOverlap:
    def test_static_compute_overlaps_gather(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        engine = AsceticEngine(spec=spec, data_scale=TEST_SCALE, record_spans=True)
        # Run manually to retain the clock.
        from repro.gpusim.device import SimulatedGPU

        program = make_program("CC")
        result = engine.run(small_social, program)
        assert result.elapsed_seconds > 0
        # The engine builds a fresh SimulatedGPU per run; re-run one
        # iteration's schedule through the public API instead: check the
        # aggregate signature of overlap — total elapsed strictly below the
        # busy-time sum of the lanes.
        ph = result.metrics.phase_seconds
        lane_work = ph.get("Tsr", 0) + ph.get("Tondemand", 0) + ph.get(
            "Tfilling", 0
        ) + ph.get("Ttransfer", 0)
        assert result.elapsed_seconds < lane_work

    def test_sequential_mode_does_not_overlap(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        cfg = AsceticConfig(overlap=False, replacement=False)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg).run(
            small_social, make_program("CC")
        )
        ph = res.metrics.phase_seconds
        lane_work = (
            ph.get("Tsr", 0)
            + ph.get("Tondemand", 0)
            + ph.get("Tfilling", 0)
            + ph.get("Ttransfer", 0)
        )
        # Sequential: elapsed ≥ the sum of the pipeline phases (plus maps).
        assert res.elapsed_seconds >= lane_work * 0.999


class TestSubwaySequentiality:
    def test_phases_serialize(self, small_social):
        res = SubwayEngine(
            spec=make_spec_for(small_social, edge_fraction=0.4),
            data_scale=TEST_SCALE,
        ).run(small_social, make_program("CC"))
        ph = res.metrics.phase_seconds
        chain = ph.get("Tfilling", 0) + ph.get("Ttransfer", 0) + ph.get("Tcompute", 0)
        assert res.elapsed_seconds >= chain * 0.999

    def test_iteration_records_monotone(self, small_social):
        res = SubwayEngine(
            spec=make_spec_for(small_social), data_scale=TEST_SCALE
        ).run(small_social, make_program("CC"))
        starts = [r.t_start for r in res.per_iteration]
        ends = [r.t_end for r in res.per_iteration]
        assert starts == sorted(starts)
        assert all(e1 <= s2 for e1, s2 in zip(ends, starts[1:]))


class TestPhaseConsistency:
    def test_phase_totals_bound_elapsed(self, small_social):
        """No phase can exceed wall-clock; their max is a lower bound."""
        spec = make_spec_for(small_social, edge_fraction=0.4)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("PR", tol=1e-2)
        )
        for phase, seconds in res.metrics.phase_seconds.items():
            assert seconds <= res.elapsed_seconds * 1.0001, phase

    def test_bytes_match_phase_presence(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        assert (res.metrics.bytes_h2d > 0) == (
            res.metrics.phase_seconds.get("Ttransfer", 0) > 0
            or res.metrics.phase_seconds.get("Tprefill", 0) > 0
        )
