"""End-to-end chaos: every engine × BFS/PR under the standard fault plan.

The acceptance contract: under ``standard_plan()`` every engine completes,
its event log validates, and its vertex values are bit-identical to the
fault-free run — chaos moves the clock, never the answer.  Plus the
determinism guarantees: same seed ⇒ identical runs (serial, parallel, and
through ``run_grid``), and chaos fields round-trip through ``RunSpec``
without disturbing pre-chaos cache keys.
"""

import numpy as np
import pytest

from repro.gpusim.events import FAULT_KINDS, validate_log
from repro.gpusim.faults import FaultPlan, standard_plan
from repro.harness.experiments import make_workload, run_workload
from repro.runner import RunSpec, run_grid

SCALE = 5e-5
ENGINES = ("PT", "UVM", "Subway", "Ascetic")


def _fingerprint(result):
    return (
        result.values.tobytes(),
        result.iterations,
        result.elapsed_seconds,
        tuple(sorted(result.metrics.as_dict().items())),
        tuple(sorted(result.extra.items())),
    )


class TestChaosGrid:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("algo", ("BFS", "PR"))
    def test_chaos_run_matches_fault_free(self, engine, algo):
        w = make_workload("GS", algo, scale=SCALE)
        baseline = run_workload(w, engine)
        chaos = run_workload(w, engine, record_events=True,
                             fault_plan=standard_plan(), seed=11)
        assert np.array_equal(chaos.values, baseline.values)
        assert chaos.iterations == baseline.iterations
        validate_log(chaos.event_log, metrics=chaos.metrics,
                     horizon=chaos.elapsed_seconds)
        # The standard plan guarantees at least its alloc fault and the
        # startup degradation window fired.
        assert chaos.extra["fault_alloc_fail"] >= 1.0
        assert chaos.extra["fault_degradation_windows"] >= 1.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_transfer_faults_only_add_time(self, engine):
        # Pure transfer faults never change the schedule's *shape* (no
        # repartitioning, no shrinking — those can accidentally improve
        # overlap), so they can only add retry/backoff time.
        plan = FaultPlan(transfer_fail_rate=0.1, max_retries=8)
        w = make_workload("GS", "BFS", scale=SCALE)
        baseline = run_workload(w, engine)
        chaos = run_workload(w, engine, fault_plan=plan, seed=11)
        assert np.array_equal(chaos.values, baseline.values)
        assert chaos.elapsed_seconds >= baseline.elapsed_seconds
        if chaos.metrics.transfer_faults:
            assert chaos.elapsed_seconds > baseline.elapsed_seconds


class TestChaosDeterminism:
    def test_same_seed_identical_runs(self):
        w = make_workload("GS", "BFS", scale=SCALE)
        a = run_workload(w, "Ascetic", fault_plan=standard_plan(), seed=11)
        b = run_workload(w, "Ascetic", fault_plan=standard_plan(), seed=11)
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seed_diverges(self):
        # High rates so two seeds almost surely inject different faults.
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        w = make_workload("GS", "BFS", scale=SCALE)
        a = run_workload(w, "Subway", fault_plan=plan, seed=1)
        b = run_workload(w, "Subway", fault_plan=plan, seed=2)
        assert np.array_equal(a.values, b.values)  # answers never change
        assert a.elapsed_seconds != b.elapsed_seconds

    def test_fault_events_visible_in_recorded_log(self):
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        w = make_workload("GS", "BFS", scale=SCALE)
        res = run_workload(w, "Subway", record_events=True,
                           fault_plan=plan, seed=1)
        kinds = {e.kind for e in res.event_log.events}
        assert kinds & FAULT_KINDS
        assert res.metrics.retry_seconds > 0.0


class TestChaosThroughRunner:
    def test_serial_parallel_and_cache_agree_under_chaos(self, tmp_path):
        spec = RunSpec("GS", "BFS", "Ascetic", scale=SCALE,
                       seed=11, fault_plan=standard_plan())
        serial = run_grid([spec], jobs=1)
        parallel = run_grid([spec], jobs=2, cache=tmp_path)
        cached = run_grid([spec], jobs=1, cache=tmp_path)
        assert serial.cells[0].status == "ok"
        assert parallel.cells[0].status == "ok"
        assert cached.cells[0].status == "cached"
        fp = _fingerprint(serial.cells[0].result)
        assert fp == _fingerprint(parallel.cells[0].result)
        assert fp == _fingerprint(cached.cells[0].result)

    def test_spec_round_trips_chaos_fields(self):
        spec = RunSpec("GS", "BFS", "Ascetic", scale=SCALE,
                       seed=11, fault_plan=standard_plan())
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache_key() == spec.cache_key()

    def test_chaos_fields_do_not_disturb_plain_cache_keys(self):
        plain = RunSpec("GS", "BFS", "Ascetic", scale=SCALE)
        assert "seed" not in plain.to_dict()
        assert "fault_plan" not in plain.to_dict()
        chaos = RunSpec("GS", "BFS", "Ascetic", scale=SCALE,
                        seed=11, fault_plan=standard_plan())
        assert chaos.cache_key() != plain.cache_key()
