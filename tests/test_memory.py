"""Tests for the device-memory allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.memory import DeviceMemory, GPUOutOfMemory


class TestAllocator:
    def test_alloc_and_accounting(self):
        m = DeviceMemory(1000)
        a = m.alloc("a", 400)
        assert m.used == 400 and m.available == 600
        b = m.alloc("b", 600)
        assert m.available == 0
        m.free(a)
        assert m.available == 400
        m.free(b)
        assert m.used == 0

    def test_oom_raises(self):
        m = DeviceMemory(100)
        with pytest.raises(GPUOutOfMemory):
            m.alloc("big", 101)

    def test_oom_after_partial_fill(self):
        m = DeviceMemory(100)
        m.alloc("a", 60)
        with pytest.raises(GPUOutOfMemory):
            m.alloc("b", 41)

    def test_duplicate_name_rejected(self):
        m = DeviceMemory(100)
        m.alloc("x", 10)
        with pytest.raises(ValueError):
            m.alloc("x", 10)

    def test_name_reusable_after_free(self):
        m = DeviceMemory(100)
        a = m.alloc("x", 10)
        m.free(a)
        m.alloc("x", 20)
        assert m.used == 20

    def test_double_free_rejected(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 10)
        m.free(a)
        with pytest.raises(ValueError):
            m.free(a)

    def test_zero_sized_alloc(self):
        m = DeviceMemory(10)
        a = m.alloc("z", 0)
        assert m.used == 0
        m.free(a)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(10).alloc("n", -1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)

    def test_live_allocations_snapshot(self):
        m = DeviceMemory(100)
        m.alloc("a", 10)
        m.alloc("b", 20)
        assert m.live_allocations() == {"a": 10, "b": 20}


class TestResize:
    def test_grow(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 10)
        m.resize(a, 50)
        assert m.used == 50 and a.nbytes == 50

    def test_shrink(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 80)
        m.resize(a, 30)
        assert m.available == 70

    def test_grow_beyond_capacity_rejected(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 50)
        m.alloc("b", 40)
        with pytest.raises(GPUOutOfMemory):
            m.resize(a, 70)

    def test_resize_freed_rejected(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 10)
        m.free(a)
        with pytest.raises(ValueError):
            m.resize(a, 20)

    def test_resize_to_zero(self):
        m = DeviceMemory(100)
        a = m.alloc("a", 10)
        m.resize(a, 0)
        assert m.used == 0


@given(st.lists(st.tuples(st.sampled_from("grow shrink free".split()), st.integers(0, 50)), max_size=30))
def test_property_accounting_never_negative(ops):
    """Arbitrary alloc/resize/free sequences keep 0 <= used <= capacity."""
    m = DeviceMemory(500)
    live = []
    counter = 0
    for op, size in ops:
        try:
            if op == "grow":
                live.append(m.alloc(f"a{counter}", size))
                counter += 1
            elif op == "shrink" and live:
                m.resize(live[-1], size)
            elif op == "free" and live:
                m.free(live.pop())
        except GPUOutOfMemory:
            pass
        assert 0 <= m.used <= m.capacity
        assert m.used == sum(a.nbytes for a in live)
