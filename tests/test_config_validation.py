"""Configuration-validation tests: every bad knob fails loudly and early."""

import pytest

from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.core.static_region import StaticRegion
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.engines.uvm_engine import UVMEngine
from repro.gpusim.device import GPUSpec

from conftest import TEST_SCALE, make_spec_for


class TestAsceticConfig:
    def test_bad_fill_rejected_at_prepare(self, small_social):
        from repro.algorithms import make_program

        spec = make_spec_for(small_social)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(fill="middle")
        )
        with pytest.raises(ValueError):
            eng.run(small_social, make_program("CC"))

    def test_forced_ratio_out_of_range(self, small_social):
        from repro.algorithms import make_program

        spec = make_spec_for(small_social)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE,
            config=AsceticConfig(forced_ratio=1.5),
        )
        with pytest.raises(ValueError):
            eng.run(small_social, make_program("CC"))

    def test_bad_k_rejected_at_prepare(self, small_social):
        from repro.algorithms import make_program

        spec = make_spec_for(small_social)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(k=1.0)
        )
        with pytest.raises(ValueError):
            eng.run(small_social, make_program("CC"))

    def test_with_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            AsceticConfig().with_(bogus=1)


class TestEngineArguments:
    def test_negative_pinned_partitions(self):
        with pytest.raises(ValueError):
            PartitionEngine(pinned_partitions=-2)

    def test_pin_fraction_bounds(self):
        with pytest.raises(ValueError):
            UVMEngine(pin_fraction=-0.1)

    @pytest.mark.parametrize("cls", [PartitionEngine, SubwayEngine, UVMEngine, AsceticEngine])
    def test_data_scale_bounds(self, cls):
        with pytest.raises(ValueError):
            cls(data_scale=0)
        with pytest.raises(ValueError):
            cls(data_scale=2.0)


class TestSpecValidation:
    def test_all_invalid_fields_raise(self):
        bad = [
            dict(memory_bytes=0),
            dict(uvm_page_size=-1),
            dict(uvm_fault_batch=0),
            dict(uvm_fault_latency=-1.0),
            dict(uvm_migration_bandwidth=0),
            dict(uvm_kernel_penalty=0.9),
            dict(uvm_prefetch_pages=-1),
        ]
        for kwargs in bad:
            with pytest.raises(ValueError):
                GPUSpec(**kwargs)


class TestStaticRegionValidation:
    def test_bad_fragment(self, small_social):
        with pytest.raises(ValueError):
            StaticRegion(small_social, 100, fragment_chunks=0)
