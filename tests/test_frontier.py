"""Tests for frontier expansion — the shared superstep primitive."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.frontier import active_edge_count, expand_frontier
from repro.graph.generators import rmat_graph


def brute_expand(graph, active):
    srcs, poss = [], []
    for v in np.nonzero(active)[0]:
        for e in range(graph.indptr[v], graph.indptr[v + 1]):
            srcs.append(v)
            poss.append(e)
    return np.array(srcs, dtype=np.int64), np.array(poss, dtype=np.int64)


class TestExpand:
    def test_empty_frontier(self, small_rmat):
        active = np.zeros(small_rmat.n_vertices, dtype=bool)
        exp = expand_frontier(small_rmat, active)
        assert exp.n_edges == 0

    def test_full_frontier_is_all_edges(self, small_rmat):
        active = np.ones(small_rmat.n_vertices, dtype=bool)
        exp = expand_frontier(small_rmat, active)
        assert exp.n_edges == small_rmat.n_edges
        assert np.array_equal(exp.positions, np.arange(small_rmat.n_edges))

    def test_single_vertex(self, small_rmat):
        v = int(np.argmax(small_rmat.out_degree()))
        active = np.zeros(small_rmat.n_vertices, dtype=bool)
        active[v] = True
        exp = expand_frontier(small_rmat, active)
        assert np.all(exp.sources == v)
        lo, hi = small_rmat.edge_range(v, v + 1)
        assert np.array_equal(exp.positions, np.arange(lo, hi))

    def test_zero_degree_vertices_skipped(self, tiny_star):
        active = np.ones(tiny_star.n_vertices, dtype=bool)
        exp = expand_frontier(tiny_star, active)
        assert np.all(exp.sources == 0)

    def test_wrong_shape_rejected(self, tiny_path):
        with pytest.raises(ValueError):
            expand_frontier(tiny_path, np.zeros(3, dtype=bool))

    def test_positions_sorted(self, small_rmat):
        rng = np.random.default_rng(0)
        active = rng.random(small_rmat.n_vertices) < 0.3
        exp = expand_frontier(small_rmat, active)
        assert np.all(np.diff(exp.positions) > 0)

    @given(st.integers(0, 2**32 - 1))
    def test_property_matches_bruteforce(self, bits):
        g = rmat_graph(5, 200, seed=13, directed=True)
        active = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        exp = expand_frontier(g, active)
        bs, bp = brute_expand(g, active)
        assert np.array_equal(exp.sources, bs)
        assert np.array_equal(exp.positions, bp)
        assert active_edge_count(g, active) == bp.size


class TestActiveEdgeCount:
    def test_empty(self, small_rmat):
        assert active_edge_count(small_rmat, np.zeros(small_rmat.n_vertices, bool)) == 0

    def test_all(self, small_rmat):
        assert (
            active_edge_count(small_rmat, np.ones(small_rmat.n_vertices, bool))
            == small_rmat.n_edges
        )

    def test_matches_expansion_without_materializing(self, small_web):
        rng = np.random.default_rng(1)
        active = rng.random(small_web.n_vertices) < 0.1
        assert active_edge_count(small_web, active) == expand_frontier(
            small_web, active
        ).n_edges
