"""Tests for frontier expansion — the shared superstep primitive."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.frontier import active_edge_count, expand_frontier
from repro.graph.generators import rmat_graph


def brute_expand(graph, active):
    srcs, poss = [], []
    for v in np.nonzero(active)[0]:
        for e in range(graph.indptr[v], graph.indptr[v + 1]):
            srcs.append(v)
            poss.append(e)
    return np.array(srcs, dtype=np.int64), np.array(poss, dtype=np.int64)


class TestExpand:
    def test_empty_frontier(self, small_rmat):
        active = np.zeros(small_rmat.n_vertices, dtype=bool)
        exp = expand_frontier(small_rmat, active)
        assert exp.n_edges == 0

    def test_full_frontier_is_all_edges(self, small_rmat):
        active = np.ones(small_rmat.n_vertices, dtype=bool)
        exp = expand_frontier(small_rmat, active)
        assert exp.n_edges == small_rmat.n_edges
        assert np.array_equal(exp.positions, np.arange(small_rmat.n_edges))

    def test_single_vertex(self, small_rmat):
        v = int(np.argmax(small_rmat.out_degree()))
        active = np.zeros(small_rmat.n_vertices, dtype=bool)
        active[v] = True
        exp = expand_frontier(small_rmat, active)
        assert np.all(exp.sources == v)
        lo, hi = small_rmat.edge_range(v, v + 1)
        assert np.array_equal(exp.positions, np.arange(lo, hi))

    def test_zero_degree_vertices_skipped(self, tiny_star):
        active = np.ones(tiny_star.n_vertices, dtype=bool)
        exp = expand_frontier(tiny_star, active)
        assert np.all(exp.sources == 0)

    def test_wrong_shape_rejected(self, tiny_path):
        with pytest.raises(ValueError):
            expand_frontier(tiny_path, np.zeros(3, dtype=bool))

    def test_positions_sorted(self, small_rmat):
        rng = np.random.default_rng(0)
        active = rng.random(small_rmat.n_vertices) < 0.3
        exp = expand_frontier(small_rmat, active)
        assert np.all(np.diff(exp.positions) > 0)

    @given(st.integers(0, 2**32 - 1))
    def test_property_matches_bruteforce(self, bits):
        g = rmat_graph(5, 200, seed=13, directed=True)
        active = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        exp = expand_frontier(g, active)
        bs, bp = brute_expand(g, active)
        assert np.array_equal(exp.sources, bs)
        assert np.array_equal(exp.positions, bp)
        assert active_edge_count(g, active) == bp.size


class TestActiveEdgeCount:
    def test_empty(self, small_rmat):
        assert active_edge_count(small_rmat, np.zeros(small_rmat.n_vertices, bool)) == 0

    def test_all(self, small_rmat):
        assert (
            active_edge_count(small_rmat, np.ones(small_rmat.n_vertices, bool))
            == small_rmat.n_edges
        )

    def test_matches_expansion_without_materializing(self, small_web):
        rng = np.random.default_rng(1)
        active = rng.random(small_web.n_vertices) < 0.1
        assert active_edge_count(small_web, active) == expand_frontier(
            small_web, active
        ).n_edges


class TestFrontierCache:
    """The per-iteration memo behind ``ProgramState.frontier()``."""

    def test_matches_uncached(self, small_rmat):
        from repro.algorithms.frontier import FrontierCache

        rng = np.random.default_rng(7)
        mask = rng.random(small_rmat.n_vertices) < 0.25
        cache = FrontierCache()
        exp = cache.expansion(small_rmat, mask)
        ref = expand_frontier(small_rmat, mask)
        assert np.array_equal(exp.sources, ref.sources)
        assert np.array_equal(exp.positions, ref.positions)
        assert cache.edge_count(small_rmat, mask) == ref.n_edges

    def test_hit_returns_same_object(self, small_rmat):
        from repro.algorithms.frontier import FrontierCache

        mask = np.ones(small_rmat.n_vertices, dtype=bool)
        cache = FrontierCache()
        assert cache.expansion(small_rmat, mask) is cache.expansion(
            small_rmat, mask
        )

    def test_new_mask_object_invalidates(self, small_rmat):
        from repro.algorithms.frontier import FrontierCache

        cache = FrontierCache()
        full = np.ones(small_rmat.n_vertices, dtype=bool)
        assert cache.edge_count(small_rmat, full) == small_rmat.n_edges
        # A *different* mask object with different content recomputes.
        empty = np.zeros(small_rmat.n_vertices, dtype=bool)
        assert cache.edge_count(small_rmat, empty) == 0

    def test_vertices_includes_zero_degree(self, small_rmat):
        from repro.algorithms.frontier import FrontierCache

        mask = np.ones(small_rmat.n_vertices, dtype=bool)
        vs, counts = FrontierCache().vertices(small_rmat, mask)
        assert vs.size == small_rmat.n_vertices
        assert counts.sum() == small_rmat.n_edges


class TestProgramStateFrontier:
    def test_state_accessors_consistent(self, small_web):
        from repro.algorithms import make_program

        prog = make_program("CC")
        state = prog.init_state(small_web)
        exp = state.frontier(small_web)
        assert state.active_edges(small_web) == exp.n_edges
        vs, counts = state.active_vertices(small_web)
        assert counts.sum() == exp.n_edges

    def test_pickle_drops_cache_and_recovers(self, small_web):
        import pickle

        from repro.algorithms import make_program

        prog = make_program("CC")
        state = prog.init_state(small_web)
        before = state.active_edges(small_web)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.active_edges(small_web) == before


class TestScalarKernelOracle:
    """The scalar walk (what numba compiles under ``REPRO_NUMBA=1``) must
    write the exact int64 buffers the vectorized repeat/arange path
    produces — the two are interchangeable by construction."""

    @staticmethod
    def _run_scalar(graph, active):
        from repro.algorithms.frontier import _fill_expansion, _walk_mask

        vs, starts, counts = _walk_mask(graph, active)
        nz = counts > 0
        vs, starts, counts = vs[nz], starts[nz], counts[nz]
        total = int(counts.sum())
        sources = np.empty(total, dtype=np.int64)
        positions = np.empty(total, dtype=np.int64)
        _fill_expansion(vs, starts, counts, sources, positions)
        return sources, positions

    @given(st.integers(0, 2**32 - 1))
    def test_property_scalar_equals_vectorized(self, bits):
        g = rmat_graph(5, 200, seed=13, directed=True)
        active = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        exp = expand_frontier(g, active)
        srcs, poss = self._run_scalar(g, active)
        assert srcs.dtype == exp.sources.dtype == np.int64
        assert np.array_equal(srcs, exp.sources)
        assert np.array_equal(poss, exp.positions)

    def test_empty_and_full(self, small_rmat):
        for active in (np.zeros(small_rmat.n_vertices, dtype=bool),
                       np.ones(small_rmat.n_vertices, dtype=bool)):
            exp = expand_frontier(small_rmat, active)
            srcs, poss = self._run_scalar(small_rmat, active)
            assert np.array_equal(srcs, exp.sources)
            assert np.array_equal(poss, exp.positions)


class TestNumbaGate:
    """The compiled walk is strictly opt-in with a pure-NumPy fallback."""

    def test_disabled_without_env(self, monkeypatch):
        from repro.algorithms.frontier import _NUMBA_ENV, _load_numba_fill

        monkeypatch.delenv(_NUMBA_ENV, raising=False)
        assert _load_numba_fill() is None

    @pytest.mark.parametrize("value", ["0", "no", "off", "false", ""])
    def test_disabled_on_falsy_values(self, monkeypatch, value):
        from repro.algorithms.frontier import _NUMBA_ENV, _load_numba_fill

        monkeypatch.setenv(_NUMBA_ENV, value)
        assert _load_numba_fill() is None

    def test_enabled_requires_numba(self, monkeypatch):
        """With the env set, the gate compiles iff numba imports; either
        way it never raises — missing numba silently falls back."""
        from repro.algorithms.frontier import _NUMBA_ENV, _load_numba_fill

        monkeypatch.setenv(_NUMBA_ENV, "1")
        try:
            import numba  # noqa: F401
            has_numba = True
        except ImportError:
            has_numba = False
        fill = _load_numba_fill()
        assert (fill is not None) == has_numba

    def test_default_process_state_matches_env(self):
        import os

        from repro.algorithms.frontier import (_NUMBA_ENV, _numba_fill,
                                               numba_walk_enabled)

        assert numba_walk_enabled() == (_numba_fill is not None)
        if os.environ.get(_NUMBA_ENV, "").lower() not in ("1", "true", "yes",
                                                          "on"):
            assert not numba_walk_enabled()

    @pytest.mark.skipif(
        not pytest.importorskip("importlib.util").find_spec("numba"),
        reason="numba not installed")
    def test_compiled_walk_matches_numpy(self, monkeypatch, small_rmat):
        """Only meaningful on the CI leg that installs the [speed] extra."""
        from repro.algorithms.frontier import _NUMBA_ENV, _load_numba_fill

        monkeypatch.setenv(_NUMBA_ENV, "1")
        fill = _load_numba_fill()
        assert fill is not None
        rng = np.random.default_rng(3)
        active = rng.random(small_rmat.n_vertices) < 0.4
        ref = expand_frontier(small_rmat, active)
        vs = np.nonzero(active)[0]
        starts = small_rmat.indptr[vs]
        counts = small_rmat.indptr[vs + 1] - starts
        nz = counts > 0
        vs, starts, counts = vs[nz], starts[nz], counts[nz]
        total = int(counts.sum())
        sources = np.empty(total, dtype=np.int64)
        positions = np.empty(total, dtype=np.int64)
        fill(np.ascontiguousarray(vs, dtype=np.int64),
             np.ascontiguousarray(starts, dtype=np.int64),
             np.ascontiguousarray(counts, dtype=np.int64),
             sources, positions)
        assert np.array_equal(sources, ref.sources)
        assert np.array_equal(positions, ref.positions)
