"""Tests for the reference oracles themselves (trust, but verify the verifier)."""

import numpy as np
import pytest

from repro.algorithms.validate import (
    assert_allclose_ranks,
    reference_bfs_levels,
    reference_cc_labels,
    reference_pagerank,
    reference_sssp_distances,
    reference_sswp_widths,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import cycle_graph, path_graph, star_graph


class TestBFSOracle:
    def test_path(self):
        levels = reference_bfs_levels(path_graph(4), 0)
        assert list(levels) == [0, 1, 2, 3]

    def test_unreachable_marked(self):
        levels = reference_bfs_levels(path_graph(4), 2)
        assert levels[0] == -1 and levels[3] == 1


class TestSSSPOracle:
    def test_exact_weights(self):
        g = path_graph(3).with_weights([5, 7])
        d = reference_sssp_distances(g, 0)
        assert list(d) == [0, 5, 12]

    def test_unreachable_inf(self):
        from repro.algorithms.sssp import INF_DIST

        g = path_graph(3).with_weights([1, 1])
        assert reference_sssp_distances(g, 1)[0] == INF_DIST


class TestCCOracle:
    def test_undirected_min_labels(self):
        g = CSRGraph.from_edges([1, 3], [2, 4], 5, directed=False)
        assert list(reference_cc_labels(g)) == [0, 1, 1, 3, 3]

    def test_directed_fixpoint_is_min_reaching(self):
        # 4 → 1 → 0 and isolated 2, 3.
        g = CSRGraph.from_edges([4, 1], [1, 0], 5)
        labels = reference_cc_labels(g)
        # 0 is reached by 1 and 4 → min reaching label 0; 1 reached by 4
        # and itself → 1; sources keep their own ids.
        assert list(labels) == [0, 1, 2, 3, 4]


class TestPageRankOracle:
    def test_cycle_uniform(self):
        r = reference_pagerank(cycle_graph(6))
        assert np.allclose(r, 1.0 / 6)

    def test_star_center_receives_nothing(self):
        # Star pushes outward only: center rank = teleport share.
        g = star_graph(5)
        r = reference_pagerank(g, damping=0.85)
        assert r[0] == pytest.approx(0.15 / 5)
        assert np.all(r[1:] > r[0])

    def test_assert_allclose_ranks_raises_on_mismatch(self):
        with pytest.raises(AssertionError):
            assert_allclose_ranks(np.array([1.0]), np.array([2.0]), rtol=1e-3)

    def test_assert_allclose_ranks_passes_within_tol(self):
        assert_allclose_ranks(np.array([1.0]), np.array([1.0001]), rtol=1e-3)


class TestSSWPOracle:
    def test_bottleneck_on_path(self):
        from repro.algorithms.sswp import SOURCE_WIDTH

        g = path_graph(4).with_weights([9, 3, 7])
        w = reference_sswp_widths(g, 0)
        assert w[0] == SOURCE_WIDTH
        assert list(w[1:]) == [9, 3, 3]

    def test_unreached_zero(self):
        g = path_graph(3).with_weights([1, 1])
        assert reference_sswp_widths(g, 2)[0] == 0
