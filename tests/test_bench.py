"""Tests for the wall-clock perf harness (``repro bench``)."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    all_benchmarks,
    compare_reports,
    default_report_name,
    load_report,
    make_report,
    run_benchmarks,
    time_callable,
    write_report,
)


class TestRegistry:
    def test_suite_covers_required_surface(self):
        benches = all_benchmarks()
        names = [b.name for b in benches]
        assert len(names) >= 8
        assert len(set(names)) == len(names)
        # Micro kernels and end-to-end macros both present.
        kinds = {b.kind for b in benches}
        assert kinds == {"micro", "macro"}
        groups = {n.split("/")[0] for n in names}
        assert {"frontier", "static_region", "events", "engine"} <= groups

    def test_sorted_and_stable(self):
        assert [b.name for b in all_benchmarks()] == sorted(
            b.name for b in all_benchmarks()
        )

    def test_duplicate_name_rejected(self):
        from repro.bench.registry import register

        existing = all_benchmarks()[0].name
        with pytest.raises(ValueError, match="already registered"):
            register(existing, kind="micro", description="dup")(lambda quick: None)

    def test_bad_kind_rejected(self):
        from repro.bench.registry import register

        with pytest.raises(ValueError, match="kind"):
            register("x/y", kind="huge", description="")(lambda quick: None)


class TestTiming:
    def test_best_and_mean(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6  # warmup + repeats
        assert t.repeats == 4
        assert 0 <= t.best <= t.mean

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)


class TestRunBenchmarks:
    def test_micro_benchmark_end_to_end(self):
        results = run_benchmarks(
            names={"static_region/chunk_touch_counts"}, quick=True
        )
        assert set(results) == {"static_region/chunk_touch_counts"}
        r = results["static_region/chunk_touch_counts"]
        assert r["kind"] == "micro"
        assert r["best_seconds"] > 0
        assert r["best_seconds"] <= r["mean_seconds"]
        assert r["units"]["edges"] > 0
        assert r["throughput"]["edges_per_second"] > 0


class TestReport:
    @staticmethod
    def _fake_results(best=1.0):
        return {
            "some/bench": {
                "kind": "micro", "description": "d", "best_seconds": best,
                "mean_seconds": best * 1.1, "repeats": 3,
                "units": {"edges": 10.0},
                "throughput": {"edges_per_second": 10.0 / best},
            }
        }

    def test_round_trip(self, tmp_path):
        report = make_report(self._fake_results(), quick=True)
        assert report["schema_version"] == SCHEMA_VERSION
        assert default_report_name(report) == f"BENCH_{report['revision']}.json"
        path = tmp_path / "BENCH_test.json"
        write_report(str(path), report)
        loaded = load_report(str(path))
        assert loaded == report

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "benchmarks": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_report(str(path))

    def test_environment_fingerprint(self):
        env = make_report(self._fake_results())["environment"]
        assert {"python", "numpy", "platform", "cpu_count"} <= set(env)


class TestComparator:
    @staticmethod
    def _report(times):
        return {
            "schema_version": SCHEMA_VERSION,
            "revision": "x",
            "environment": {},
            "benchmarks": {
                name: {"best_seconds": t} for name, t in times.items()
            },
        }

    def test_no_regression_within_threshold(self):
        cmp = compare_reports(self._report({"a": 1.0}),
                              self._report({"a": 1.2}), threshold=0.25)
        assert cmp.ok and not cmp.regressions

    def test_regression_beyond_threshold(self):
        cmp = compare_reports(self._report({"a": 1.0, "b": 1.0}),
                              self._report({"a": 1.5, "b": 0.9}),
                              threshold=0.25)
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["a"]
        assert cmp.regressions[0].ratio == pytest.approx(1.5)

    def test_improvement_is_fine(self):
        cmp = compare_reports(self._report({"a": 2.0}),
                              self._report({"a": 0.5}), threshold=0.0)
        assert cmp.ok

    def test_membership_changes_never_fail(self):
        cmp = compare_reports(self._report({"old_only": 1.0}),
                              self._report({"new_only": 1.0}), threshold=0.1)
        assert cmp.ok
        assert cmp.only_old == ["old_only"]
        assert cmp.only_new == ["new_only"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(self._report({}), self._report({}), threshold=-1)


class TestCLI:
    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "static_region/chunk_touch_counts" in out

    def test_bench_filter_no_match(self, capsys):
        from repro.cli import main

        assert main(["bench", "--filter", "nope-nothing", "--list"]) == 2

    def test_bench_run_write_and_compare(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "baseline.json"
        assert main(["bench", "--quick", "--filter", "frontier/active",
                     "-o", str(out)]) == 0
        assert load_report(str(out))["environment"]["quick"] is True
        # Same revision, same machine: comparing against itself passes.
        assert main(["bench", "--quick", "--filter", "frontier/active",
                     "-o", "-", "--against", str(out)]) == 0
        capsys.readouterr()
