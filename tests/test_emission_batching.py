"""Batched event emission must be indistinguishable from per-op emission.

The manager's lean-mode fast paths fold whole op columns through
:meth:`EventLog.emit_batch` and scalar ops through :meth:`EventLog.emit_op`
instead of constructing one :class:`SimEvent` per op.  Nothing downstream
may be able to tell: the folded :class:`Metrics` (float accumulation order
included), the per-lane stats, and — in recorded mode — the retained event
list must equal per-op emission bit for bit.  These tests pin that at the
unit level and through full engine runs (Ascetic, Hybrid, and a 4-device
Sharded fabric), where lean and recorded executions must produce identical
result payloads.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.algorithms import make_program
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.sharded import ShardedEngine
from repro.gpusim.events import COUNTER_FIELDS, EventLog
from repro.graph.properties import best_source
from repro.harness.persistence import result_to_payload

from conftest import TEST_SCALE, make_spec_for


def _ops_strategy():
    """Random op columns: sorted starts, non-negative durations, counters."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=1 << 30),
            st.floats(min_value=0.0, max_value=0.5,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=1, max_size=40,
    )


def _columns(ops):
    starts = np.array([s for s, _, _, _ in ops], dtype=np.float64)
    ends = starts + np.array([d for _, d, _, _ in ops], dtype=np.float64)
    byte_col = np.array([b for _, _, b, _ in ops], dtype=np.int64)
    retry_col = np.array([r for _, _, _, r in ops], dtype=np.float64)
    return starts, ends, byte_col, retry_col


def _lane_stats_dict(log):
    return {
        key: (s.busy_seconds, s.n_ops, s.first_start, s.last_end)
        for key, s in log.lane_stats.items()
    }


class TestEmitOp:
    @given(ops=_ops_strategy())
    def test_lean_fold_matches_per_event_emission(self, ops):
        """emit_op without a SimEvent folds exactly like emit(SimEvent)."""
        from repro.gpusim.events import SimEvent

        by_op, by_event = EventLog(record=False), EventLog(record=False)
        by_op.current_phase = by_event.current_phase = "Tfilling"
        starts, ends, byte_col, retry_col = _columns(ops)
        for i in range(starts.size):
            counters = {"bytes_h2d": int(byte_col[i]),
                        "retry_seconds": float(retry_col[i])}
            by_op.emit_op("copy", "h2d", "x", float(starts[i]),
                          float(ends[i]), counters=counters, device=2)
            by_event.emit(SimEvent(
                lane="copy", kind="h2d", label="x",
                start=float(starts[i]), end=float(ends[i]),
                phase="Tfilling", device=2, **counters))
        assert by_op.metrics.as_dict() == by_event.metrics.as_dict()
        assert _lane_stats_dict(by_op) == _lane_stats_dict(by_event)

    def test_unknown_counter_rejected(self):
        log = EventLog(record=False)
        with pytest.raises(TypeError):
            log.emit_op("gpu", "kernel", "k", 0.0, 1.0,
                        counters={"not_a_counter": 1})


class TestEmitBatch:
    @given(ops=_ops_strategy())
    def test_lean_batch_equals_op_sequence_bitwise(self, ops):
        """One emit_batch == the same rows through emit_op, bit for bit.

        Float accumulators (phase seconds, lane busy time, retry seconds)
        must be added in row order — a pairwise np.sum would drift in the
        last ulp, which `==` here would catch.
        """
        batched, looped = EventLog(record=False), EventLog(record=False)
        batched.current_phase = looped.current_phase = "Ttransfer"
        starts, ends, byte_col, retry_col = _columns(ops)
        batched.emit_batch("copy", "h2d", "od-transfer", starts, ends,
                           counters={"bytes_h2d": byte_col,
                                     "retry_seconds": retry_col})
        for i in range(starts.size):
            looped.emit_op("copy", "h2d", "od-transfer",
                           float(starts[i]), float(ends[i]),
                           counters={"bytes_h2d": int(byte_col[i]),
                                     "retry_seconds": float(retry_col[i])})
        assert batched.metrics.as_dict() == looped.metrics.as_dict()
        assert _lane_stats_dict(batched) == _lane_stats_dict(looped)

    @given(ops=_ops_strategy())
    def test_recorded_batch_materializes_identical_events(self, ops):
        batched, looped = EventLog(record=True), EventLog(record=True)
        batched.current_phase = looped.current_phase = "Tondemand"
        batched.current_iteration = looped.current_iteration = 3
        starts, ends, byte_col, _ = _columns(ops)
        batched.emit_batch("gpu", "kernel", "od-compute", starts, ends,
                           counters={"edges_processed": byte_col}, device=1)
        for i in range(starts.size):
            looped.emit_op("gpu", "kernel", "od-compute",
                           float(starts[i]), float(ends[i]),
                           counters={"edges_processed": int(byte_col[i])},
                           device=1)
        assert batched.events == looped.events
        assert batched.metrics.as_dict() == looped.metrics.as_dict()

    def test_empty_batch_is_a_no_op(self):
        log = EventLog(record=False)
        empty = np.empty(0, dtype=np.float64)
        log.emit_batch("cpu", "gather", "g", empty, empty)
        assert log.metrics.as_dict() == EventLog(record=False).metrics.as_dict()
        assert log.lane_stats == {}

    def test_length_mismatch_rejected(self):
        log = EventLog(record=False)
        with pytest.raises(ValueError):
            log.emit_batch("cpu", "gather", "g",
                           np.zeros(3), np.zeros(2))

    def test_counter_column_shape_rejected(self):
        log = EventLog(record=False)
        with pytest.raises(ValueError):
            log.emit_batch("cpu", "gather", "g", np.zeros(3), np.ones(3),
                           counters={"bytes_h2d": np.zeros(2, dtype=np.int64)})

    def test_unknown_counter_rejected(self):
        log = EventLog(record=False)
        with pytest.raises(TypeError):
            log.emit_batch("cpu", "gather", "g", np.zeros(1), np.ones(1),
                           counters={"bogus": np.ones(1, dtype=np.int64)})


def _payload_digest(result) -> str:
    payload = result_to_payload(result)
    # The retained event list exists only in recorded mode by design;
    # everything else in the payload must agree across modes.
    payload.pop("events", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class TestLeanEqualsRecorded:
    """Full engine runs: lean mode (batched emission, interval fast paths)
    must produce the same result payload as recorded mode (op-by-op
    emission) — counters, phase seconds, values, and timing all included."""

    def _assert_modes_agree(self, run):
        lean, recorded = run(record_events=False), run(record_events=True)
        assert lean.metrics.as_dict() == recorded.metrics.as_dict()
        assert np.array_equal(lean.values, recorded.values)
        assert lean.elapsed_seconds == recorded.elapsed_seconds
        assert lean.iterations == recorded.iterations
        assert _payload_digest(lean) == _payload_digest(recorded)

    @pytest.mark.parametrize("algo", ["BFS", "PR"])
    def test_ascetic(self, small_social, algo):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        if algo == "BFS":
            program = lambda: make_program("BFS",
                                           source=best_source(small_social))
        else:
            program = lambda: make_program("PR", tol=1e-2)
        cfg = AsceticConfig(fill="front", replacement=True)

        def run(record_events):
            eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg,
                                record_events=record_events)
            return eng.run(small_social, program())

        self._assert_modes_agree(run)

    def test_ascetic_many_rounds(self, small_web):
        """A squeezed on-demand region drives the batched round scheduler."""
        spec = make_spec_for(small_web, edge_fraction=0.15)
        cfg = AsceticConfig(forced_ratio=0.9, adaptive=False)

        def run(record_events):
            eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg,
                                record_events=record_events)
            return eng.run(small_web, make_program("CC"))

        self._assert_modes_agree(run)

    def test_hybrid(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)

        def run(record_events):
            eng = HybridEngine(spec=spec, data_scale=TEST_SCALE,
                               record_events=record_events)
            return eng.run(small_social,
                           make_program("BFS",
                                        source=best_source(small_social)))

        self._assert_modes_agree(run)

    def test_sharded_four_devices(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)

        def run(record_events):
            eng = ShardedEngine(spec=spec, data_scale=TEST_SCALE, devices=4,
                                record_events=record_events)
            return eng.run(small_social,
                           make_program("BFS",
                                        source=best_source(small_social)))

        self._assert_modes_agree(run)
