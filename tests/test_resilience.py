"""Engine resilience under injected faults.

The contract under chaos: faults cost virtual time, never correctness.
These tests drive each recovery path — transfer retry/backoff accounting,
kernel relaunch, transient-allocation absorption, per-engine capacity
squeezes, and Ascetic's static-shrink → pure-on-demand degradation
ladder — and assert both the recovery and its observability (counters,
``retry`` bucket, typed marker events).
"""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.events import FAULT_KINDS, idle_breakdown, validate_log
from repro.gpusim.faults import (
    CapacitySqueeze,
    FaultInjector,
    FaultPlan,
    KernelFaultError,
    TransferFaultError,
)
from repro.gpusim.memory import DeviceMemory, GPUOutOfMemory
from repro.harness.experiments import make_workload, run_workload

SCALE = 5e-5
ENGINES = ("PT", "UVM", "Subway", "Ascetic")


def _gpu(plan, seed=0, memory_bytes=None):
    spec = GPUSpec(memory_bytes=memory_bytes) if memory_bytes else GPUSpec()
    return SimulatedGPU(spec, record_events=True,
                        faults=FaultInjector(plan, seed=seed))


class TestTransferRetries:
    def test_retry_accounting(self):
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        gpu = _gpu(plan, seed=7)
        payload = gpu.spec.pcie.payload_bytes(1 << 20)
        n = 40
        for i in range(n):
            gpu.h2d(1 << 20, label=f"t{i}")
        gpu.sync()
        m = gpu.metrics
        assert m.transfer_faults > 0
        assert m.transfer_retries == m.transfer_faults  # every fault retried
        assert m.retry_seconds > 0.0
        # Byte counters only count useful traffic — failed attempts move
        # time, not accounted bytes.
        assert m.bytes_h2d == n * payload
        assert m.h2d_transfers == n
        validate_log(gpu.events, metrics=m, horizon=gpu.clock.now)

    def test_retry_bucket_in_idle_breakdown(self):
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        gpu = _gpu(plan, seed=7)
        for i in range(40):
            gpu.h2d(1 << 20, label=f"t{i}")
        gpu.sync()
        bd = idle_breakdown(gpu.events, "copy", gpu.clock.now)
        assert bd.retry > 0.0
        assert bd.retry == pytest.approx(gpu.metrics.retry_seconds)

    def test_fault_events_are_typed(self):
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        gpu = _gpu(plan, seed=7)
        for i in range(40):
            gpu.h2d(1 << 20, label=f"t{i}")
        gpu.sync()
        kinds = {e.kind for e in gpu.events.events}
        assert "h2d-fault" in kinds
        assert "backoff" in kinds
        assert kinds & FAULT_KINDS

    def test_exhausted_retries_raise(self):
        plan = FaultPlan(transfer_fail_rate=0.9, max_retries=0)
        gpu = _gpu(plan, seed=3)
        with pytest.raises(TransferFaultError):
            for i in range(64):
                gpu.h2d(1 << 20, label=f"t{i}")

    def test_corruption_counts_separately(self):
        plan = FaultPlan(transfer_corrupt_rate=0.4, max_retries=8)
        gpu = _gpu(plan, seed=5)
        for i in range(40):
            gpu.h2d(1 << 20, label=f"t{i}")
        gpu.sync()
        assert gpu.faults.counts["transfer_corrupt"] > 0
        assert gpu.faults.counts["transfer_fail"] == 0
        assert gpu.metrics.transfer_faults > 0  # corrupt attempts retried too


class TestKernelFaults:
    def test_abort_and_relaunch(self):
        plan = FaultPlan(kernel_abort_rate=0.3, max_retries=8)
        gpu = _gpu(plan, seed=11)
        for _ in range(40):
            gpu.edge_kernel(10_000, label="k")
        gpu.sync()
        m = gpu.metrics
        assert m.kernel_aborts > 0
        assert m.retry_seconds > 0.0
        # Useful work is counted once per successful launch.
        assert m.edges_processed == 40 * 10_000
        assert any(e.kind == "kernel-abort" for e in gpu.events.events)
        validate_log(gpu.events, metrics=m, horizon=gpu.clock.now)

    def test_exhausted_kernel_retries_raise(self):
        plan = FaultPlan(kernel_abort_rate=0.9, max_retries=0)
        gpu = _gpu(plan, seed=2)
        with pytest.raises(KernelFaultError):
            for _ in range(64):
                gpu.edge_kernel(10_000, label="k")

    def test_slowdown_stretches_duration(self):
        slow = FaultPlan(kernel_slowdown_rate=0.5, kernel_slowdown_factor=3.0)
        gpu = _gpu(slow, seed=4)
        for _ in range(40):
            gpu.edge_kernel(10_000, label="k")
        gpu.sync()
        clean = SimulatedGPU(GPUSpec())
        for _ in range(40):
            clean.edge_kernel(10_000, label="k")
        clean.sync()
        assert gpu.faults.counts["kernel_slow"] > 0
        assert gpu.clock.now > clean.clock.now


class TestAllocationFaults:
    def test_injected_failure_is_transient(self):
        plan = FaultPlan(alloc_failures=("buf",))
        mem = DeviceMemory(1 << 20, faults=FaultInjector(plan, seed=0))
        with pytest.raises(GPUOutOfMemory) as exc:
            mem.alloc("buf", 1024)
        assert exc.value.injected
        assert exc.value.requested == 1024
        a = mem.alloc("buf", 1024)  # budget spent: the retry lands
        assert a.nbytes == 1024

    def test_real_oom_payload_is_structured(self):
        mem = DeviceMemory(4096)
        mem.alloc("a", 3000)
        with pytest.raises(GPUOutOfMemory) as exc:
            mem.alloc("b", 2000)
        e = exc.value
        assert not e.injected
        assert e.name == "b"
        assert e.requested == 2000
        assert e.available == 1096
        assert e.capacity == 4096
        assert e.live == {"a": 3000}

    def test_zero_byte_allocs_bypass_injection(self):
        plan = FaultPlan(alloc_failures=("buf",) * 5)
        mem = DeviceMemory(1 << 20, faults=FaultInjector(plan, seed=0))
        assert mem.alloc("buf", 0).nbytes == 0  # ladders must terminate


class TestCapacitySqueeze:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_absorbs_a_squeeze(self, engine):
        plan = FaultPlan(squeezes=(
            CapacitySqueeze(start_iteration=1, end_iteration=3, fraction=0.3),
        ))
        w = make_workload("GS", "BFS", scale=SCALE)
        baseline = run_workload(w, engine)
        squeezed = run_workload(w, engine, record_events=True,
                                fault_plan=plan, seed=0)
        assert np.array_equal(squeezed.values, baseline.values)
        kinds = {e.kind for e in squeezed.event_log.events}
        assert "squeeze" in kinds
        assert "squeeze-release" in kinds
        validate_log(squeezed.event_log, metrics=squeezed.metrics,
                     horizon=squeezed.elapsed_seconds)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_oversized_squeeze_never_crashes(self, engine):
        # A squeeze bigger than what the engine can possibly free must be
        # clamped, not surface as an unhandled GPUOutOfMemory.
        plan = FaultPlan(squeezes=(
            CapacitySqueeze(start_iteration=1, fraction=0.95),
        ))
        w = make_workload("GS", "BFS", scale=SCALE)
        result = run_workload(w, engine, fault_plan=plan, seed=0)
        baseline = run_workload(w, engine)
        assert np.array_equal(result.values, baseline.values)


class TestAsceticDegradation:
    def test_transient_static_failure_recovers_in_place(self):
        w = make_workload("GS", "BFS", scale=SCALE)
        plan = FaultPlan(alloc_failures=("static_region",))
        baseline = run_workload(w, "Ascetic")
        result = run_workload(w, "Ascetic", record_events=True,
                              fault_plan=plan, seed=0)
        # One injected failure → one plain retry at full size: the run is
        # *schedule*-identical to fault-free apart from the marker.
        assert np.array_equal(result.values, baseline.values)
        assert result.extra["fault_alloc_fail"] == 1.0
        assert any(e.kind == "alloc-fault" for e in result.event_log.events)
        assert not any(e.kind == "static-degrade"
                       for e in result.event_log.events)

    def test_repeated_failures_degrade_to_pure_ondemand(self):
        w = make_workload("GS", "BFS", scale=SCALE)
        plan = FaultPlan(alloc_failures=("static_region",) * 24)
        baseline = run_workload(w, "Ascetic")
        result = run_workload(w, "Ascetic", record_events=True,
                              fault_plan=plan, seed=0)
        assert np.array_equal(result.values, baseline.values)
        degrades = [e for e in result.event_log.events
                    if e.kind == "static-degrade"]
        assert degrades, "the shrink ladder never reported degradation"
        # The ladder bottomed out: the static region granted zero bytes —
        # Subway-style pure on-demand streaming.
        granted = dict(degrades[-1].extra).get("granted")
        assert granted == 0.0
        assert result.extra["fault_alloc_fail"] > 1.0
        validate_log(result.event_log, metrics=result.metrics,
                     horizon=result.elapsed_seconds)
