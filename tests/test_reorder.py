"""Tests for vertex reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ConnectedComponents, make_program
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.graph.properties import best_source
from repro.graph.reorder import bfs_order, degree_order, random_order, relabel


class TestPermutations:
    def test_degree_order_puts_hub_first(self, small_social):
        perm = degree_order(small_social)
        hub = best_source(small_social)
        assert perm[hub] == 0

    def test_degree_order_monotone(self, small_social):
        perm = degree_order(small_social)
        g2 = relabel(small_social, perm)
        deg = g2.out_degree()
        assert np.all(np.diff(deg) <= 0)

    def test_degree_order_ascending(self, small_social):
        perm = degree_order(small_social, descending=False)
        g2 = relabel(small_social, perm)
        assert np.all(np.diff(g2.out_degree()) >= 0)

    def test_bfs_order_source_first(self, small_web):
        src = best_source(small_web)
        perm = bfs_order(small_web, source=src)
        assert perm[src] == 0

    def test_bfs_order_levels_monotone(self, small_web):
        from repro.algorithms.bfs import BFS

        src = best_source(small_web)
        perm = bfs_order(small_web, source=src)
        levels = BFS(source=src).run_reference(small_web)
        reached = levels >= 0
        new_ids = perm[reached]
        lv = levels[reached]
        order = np.argsort(new_ids)
        assert np.all(np.diff(lv[order]) >= 0)

    def test_random_order_deterministic(self, small_social):
        assert np.array_equal(
            random_order(small_social, seed=5), random_order(small_social, seed=5)
        )

    def test_all_are_permutations(self, small_social):
        n = small_social.n_vertices
        for perm in (
            degree_order(small_social),
            bfs_order(small_social),
            random_order(small_social, seed=1),
        ):
            assert np.array_equal(np.sort(perm), np.arange(n))


class TestRelabel:
    def test_isomorphic_results(self, small_social):
        """The relabeled graph computes the permuted-identical answer."""
        perm = degree_order(small_social)
        g2 = relabel(small_social, perm)
        labels1 = ConnectedComponents().run_reference(small_social)
        labels2 = ConnectedComponents().run_reference(g2)
        # Same partition of vertices: components map 1:1 through perm.
        for comp in np.unique(labels1):
            members = np.nonzero(labels1 == comp)[0]
            assert len(np.unique(labels2[perm[members]])) == 1

    def test_preserves_counts_and_weights(self, small_social):
        g = small_social.with_random_weights(seed=2)
        g2 = relabel(g, random_order(g, seed=3))
        assert g2.n_edges == g.n_edges
        assert sorted(g2.weights.tolist()) == sorted(g.weights.tolist())
        assert g2.directed == g.directed

    def test_invalid_permutation(self, tiny_path):
        with pytest.raises(ValueError):
            relabel(tiny_path, np.zeros(tiny_path.n_vertices, dtype=np.int64))
        with pytest.raises(ValueError):
            relabel(tiny_path, np.arange(3))

    @given(st.integers(0, 100))
    @settings(max_examples=10)
    def test_property_bfs_levels_permute(self, seed):
        g = erdos_renyi_graph(30, 120, seed=seed)
        perm = random_order(g, seed=seed + 1)
        g2 = relabel(g, perm)
        src = seed % g.n_vertices
        from repro.algorithms import BFS

        lv1 = BFS(source=src).run_reference(g)
        lv2 = BFS(source=int(perm[src])).run_reference(g2)
        assert np.array_equal(lv2[perm], lv1)


class TestReorderingAndAscetic:
    def test_layout_near_neutral_for_spread_activity(self, small_social):
        """The §5 conjecture at layout level: with per-iteration activity
        spread evenly (PR), relayouts shift Ascetic's processing traffic
        only modestly — the Static Region's value is its size, not which
        bytes it holds."""
        from conftest import TEST_SCALE, make_spec_for
        from repro.core.ascetic import AsceticConfig, AsceticEngine

        spec = make_spec_for(small_social, edge_fraction=0.4)
        cfg = AsceticConfig(fill="front", adaptive=False)

        def processing_bytes(graph):
            res = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg).run(
                graph, make_program("PR", tol=1e-2)
            )
            return res.processing_bytes_h2d

        xs = [
            processing_bytes(relabel(small_social, random_order(small_social, seed=9))),
            processing_bytes(relabel(small_social, degree_order(small_social))),
            processing_bytes(relabel(small_social, bfs_order(small_social))),
        ]
        assert (max(xs) - min(xs)) / min(xs) < 0.35
