"""Tests for the Chrome/Perfetto trace exporter and the `repro trace` CLI."""

import json

import pytest

from repro.analysis.traces import (
    LANE_TIDS,
    MARKER_TID,
    chrome_trace_events,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.cli import main
from repro.engines import registry
from repro.gpusim.events import EventLog, SimEvent
from repro.harness.experiments import make_workload, run_workload

from conftest import TEST_SCALE


def recorded_log():
    log = EventLog(record=True)
    log.emit(SimEvent(lane="copy", kind="h2d", label="part0", start=0.0,
                      end=0.002, phase="Ttransfer", iteration=1,
                      bytes_h2d=4096, h2d_transfers=1))
    log.emit(SimEvent(lane="gpu", kind="kernel", label="relax", start=0.002,
                      end=0.005, phase="Tcompute", kernel_launches=1,
                      edges_processed=500))
    log.marker("uvm-fault", "touch", 0.004,
               counters={"page_faults": 2, "pages_migrated": 2})
    return log


class TestChromeTraceEvents:
    def test_slices_have_required_fields(self):
        slices = [r for r in chrome_trace_events(recorded_log())
                  if r["ph"] == "X"]
        assert len(slices) == 2
        for r in slices:
            assert set(r) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        h2d, kernel = slices
        assert h2d["name"] == "part0"
        assert h2d["tid"] == LANE_TIDS["copy"]
        assert h2d["ts"] == pytest.approx(0.0)
        assert h2d["dur"] == pytest.approx(2000.0)  # 0.002 s in µs
        assert h2d["args"]["bytes_h2d"] == 4096
        assert h2d["args"]["phase"] == "Ttransfer"
        assert h2d["args"]["iteration"] == 1
        assert kernel["cat"] == "Tcompute"

    def test_instants_on_marker_row(self):
        instants = [r for r in chrome_trace_events(recorded_log())
                    if r["ph"] == "i"]
        assert len(instants) == 1
        (m,) = instants
        assert m["tid"] == MARKER_TID
        assert m["s"] == "t"
        assert "dur" not in m
        assert m["args"]["page_faults"] == 2

    def test_metadata_names_every_lane(self):
        meta = [r for r in chrome_trace_events(recorded_log())
                if r["ph"] == "M"]
        thread_names = {r["tid"]: r["args"]["name"] for r in meta
                        if r["name"] == "thread_name"}
        assert thread_names == {0: "gpu", 1: "copy", 2: "cpu", 3: "markers"}

    def test_unknown_lane_gets_its_own_row(self):
        events = [SimEvent(lane="dma2", kind="op", label="x",
                           start=0.0, end=1.0)]
        records = chrome_trace_events(events)
        (slice_,) = [r for r in records if r["ph"] == "X"]
        assert slice_["tid"] > MARKER_TID
        names = {r["args"]["name"] for r in records
                 if r["ph"] == "M" and r["name"] == "thread_name"}
        assert "dma2" in names

    def test_rejects_lean_log(self):
        with pytest.raises(ValueError, match="lean"):
            chrome_trace_events(EventLog(record=False))


class TestToChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(recorded_log())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # must be JSON-able as-is

    def test_save_round_trips(self, tmp_path):
        out = tmp_path / "sub" / "run.trace.json"
        save_chrome_trace(out, recorded_log())
        doc = json.loads(out.read_text())
        assert doc["traceEvents"] == chrome_trace_events(recorded_log())


@pytest.mark.parametrize("engine_name", registry.available())
class TestEveryEngineExports:
    def test_valid_chrome_trace(self, engine_name, tmp_path):
        w = make_workload("FK", "BFS", scale=TEST_SCALE)
        res = run_workload(w, engine_name, record_events=True)
        out = save_chrome_trace(tmp_path / f"{engine_name}.json", res)
        doc = json.loads(out.read_text())
        slices = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert slices, f"{engine_name} produced no timeline slices"
        # Single-device engines export one pid-0 process; the fabric
        # engine gets one process per device (pid = device id).
        n_pids = int(res.extra.get("n_devices", 1))
        for r in slices:
            assert r["ts"] >= 0 and r["dur"] >= 0
            assert 0 <= r["pid"] < n_pids and isinstance(r["tid"], int)
        assert doc["otherData"]["engine"] == res.engine
        assert doc["otherData"]["algorithm"] == "BFS"

    def test_lean_run_refuses_export(self, engine_name):
        w = make_workload("FK", "BFS", scale=TEST_SCALE)
        res = run_workload(w, engine_name)
        with pytest.raises(ValueError, match="record_events"):
            to_chrome_trace(res)


class TestMultiDeviceExport:
    def device_log(self):
        log = EventLog(record=True)
        log.emit(SimEvent(lane="gpu", kind="kernel", label="k0", start=0.0,
                          end=0.5, device=0))
        log.emit(SimEvent(lane="gpu", kind="kernel", label="k1", start=0.0,
                          end=0.4, device=2))
        log.marker("dispatch", "dev0", 0.1)  # device-less → fabric process
        return log

    def test_device_becomes_pid(self):
        records = chrome_trace_events(self.device_log())
        slices = {r["name"]: r for r in records if r["ph"] == "X"}
        assert slices["k0"]["pid"] == 0
        assert slices["k1"]["pid"] == 2

    def test_process_names_per_device(self):
        records = chrome_trace_events(self.device_log())
        names = {r["pid"]: r["args"]["name"] for r in records
                 if r["ph"] == "M" and r["name"] == "process_name"}
        assert names[0] == "repro-sim:dev0"
        assert names[2] == "repro-sim:dev2"
        # Device-less markers live one pid above the highest device.
        assert names[3] == "repro-fabric"

    def test_deviceless_markers_go_to_fabric_process(self):
        records = chrome_trace_events(self.device_log())
        (m,) = [r for r in records if r["ph"] == "i"]
        assert m["pid"] == 3
        assert m["tid"] == MARKER_TID

    def test_single_device_log_is_byte_identical(self):
        # A log where no event carries a device must export exactly as
        # before the fabric work — same records, pid 0 throughout.
        log = recorded_log()
        assert all(e.device is None for e in log.events)
        records = chrome_trace_events(log)
        assert all(r["pid"] == 0 for r in records)
        assert json.dumps(records) == json.dumps(chrome_trace_events(log))

    def test_sharded_run_exports_one_process_per_device(self, tmp_path):
        w = make_workload("GS", "BFS", scale=TEST_SCALE)
        res = run_workload(w, "Sharded", record_events=True, devices=3)
        doc = json.loads(
            save_chrome_trace(tmp_path / "sharded.json", res).read_text())
        pids = {r["pid"] for r in doc["traceEvents"] if r["ph"] == "X"}
        assert pids == {0, 1, 2}
        names = {r["args"]["name"] for r in doc["traceEvents"]
                 if r["ph"] == "M" and r["name"] == "process_name"}
        assert {"repro-sim:dev0", "repro-sim:dev1",
                "repro-sim:dev2"} <= names


class TestTraceCLI:
    def test_trace_subcommand_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "fk_bfs.trace.json"
        main(["trace", "FK", "BFS", "--engine", "Subway",
              "--scale", "5e-5", "-o", str(out)])
        doc = json.loads(out.read_text())
        assert any(r["ph"] == "X" for r in doc["traceEvents"])
        assert doc["otherData"]["engine"] == "Subway"
        printed = capsys.readouterr().out
        assert "events" in printed and str(out) in printed
